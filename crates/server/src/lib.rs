//! Network front door for the TiLT runtime.
//!
//! Everything the in-process [`tilt_runtime::StreamService`] offers —
//! batched ingest, the live attach/detach/subscribe control plane, and
//! the stats/metrics/journal scrape surface — exposed over TCP via a
//! hand-rolled, length-prefixed binary protocol, with nothing beyond the
//! standard library.
//!
//! Three layers:
//!
//! * [`protocol`] — the codec: a versioned [`protocol::Message`] enum,
//!   fixed-width little-endian encoding, and a total (panic-free)
//!   decoder hardened against hostile frames.
//! * [`Server`] — thread-per-connection TCP server owning an
//!   attach-first service and a catalog of prepared queries; surfaces
//!   shard backpressure to producers as explicit
//!   [`protocol::Message::Credit`] / [`protocol::Message::Busy`] grants.
//! * [`Client`] — the blocking client library: credit-driven ingest,
//!   remote attach/detach, and [`Subscription`] streams whose contents
//!   are byte-identical to an in-process run's per-key output.
//!
//! The wire format is specified in this crate's `README.md`; the
//! differential property suite (`server_protocol_properties`) holds the
//! remote path to identity with the in-process path at 1, 2, and 4
//! shards, in order and under bounded disorder.

#![warn(missing_docs)]

pub mod protocol;

mod client;
mod server;

pub use client::{
    Client, ClientConfig, ClientError, IngestReport, RemoteQuery, RemoteStats, RetryPolicy,
    Subscription,
};
pub use server::{Server, ServerConfig, BUSY_CREDIT, INITIAL_CREDIT};
