//! Deterministic fault injection for the TiLT workspace.
//!
//! Production code declares named **failpoints** at its I/O and
//! cross-thread boundaries (`fail_point!("state.snapshot.write_record")`);
//! chaos tests **arm** those sites with seeded [`Policy`]s — error-once,
//! error-every-Nth, torn-write-after-K-bytes, delay, panic — and the site
//! misbehaves exactly as scheduled. The registry is process-global and
//! dependency-free.
//!
//! # Cost model
//!
//! When no site is armed (every production run), a failpoint is one
//! relaxed atomic load and a predictable branch — no lock, no map lookup,
//! no allocation. The slow path (a mutex-guarded site table) is entered
//! only while a test has at least one policy armed.
//!
//! # Test isolation
//!
//! The registry is global, so two tests arming sites concurrently would
//! trample each other. Chaos tests take the global [`Scenario`] guard,
//! which serializes them and resets the registry on entry and exit:
//!
//! ```
//! let _guard = tilt_fault::Scenario::setup();
//! tilt_fault::arm("state.spill.write", tilt_fault::Policy::ErrorNth(3));
//! // ... drive the system; every 3rd spill write now fails ...
//! // drop of the guard disarms everything
//! ```
//!
//! # Seeding
//!
//! [`seeded_nth`] and [`seeded_delay_us`] derive per-site parameters from
//! a schedule seed (the `FAULT_SEED` env var in CI, mirroring
//! `PROPTEST_SEED`), so a failing chaos run reproduces with
//! `FAULT_SEED=<n> cargo test ...`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

/// What an armed site does when execution passes through it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Fail the first hit after arming, then behave.
    ErrorOnce,
    /// Fail hits `n, 2n, 3n, ...` (1-based since arming). `ErrorNth(1)`
    /// fails every hit.
    ErrorNth(u64),
    /// Fail the first `k` hits, then behave.
    ErrorTimes(u64),
    /// For write sites: persist only the first `k` bytes of the write
    /// that trips the policy, then fail — a torn write. Trips on the
    /// first hit. Sites that cannot tear treat this as [`Policy::ErrorOnce`].
    TornAfter(u64),
    /// Sleep this long on every hit, then proceed normally. Models a
    /// stalled disk or peer without changing any outcome.
    Delay(Duration),
    /// Panic on the first hit (then behave) — exercises `catch_unwind`
    /// containment such as per-key kernel quarantine.
    Panic,
}

/// The verdict a failpoint site acts on. Delays have already been slept
/// by the time the caller sees a verdict, so only three shapes remain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Behave normally.
    Proceed,
    /// Fail this operation (return the site's error).
    Fail,
    /// Persist only the first `k` bytes, then fail.
    Torn(u64),
    /// Panic (sites inside `catch_unwind` containment let this unwind).
    Panic,
}

struct Site {
    policy: Policy,
    hits: u64,
    injected: u64,
}

struct RegistryInner {
    sites: HashMap<String, Site>,
    /// Injection counts survive `disarm` so a test can assert how many
    /// faults actually fired after the schedule ran dry.
    injected: HashMap<String, u64>,
}

static ANY_ARMED: AtomicBool = AtomicBool::new(false);
static INJECTED_TOTAL: AtomicU64 = AtomicU64::new(0);

fn registry() -> &'static Mutex<RegistryInner> {
    static REG: OnceLock<Mutex<RegistryInner>> = OnceLock::new();
    REG.get_or_init(|| {
        Mutex::new(RegistryInner { sites: HashMap::new(), injected: HashMap::new() })
    })
}

fn lock() -> MutexGuard<'static, RegistryInner> {
    // A panic policy unwinding through a caller while the lock is held
    // elsewhere must not wedge the registry for the rest of the process.
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Arms `site` with `policy`, replacing any previous policy (the hit
/// counter restarts). The site name is free-form; by convention it is
/// `crate.component.operation` (e.g. `state.snapshot.rename`).
pub fn arm(site: &str, policy: Policy) {
    let mut reg = lock();
    reg.sites.insert(site.to_string(), Site { policy, hits: 0, injected: 0 });
    ANY_ARMED.store(true, Ordering::Release);
}

/// Disarms `site`. Its cumulative injection count is retained for
/// [`injected`] / [`counters`].
pub fn disarm(site: &str) {
    let mut reg = lock();
    if let Some(s) = reg.sites.remove(site) {
        *reg.injected.entry(site.to_string()).or_insert(0) += s.injected;
    }
    if reg.sites.is_empty() {
        ANY_ARMED.store(false, Ordering::Release);
    }
}

/// Disarms every site and zeroes every counter. [`Scenario::setup`] calls
/// this on entry and exit.
pub fn reset() {
    let mut reg = lock();
    reg.sites.clear();
    reg.injected.clear();
    ANY_ARMED.store(false, Ordering::Release);
    INJECTED_TOTAL.store(0, Ordering::Relaxed);
}

/// Evaluates `site`: the call every `fail_point!` expands to. Returns
/// [`Action::Proceed`] immediately (one relaxed load) when nothing is
/// armed anywhere in the process.
pub fn evaluate(site: &str) -> Action {
    if !ANY_ARMED.load(Ordering::Acquire) {
        return Action::Proceed;
    }
    let (action, delay) = {
        let mut reg = lock();
        let Some(s) = reg.sites.get_mut(site) else {
            return Action::Proceed;
        };
        s.hits += 1;
        let action = match s.policy {
            Policy::ErrorOnce => {
                if s.hits == 1 {
                    Action::Fail
                } else {
                    Action::Proceed
                }
            }
            Policy::ErrorNth(n) => {
                if n > 0 && s.hits.is_multiple_of(n) {
                    Action::Fail
                } else {
                    Action::Proceed
                }
            }
            Policy::ErrorTimes(k) => {
                if s.hits <= k {
                    Action::Fail
                } else {
                    Action::Proceed
                }
            }
            Policy::TornAfter(k) => {
                if s.hits == 1 {
                    Action::Torn(k)
                } else {
                    Action::Proceed
                }
            }
            Policy::Delay(_) => Action::Proceed,
            Policy::Panic => {
                if s.hits == 1 {
                    Action::Panic
                } else {
                    Action::Proceed
                }
            }
        };
        let delay = match s.policy {
            Policy::Delay(d) => Some(d),
            _ => None,
        };
        if action != Action::Proceed || delay.is_some() {
            s.injected += 1;
            INJECTED_TOTAL.fetch_add(1, Ordering::Relaxed);
        }
        (action, delay)
    };
    if let Some(d) = delay {
        std::thread::sleep(d);
    }
    action
}

/// Cumulative faults injected at `site` since the last [`reset`]
/// (armed + retained-after-disarm).
pub fn injected(site: &str) -> u64 {
    let reg = lock();
    reg.sites.get(site).map_or(0, |s| s.injected) + reg.injected.get(site).copied().unwrap_or(0)
}

/// Total faults injected across every site since the last [`reset`].
pub fn injected_total() -> u64 {
    INJECTED_TOTAL.load(Ordering::Relaxed)
}

/// Per-site cumulative injection counts, sorted by site name — the feed
/// for the `tilt_fault_injected_total{site}` metric export.
pub fn counters() -> Vec<(String, u64)> {
    let reg = lock();
    let mut all: HashMap<String, u64> = reg.injected.clone();
    for (name, s) in &reg.sites {
        *all.entry(name.clone()).or_insert(0) += s.injected;
    }
    let mut out: Vec<(String, u64)> = all.into_iter().filter(|(_, n)| *n > 0).collect();
    out.sort();
    out
}

/// Serializes chaos tests against the process-global registry. Holding
/// the guard is what makes arming sites safe in a multi-threaded test
/// binary; entry and drop both [`reset`] the registry so schedules never
/// leak across tests.
pub struct Scenario {
    _guard: MutexGuard<'static, ()>,
}

impl Scenario {
    pub fn setup() -> Scenario {
        static GATE: Mutex<()> = Mutex::new(());
        // A prior test panicking mid-scenario (some chaos tests assert
        // under armed faults) must not poison every later scenario.
        let guard = GATE.lock().unwrap_or_else(PoisonError::into_inner);
        reset();
        Scenario { _guard: guard }
    }
}

impl Drop for Scenario {
    fn drop(&mut self) {
        reset();
    }
}

/// The schedule seed chaos tests run under: `FAULT_SEED` env (decimal or
/// `0x`-hex), else `default`. Mirrors the `PROPTEST_SEED` convention so
/// CI reruns reproduce by exporting one variable.
pub fn seed_from_env(default: u64) -> u64 {
    match std::env::var("FAULT_SEED") {
        Ok(s) => {
            let s = s.trim();
            let parsed = match s.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => s.parse(),
            };
            parsed.unwrap_or(default)
        }
        Err(_) => default,
    }
}

/// SplitMix64 over (seed, site): one deterministic draw per named site.
fn mix(seed: u64, site: &str) -> u64 {
    let mut z = seed;
    for b in site.bytes() {
        z = z.wrapping_add(b as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
    }
    z
}

/// A seeded [`Policy::ErrorNth`] with `n` drawn from `[lo, hi]` — the
/// standard way a chaos schedule varies pressure per site per seed.
pub fn seeded_nth(seed: u64, site: &str, lo: u64, hi: u64) -> Policy {
    let span = hi.max(lo) - lo + 1;
    Policy::ErrorNth(lo + mix(seed, site) % span)
}

/// A seeded [`Policy::TornAfter`] tearing within the first `max_bytes`.
pub fn seeded_torn(seed: u64, site: &str, max_bytes: u64) -> Policy {
    Policy::TornAfter(mix(seed, site) % max_bytes.max(1))
}

/// A seeded [`Policy::Delay`] of up to `max_us` microseconds.
pub fn seeded_delay_us(seed: u64, site: &str, max_us: u64) -> Policy {
    Policy::Delay(Duration::from_micros(mix(seed, site) % max_us.max(1)))
}

/// Declares a failpoint. Two forms:
///
/// * `fail_point!("site")` — delay and panic policies act; error policies
///   are ignored (for sites with no failure semantics, e.g. channel
///   sends that must not lose data).
/// * `fail_point!("site", expr)` — on an error verdict, evaluates `expr`
///   (conventionally `return Err(...)`); panic policies panic; delays
///   sleep and proceed.
///
/// Sites that honor torn writes call [`evaluate`] directly to get the
/// byte budget out of [`Action::Torn`].
#[macro_export]
macro_rules! fail_point {
    ($site:expr) => {
        match $crate::evaluate($site) {
            $crate::Action::Panic => panic!("failpoint {}: injected panic", $site),
            _ => {}
        }
    };
    ($site:expr, $on_fail:expr) => {
        match $crate::evaluate($site) {
            $crate::Action::Proceed => {}
            $crate::Action::Panic => panic!("failpoint {}: injected panic", $site),
            $crate::Action::Fail | $crate::Action::Torn(_) => {
                #[allow(clippy::unused_unit)]
                {
                    $on_fail
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sites_proceed() {
        let _s = Scenario::setup();
        assert_eq!(evaluate("never.armed"), Action::Proceed);
        assert_eq!(injected_total(), 0);
    }

    #[test]
    fn error_once_fires_exactly_once() {
        let _s = Scenario::setup();
        arm("t.once", Policy::ErrorOnce);
        assert_eq!(evaluate("t.once"), Action::Fail);
        assert_eq!(evaluate("t.once"), Action::Proceed);
        assert_eq!(evaluate("t.once"), Action::Proceed);
        assert_eq!(injected("t.once"), 1);
    }

    #[test]
    fn error_nth_fires_on_schedule() {
        let _s = Scenario::setup();
        arm("t.nth", Policy::ErrorNth(3));
        let verdicts: Vec<Action> = (0..9).map(|_| evaluate("t.nth")).collect();
        let fails = verdicts.iter().filter(|a| **a == Action::Fail).count();
        assert_eq!(fails, 3);
        assert_eq!(verdicts[2], Action::Fail);
        assert_eq!(verdicts[5], Action::Fail);
        assert_eq!(verdicts[8], Action::Fail);
    }

    #[test]
    fn error_times_fails_prefix() {
        let _s = Scenario::setup();
        arm("t.times", Policy::ErrorTimes(2));
        assert_eq!(evaluate("t.times"), Action::Fail);
        assert_eq!(evaluate("t.times"), Action::Fail);
        assert_eq!(evaluate("t.times"), Action::Proceed);
    }

    #[test]
    fn torn_carries_byte_budget_once() {
        let _s = Scenario::setup();
        arm("t.torn", Policy::TornAfter(7));
        assert_eq!(evaluate("t.torn"), Action::Torn(7));
        assert_eq!(evaluate("t.torn"), Action::Proceed);
    }

    #[test]
    fn counters_survive_disarm() {
        let _s = Scenario::setup();
        arm("t.keep", Policy::ErrorOnce);
        assert_eq!(evaluate("t.keep"), Action::Fail);
        disarm("t.keep");
        assert_eq!(evaluate("t.keep"), Action::Proceed);
        assert_eq!(injected("t.keep"), 1);
        assert_eq!(counters(), vec![("t.keep".to_string(), 1)]);
    }

    #[test]
    fn seeded_policies_are_deterministic_and_site_dependent() {
        let a = seeded_nth(42, "site.a", 2, 5);
        let b = seeded_nth(42, "site.a", 2, 5);
        assert_eq!(a, b);
        match a {
            Policy::ErrorNth(n) => assert!((2..=5).contains(&n)),
            other => panic!("unexpected policy {other:?}"),
        }
        // The draw is keyed on both seed and site: across a wide range at
        // least one of these pairs must differ (all equal would mean the
        // mix ignores its inputs entirely).
        let wide = |seed, site| seeded_nth(seed, site, 0, u64::MAX - 1);
        assert!(
            wide(42, "site.a") != wide(42, "site.b") || wide(42, "site.a") != wide(43, "site.a")
        );
    }

    #[test]
    fn macro_error_form_returns() {
        let _s = Scenario::setup();
        arm("t.macro", Policy::ErrorOnce);
        fn op() -> Result<u32, &'static str> {
            fail_point!("t.macro", return Err("injected"));
            Ok(1)
        }
        assert_eq!(op(), Err("injected"));
        assert_eq!(op(), Ok(1));
    }

    #[test]
    fn panic_policy_unwinds() {
        let _s = Scenario::setup();
        arm("t.panic", Policy::Panic);
        let r = std::panic::catch_unwind(|| {
            fail_point!("t.panic");
        });
        assert!(r.is_err());
        assert_eq!(evaluate("t.panic"), Action::Proceed);
    }
}
