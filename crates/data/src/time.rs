//! Logical time for temporal streams.
//!
//! TiLT is unit-agnostic: time is measured in integer *ticks* and every query
//! decides what a tick means (the paper uses seconds for exposition). A
//! [`Time`] is a point on the global timeline; a [`TimeRange`] is a half-open
//! interval `(start, end]`, the interval convention used by the paper for
//! event validity and window extents.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in logical time, measured in ticks.
///
/// `Time` is ordered and supports offset arithmetic with plain `i64` tick
/// counts. The extreme values [`Time::MIN`] and [`Time::MAX`] stand in for
/// `-∞` / `+∞` in unbounded time domains.
///
/// # Examples
///
/// ```
/// use tilt_data::Time;
/// let t = Time::new(10);
/// assert_eq!(t + 5, Time::new(15));
/// assert_eq!((t - Time::new(4)), 6);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(i64);

impl Time {
    /// The origin of the timeline (tick 0).
    pub const ZERO: Time = Time(0);
    /// Stands in for `-∞` in unbounded time domains.
    pub const MIN: Time = Time(i64::MIN / 4);
    /// Stands in for `+∞` in unbounded time domains.
    pub const MAX: Time = Time(i64::MAX / 4);

    /// Creates a time at the given tick.
    #[inline]
    pub const fn new(ticks: i64) -> Self {
        Time(ticks)
    }

    /// Returns the tick count of this time point.
    #[inline]
    pub const fn ticks(self) -> i64 {
        self.0
    }

    /// Saturating offset: adding past [`Time::MAX`] / [`Time::MIN`] clamps.
    #[inline]
    pub fn saturating_add(self, off: i64) -> Self {
        Time(self.0.saturating_add(off).clamp(Self::MIN.0, Self::MAX.0))
    }

    /// Rounds up to the next multiple of `precision` strictly greater than or
    /// equal to `self`. `precision` must be positive.
    ///
    /// Grid points are anchored at tick 0, matching the paper's
    /// `TDom(start, end, precision)` which lets values change only at
    /// multiples of the precision.
    #[inline]
    pub fn align_up(self, precision: i64) -> Self {
        debug_assert!(precision > 0);
        Time(
            self.0.div_euclid(precision) * precision
                + if self.0.rem_euclid(precision) == 0 { 0 } else { precision },
        )
    }

    /// Rounds down to the greatest multiple of `precision` less than or equal
    /// to `self`. `precision` must be positive.
    #[inline]
    pub fn align_down(self, precision: i64) -> Self {
        debug_assert!(precision > 0);
        Time(self.0.div_euclid(precision) * precision)
    }

    /// Returns the smaller of two times.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two times.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Time::MIN {
            write!(f, "-inf")
        } else if *self == Time::MAX {
            write!(f, "+inf")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<i64> for Time {
    fn from(t: i64) -> Self {
        Time(t)
    }
}

impl Add<i64> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: i64) -> Time {
        Time(self.0 + rhs)
    }
}

impl AddAssign<i64> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: i64) {
        self.0 += rhs;
    }
}

impl Sub<i64> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: i64) -> Time {
        Time(self.0 - rhs)
    }
}

impl SubAssign<i64> for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: i64) {
        self.0 -= rhs;
    }
}

impl Sub<Time> for Time {
    type Output = i64;
    #[inline]
    fn sub(self, rhs: Time) -> i64 {
        self.0 - rhs.0
    }
}

/// A half-open interval of logical time, `(start, end]`.
///
/// This is the validity-interval convention of the paper: an event with
/// interval `(s, e]` is *not* active at `s` and *is* active at `e`.
///
/// # Examples
///
/// ```
/// use tilt_data::{Time, TimeRange};
/// let r = TimeRange::new(Time::new(0), Time::new(10));
/// assert!(!r.contains(Time::new(0)));
/// assert!(r.contains(Time::new(10)));
/// assert_eq!(r.len(), 10);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeRange {
    /// Exclusive lower bound.
    pub start: Time,
    /// Inclusive upper bound.
    pub end: Time,
}

impl TimeRange {
    /// Creates the range `(start, end]`.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    #[inline]
    pub fn new(start: Time, end: Time) -> Self {
        assert!(end >= start, "TimeRange end {end:?} < start {start:?}");
        TimeRange { start, end }
    }

    /// The unbounded range `(-∞, +∞]`.
    pub const ALL: TimeRange = TimeRange { start: Time::MIN, end: Time::MAX };

    /// Length of the range in ticks.
    #[inline]
    pub fn len(&self) -> i64 {
        self.end - self.start
    }

    /// Whether the range contains no time points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }

    /// Whether `t` lies within `(start, end]`.
    #[inline]
    pub fn contains(&self, t: Time) -> bool {
        t > self.start && t <= self.end
    }

    /// Intersection of two ranges; empty ranges collapse to `(start, start]`.
    #[inline]
    pub fn intersect(&self, other: &TimeRange) -> TimeRange {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end).max(start);
        TimeRange { start, end }
    }

    /// Whether the two ranges share any time point.
    #[inline]
    pub fn overlaps(&self, other: &TimeRange) -> bool {
        self.start < other.end && other.start < self.end
    }
}

impl fmt::Debug for TimeRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?}, {:?}]", self.start, self.end)
    }
}

impl fmt::Display for TimeRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic() {
        let t = Time::new(7);
        assert_eq!(t + 3, Time::new(10));
        assert_eq!(t - 3, Time::new(4));
        assert_eq!(Time::new(10) - Time::new(4), 6);
        let mut u = t;
        u += 1;
        u -= 2;
        assert_eq!(u, Time::new(6));
    }

    #[test]
    fn align_up_handles_negatives_and_grid_points() {
        assert_eq!(Time::new(7).align_up(5), Time::new(10));
        assert_eq!(Time::new(10).align_up(5), Time::new(10));
        assert_eq!(Time::new(-7).align_up(5), Time::new(-5));
        assert_eq!(Time::new(-10).align_up(5), Time::new(-10));
        assert_eq!(Time::new(0).align_up(5), Time::new(0));
        assert_eq!(Time::new(1).align_up(1), Time::new(1));
    }

    #[test]
    fn align_down_handles_negatives() {
        assert_eq!(Time::new(7).align_down(5), Time::new(5));
        assert_eq!(Time::new(-7).align_down(5), Time::new(-10));
        assert_eq!(Time::new(10).align_down(5), Time::new(10));
    }

    #[test]
    fn range_contains_follows_half_open_convention() {
        let r = TimeRange::new(Time::new(5), Time::new(10));
        assert!(!r.contains(Time::new(5)));
        assert!(r.contains(Time::new(6)));
        assert!(r.contains(Time::new(10)));
        assert!(!r.contains(Time::new(11)));
    }

    #[test]
    fn range_intersection() {
        let a = TimeRange::new(Time::new(0), Time::new(10));
        let b = TimeRange::new(Time::new(5), Time::new(20));
        assert_eq!(a.intersect(&b), TimeRange::new(Time::new(5), Time::new(10)));
        let c = TimeRange::new(Time::new(15), Time::new(20));
        assert!(a.intersect(&c).is_empty());
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn saturating_add_clamps_at_infinities() {
        assert_eq!(Time::MAX.saturating_add(100), Time::MAX);
        assert_eq!(Time::MIN.saturating_add(-100), Time::MIN);
        assert_eq!(Time::new(5).saturating_add(3), Time::new(8));
    }

    #[test]
    fn infinities_format_readably() {
        assert_eq!(format!("{:?}", Time::MIN), "-inf");
        assert_eq!(format!("{:?}", Time::MAX), "+inf");
        assert_eq!(format!("{}", Time::new(42)), "42");
        assert_eq!(format!("{}", TimeRange::new(Time::new(1), Time::new(2))), "(1, 2]");
    }
}
