//! Events: payloads with validity intervals, and ordered event streams.

use std::fmt;

use crate::{Payload, Time, TimeRange, Value};

/// A stream event: a payload valid over the half-open interval `(start, end]`.
///
/// # Examples
///
/// ```
/// use tilt_data::{Event, Time};
/// let e = Event::new(Time::new(0), Time::new(5), 42.0);
/// assert_eq!(e.interval().len(), 5);
/// assert!(e.is_active_at(Time::new(3)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Event<P> {
    /// Exclusive start of the validity interval.
    pub start: Time,
    /// Inclusive end of the validity interval.
    pub end: Time,
    /// The event payload.
    pub payload: P,
}

impl<P> Event<P> {
    /// Creates an event valid on `(start, end]`.
    ///
    /// # Panics
    ///
    /// Panics if `end <= start` (zero-duration events carry no time points
    /// under the half-open convention and are rejected).
    #[inline]
    pub fn new(start: Time, end: Time, payload: P) -> Self {
        assert!(end > start, "event interval must be non-empty: ({start:?}, {end:?}]");
        Event { start, end, payload }
    }

    /// Creates a unit-length ("point") event at `t`, valid on `(t-1, t]`.
    ///
    /// Point events make tick-weighted window aggregates coincide with
    /// per-event aggregates, which is how all the paper's benchmark datasets
    /// are shaped.
    #[inline]
    pub fn point(t: Time, payload: P) -> Self {
        Event { start: t - 1, end: t, payload }
    }

    /// The validity interval `(start, end]`.
    #[inline]
    pub fn interval(&self) -> TimeRange {
        TimeRange { start: self.start, end: self.end }
    }

    /// Whether the event is active at time `t`.
    #[inline]
    pub fn is_active_at(&self, t: Time) -> bool {
        self.interval().contains(t)
    }

    /// Maps the payload, keeping the interval.
    #[inline]
    pub fn map<Q>(self, f: impl FnOnce(P) -> Q) -> Event<Q> {
        Event { start: self.start, end: self.end, payload: f(self.payload) }
    }
}

impl<P: fmt::Debug> fmt::Debug for Event<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}@({:?},{:?}]", self.payload, self.start, self.end)
    }
}

/// Checks that `events` are sorted by start time and pairwise non-overlapping,
/// the stream well-formedness condition assumed throughout (paper footnote 3).
///
/// Returns the index of the first offending event on failure.
pub fn validate_stream<P>(events: &[Event<P>]) -> Result<(), usize> {
    for i in 1..events.len() {
        if events[i].start < events[i - 1].end {
            return Err(i);
        }
    }
    Ok(())
}

/// Sorts events by start time. Does not resolve overlaps.
pub fn sort_stream<P>(events: &mut [Event<P>]) {
    events.sort_by_key(|e| (e.start, e.end));
}

/// Returns the smallest range `(min start, max end]` covering all events, or
/// `None` for an empty slice. Events must be sorted.
pub fn stream_extent<P>(events: &[Event<P>]) -> Option<TimeRange> {
    let first = events.first()?;
    let last = events.last()?;
    Some(TimeRange::new(first.start, last.end.max(first.end)))
}

/// Counts events whose interval overlaps `range`.
pub fn count_in_range<P>(events: &[Event<P>], range: TimeRange) -> usize {
    events.iter().filter(|e| e.interval().overlaps(&range)).count()
}

/// Compares two event streams for semantic equality using payload identity
/// ([`Payload::same`]), merging adjacent events with identical payloads first.
///
/// Different engines may or may not coalesce back-to-back events carrying the
/// same value; this comparison is the canonical-form equality used by the
/// differential tests.
pub fn streams_equivalent<P: Payload>(a: &[Event<P>], b: &[Event<P>]) -> bool {
    let ca = coalesce(a);
    let cb = coalesce(b);
    ca.len() == cb.len()
        && ca
            .iter()
            .zip(cb.iter())
            .all(|(x, y)| x.start == y.start && x.end == y.end && x.payload.same(&y.payload))
}

/// Compares two event streams up to numeric tolerance: same coalesced
/// intervals, payloads equal within relative error `rel` (floats) or exactly
/// (all other payload kinds).
///
/// Incremental aggregation (Subtract-on-Evict) legitimately differs from a
/// naive fold in the last float bits; differential tests over aggregates use
/// this instead of [`streams_equivalent`].
pub fn streams_close(a: &[Event<Value>], b: &[Event<Value>], rel: f64) -> bool {
    // Tolerant payload comparison means coalescing can differ at equal-value
    // boundaries; compare per-tick-interval alignment instead: both streams
    // must have identical interval structure before coalescing by identity.
    let ca = coalesce_close(a, rel);
    let cb = coalesce_close(b, rel);
    ca.len() == cb.len()
        && ca.iter().zip(cb.iter()).all(|(x, y)| {
            x.start == y.start && x.end == y.end && values_close(&x.payload, &y.payload, rel)
        })
}

/// Merges adjacent events whose payloads are within tolerance.
fn coalesce_close(events: &[Event<Value>], rel: f64) -> Vec<Event<Value>> {
    let mut out: Vec<Event<Value>> = Vec::with_capacity(events.len());
    for e in events {
        match out.last_mut() {
            Some(last) if last.end == e.start && values_close(&last.payload, &e.payload, rel) => {
                last.end = e.end;
            }
            _ => out.push(e.clone()),
        }
    }
    out
}

/// Whether two values are equal up to relative float tolerance `rel`
/// (recursively through tuples; exact for all non-float kinds).
pub fn values_close(a: &Value, b: &Value, rel: f64) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => {
            if x.to_bits() == y.to_bits() {
                return true;
            }
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() <= rel * scale
        }
        (Value::Float(x), Value::Int(y)) | (Value::Int(y), Value::Float(x)) => {
            (x - *y as f64).abs() <= rel * x.abs().max(1.0)
        }
        (Value::Tuple(xs), Value::Tuple(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys.iter()).all(|(x, y)| values_close(x, y, rel))
        }
        _ => a.same(b),
    }
}

/// Merges adjacent events (`prev.end == next.start`) with identical payloads.
pub fn coalesce<P: Payload>(events: &[Event<P>]) -> Vec<Event<P>> {
    let mut out: Vec<Event<P>> = Vec::with_capacity(events.len());
    for e in events {
        match out.last_mut() {
            Some(last) if last.end == e.start && last.payload.same(&e.payload) => {
                last.end = e.end;
            }
            _ => out.push(e.clone()),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_events_are_unit_length() {
        let e = Event::point(Time::new(5), 1.0);
        assert_eq!(e.start, Time::new(4));
        assert_eq!(e.end, Time::new(5));
        assert!(e.is_active_at(Time::new(5)));
        assert!(!e.is_active_at(Time::new(4)));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_duration_events_rejected() {
        let _ = Event::new(Time::new(3), Time::new(3), 0.0);
    }

    #[test]
    fn validation_flags_overlap() {
        let ok = vec![
            Event::new(Time::new(0), Time::new(5), 1.0),
            Event::new(Time::new(5), Time::new(9), 2.0),
        ];
        assert_eq!(validate_stream(&ok), Ok(()));
        let bad = vec![
            Event::new(Time::new(0), Time::new(5), 1.0),
            Event::new(Time::new(4), Time::new(9), 2.0),
        ];
        assert_eq!(validate_stream(&bad), Err(1));
    }

    #[test]
    fn extent_and_count() {
        let evs = vec![
            Event::new(Time::new(0), Time::new(5), 1.0),
            Event::new(Time::new(7), Time::new(9), 2.0),
        ];
        assert_eq!(stream_extent(&evs), Some(TimeRange::new(Time::new(0), Time::new(9))));
        assert_eq!(count_in_range(&evs, TimeRange::new(Time::new(6), Time::new(8))), 1);
        assert_eq!(stream_extent::<f64>(&[]), None);
    }

    #[test]
    fn coalesce_merges_adjacent_equal_payloads() {
        use crate::Value;
        let evs = vec![
            Event::new(Time::new(0), Time::new(5), Value::Int(1)),
            Event::new(Time::new(5), Time::new(9), Value::Int(1)),
            Event::new(Time::new(9), Time::new(10), Value::Int(2)),
        ];
        let merged = coalesce(&evs);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].interval(), TimeRange::new(Time::new(0), Time::new(9)));
        assert!(streams_equivalent(&evs, &merged));
    }

    #[test]
    fn streams_close_tolerates_float_drift() {
        let a = vec![Event::new(Time::new(0), Time::new(5), Value::Float(1.0))];
        let b = vec![
            Event::new(Time::new(0), Time::new(3), Value::Float(1.0 + 1e-12)),
            Event::new(Time::new(3), Time::new(5), Value::Float(1.0 - 1e-12)),
        ];
        assert!(streams_close(&a, &b, 1e-9));
        assert!(!streams_close(&a, &b, 1e-15));
        let c = vec![Event::new(Time::new(0), Time::new(5), Value::Float(2.0))];
        assert!(!streams_close(&a, &c, 1e-9));
        assert!(values_close(
            &Value::tuple([Value::Int(1), Value::Float(3.0)]),
            &Value::tuple([Value::Int(1), Value::Float(3.0 + 1e-12)]),
            1e-9
        ));
    }

    #[test]
    fn map_preserves_interval() {
        let e = Event::new(Time::new(1), Time::new(4), 2).map(|p| p * 10);
        assert_eq!(e.payload, 20);
        assert_eq!(e.interval(), TimeRange::new(Time::new(1), Time::new(4)));
    }
}
