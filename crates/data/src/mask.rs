//! Null masks for typed register files and batched lane columns.
//!
//! The typed kernel tier in `tilt-core` executes numeric expressions over
//! unboxed `f64`/`i64`/`bool` registers; φ ("no value") then lives out of
//! band in a [`NullMask`] — one flag per slot — instead of inside a
//! tagged [`crate::Value`], so the hot loop never touches the payload enum
//! to test for φ.
//!
//! Flags are bit-packed into `u64` words. The per-tick tier pays one
//! read-modify-write per flag store (measured in the noise next to the
//! dispatch loop around it), and in exchange the *batched* tier gets what
//! byte-backed flags cannot give: word-level φ algebra. A mask over a run
//! of ticks answers [`NullMask::none_null`] / [`NullMask::all_null`] with
//! one branch per 64 slots, combines operand masks with
//! [`NullMask::set_or`] a word at a time, and fills span-shaped runs with
//! [`NullMask::set_range`] — so φ propagation over a batch of lanes costs
//! O(lanes / 64) instead of one flag per lane per operation.

/// A fixed-capacity null mask with one flag per slot (`true` = φ).
///
/// # Examples
///
/// ```
/// use tilt_data::NullMask;
/// let mut m = NullMask::new(3);
/// assert!(m.get(0), "slots start as φ");
/// m.set(0, false);
/// assert!(!m.get(0));
/// m.set(0, true);
/// assert!(m.get(0));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NullMask {
    words: Vec<u64>,
    len: usize,
}

/// Bits per storage word.
const W: usize = 64;

impl NullMask {
    /// A mask of `len` slots, all initially null.
    pub fn new(len: usize) -> NullMask {
        let mut m = NullMask { words: vec![0; len.div_ceil(W)], len };
        m.set_all();
        m
    }

    /// Number of slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mask has zero slots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn check(&self, i: usize) {
        assert!(i < self.len, "index out of bounds: the len is {} but the index is {i}", self.len);
    }

    /// Whether slot `i` is null.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.check(i);
        self.words[i / W] >> (i % W) & 1 != 0
    }

    /// Sets slot `i` to null (`true`) or non-null (`false`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, null: bool) {
        self.check(i);
        let bit = 1u64 << (i % W);
        let w = &mut self.words[i / W];
        if null {
            *w |= bit;
        } else {
            *w &= !bit;
        }
    }

    /// Resets every slot to null.
    pub fn set_all(&mut self) {
        self.words.fill(!0);
        self.trim_tail();
    }

    /// Resets every slot to non-null.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Zeroes the unused high bits of the last word so whole-word scans
    /// never see ghost nulls past `len`.
    #[inline]
    fn trim_tail(&mut self) {
        let tail = self.len % W;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Whether the first `n` slots are all non-null — the batch fast path
    /// that lets a φ check over a run of lanes cost one branch per 64.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the mask length.
    #[inline]
    pub fn none_null(&self, n: usize) -> bool {
        assert!(n <= self.len, "index out of bounds: the len is {} but the index is {n}", self.len);
        let full = n / W;
        if self.words[..full].iter().any(|&w| w != 0) {
            return false;
        }
        let tail = n % W;
        tail == 0 || self.words[full] & ((1u64 << tail) - 1) == 0
    }

    /// Whether the first `n` slots are all null.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the mask length.
    #[inline]
    pub fn all_null(&self, n: usize) -> bool {
        assert!(n <= self.len, "index out of bounds: the len is {} but the index is {n}", self.len);
        let full = n / W;
        if self.words[..full].iter().any(|&w| w != !0) {
            return false;
        }
        let tail = n % W;
        tail == 0 || !self.words[full] & ((1u64 << tail) - 1) == 0
    }

    /// Sets slots `lo..hi` to `null` word-wise (span-shaped run fill).
    ///
    /// # Panics
    ///
    /// Panics if `hi` exceeds the mask length or `lo > hi`.
    pub fn set_range(&mut self, lo: usize, hi: usize, null: bool) {
        assert!(lo <= hi && hi <= self.len, "range {lo}..{hi} out of bounds (len {})", self.len);
        let mut i = lo;
        while i < hi {
            let w = i / W;
            let bit_lo = i % W;
            let bit_hi = if hi / W == w { hi % W } else { W };
            let span = if bit_hi - bit_lo == W {
                !0u64
            } else {
                ((1u64 << (bit_hi - bit_lo)) - 1) << bit_lo
            };
            if null {
                self.words[w] |= span;
            } else {
                self.words[w] &= !span;
            }
            i += bit_hi - bit_lo;
        }
    }

    /// Overwrites the first `n` slots with `a[i] | b[i]` — the φ
    /// propagation rule of binary typed operations, one word at a time.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds any of the three masks.
    pub fn set_or(&mut self, a: &NullMask, b: &NullMask, n: usize) {
        assert!(n <= self.len && n <= a.len && n <= b.len, "set_or: {n} out of bounds");
        for w in 0..n.div_ceil(W) {
            self.words[w] = a.words[w] | b.words[w];
        }
    }

    /// Overwrites the first `n` slots with a copy of `src`'s first `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds either mask.
    pub fn copy_from(&mut self, src: &NullMask, n: usize) {
        assert!(n <= self.len && n <= src.len, "copy_from: {n} out of bounds");
        self.words[..n.div_ceil(W)].copy_from_slice(&src.words[..n.div_ceil(W)]);
    }

    /// Merges `src`'s first `n` nulls into this mask (`self |= src`).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds either mask.
    pub fn or_with(&mut self, src: &NullMask, n: usize) {
        assert!(n <= self.len && n <= src.len, "or_with: {n} out of bounds");
        for w in 0..n.div_ceil(W) {
            self.words[w] |= src.words[w];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_all_null_and_toggles() {
        let mut m = NullMask::new(130);
        assert_eq!(m.len(), 130);
        assert!(!m.is_empty());
        assert!((0..130).all(|i| m.get(i)));
        m.set(0, false);
        m.set(63, false);
        m.set(64, false);
        m.set(129, false);
        assert!(!m.get(0) && !m.get(63) && !m.get(64) && !m.get(129));
        assert!(m.get(1) && m.get(65) && m.get(128));
        m.set(64, true);
        assert!(m.get(64));
        m.set_all();
        assert!((0..130).all(|i| m.get(i)));
    }

    #[test]
    fn empty_mask() {
        let m = NullMask::new(0);
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn out_of_bounds_get_panics() {
        let m = NullMask::new(4);
        let _ = m.get(4);
    }

    #[test]
    fn word_level_summaries_cross_boundaries() {
        for len in [63usize, 64, 65, 128, 130] {
            let mut m = NullMask::new(len);
            assert!(m.all_null(len), "len {len}");
            assert!(!m.none_null(len), "len {len}");
            m.clear_all();
            assert!(m.none_null(len), "len {len}");
            assert!(!m.all_null(len), "len {len}");
            // A single φ at the last slot must defeat none_null for any
            // prefix that covers it and no shorter prefix.
            m.set(len - 1, true);
            assert!(!m.none_null(len), "len {len}");
            assert!(m.none_null(len - 1), "len {len}");
        }
    }

    #[test]
    fn set_range_straddles_word_edges() {
        let mut m = NullMask::new(200);
        m.clear_all();
        m.set_range(60, 70, true);
        for i in 0..200 {
            assert_eq!(m.get(i), (60..70).contains(&i), "slot {i}");
        }
        m.set_range(0, 200, true);
        assert!(m.all_null(200));
        m.set_range(64, 128, false);
        assert!((64..128).all(|i| !m.get(i)));
        assert!(m.get(63) && m.get(128));
        m.set_range(5, 5, true); // empty range is a no-op
        assert!(!m.get(5) || m.get(5) == m.get(5));
    }

    #[test]
    fn set_or_and_copy() {
        let mut a = NullMask::new(100);
        let mut b = NullMask::new(100);
        a.clear_all();
        b.clear_all();
        a.set(3, true);
        a.set(64, true);
        b.set(65, true);
        let mut dst = NullMask::new(100);
        dst.set_or(&a, &b, 100);
        assert!(dst.get(3) && dst.get(64) && dst.get(65));
        assert!(!dst.get(4) && !dst.get(63) && !dst.get(66));

        let mut c = NullMask::new(100);
        c.copy_from(&dst, 100);
        assert_eq!(c, dst);
        let mut d = NullMask::new(100);
        d.clear_all();
        d.set(99, true);
        d.or_with(&a, 100);
        assert!(d.get(3) && d.get(64) && d.get(99) && !d.get(65));
    }

    #[test]
    fn tail_bits_never_ghost() {
        // set_all on a non-word-multiple length must not set ghost bits
        // that would break none_null/all_null word scans.
        let mut m = NullMask::new(65);
        m.set_all();
        assert!(m.all_null(65));
        m.set_range(0, 65, false);
        assert!(m.none_null(65));
        m.set(64, true);
        assert!(!m.none_null(65));
        assert!(m.none_null(64));
    }
}
