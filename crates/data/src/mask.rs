//! Null masks for typed register files.
//!
//! The typed kernel tier in `tilt-core` executes numeric expressions over
//! unboxed `f64`/`i64`/`bool` registers; φ ("no value") then lives out of
//! band in a [`NullMask`] — one flag per register — instead of inside a
//! tagged [`crate::Value`], so the hot loop never touches the payload enum
//! to test for φ.
//!
//! Flags are stored one byte per slot rather than bit-packed: every typed
//! instruction clears or sets its destination's flag, and independent byte
//! stores avoid the read-modify-write dependency chain that packed words
//! would thread through the whole instruction stream.

/// A fixed-capacity null mask with one flag per slot (`true` = φ).
///
/// # Examples
///
/// ```
/// use tilt_data::NullMask;
/// let mut m = NullMask::new(3);
/// assert!(m.get(0), "slots start as φ");
/// m.set(0, false);
/// assert!(!m.get(0));
/// m.set(0, true);
/// assert!(m.get(0));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NullMask {
    flags: Vec<bool>,
}

impl NullMask {
    /// A mask of `len` slots, all initially null.
    pub fn new(len: usize) -> NullMask {
        NullMask { flags: vec![true; len] }
    }

    /// Number of slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// Whether the mask has zero slots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }

    /// Whether slot `i` is null.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.flags[i]
    }

    /// Sets slot `i` to null (`true`) or non-null (`false`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, null: bool) {
        self.flags[i] = null;
    }

    /// Resets every slot to null.
    pub fn set_all(&mut self) {
        self.flags.fill(true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_all_null_and_toggles() {
        let mut m = NullMask::new(130);
        assert_eq!(m.len(), 130);
        assert!(!m.is_empty());
        assert!((0..130).all(|i| m.get(i)));
        m.set(0, false);
        m.set(63, false);
        m.set(64, false);
        m.set(129, false);
        assert!(!m.get(0) && !m.get(63) && !m.get(64) && !m.get(129));
        assert!(m.get(1) && m.get(65) && m.get(128));
        m.set(64, true);
        assert!(m.get(64));
        m.set_all();
        assert!((0..130).all(|i| m.get(i)));
    }

    #[test]
    fn empty_mask() {
        let m = NullMask::new(0);
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn out_of_bounds_get_panics() {
        let m = NullMask::new(4);
        let _ = m.get(4);
    }
}
