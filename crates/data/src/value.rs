//! Dynamic payload values with TiLT's φ (null) propagation semantics.
//!
//! The TiLT IR is dynamically executed over [`Value`]s: a small tagged union
//! covering the types the paper's queries need (booleans, integers, floats,
//! short strings, and structs). The distinguished [`Value::Null`] is the
//! paper's φ: *any* arithmetic or comparison involving φ yields φ, and only
//! the explicit `is_null` test (paper: `e != φ`) escapes back to booleans.

use std::fmt;
use std::sync::Arc;

use crate::Payload;

/// A dynamically typed stream payload.
///
/// # φ semantics
///
/// Arithmetic ([`Value::add`], …) and comparisons ([`Value::lt`], …) return
/// [`Value::Null`] when either operand is null; [`Value::is_null_v`] and the
/// logical connectives treat null as absence (Kleene logic for `and`/`or`).
///
/// # Examples
///
/// ```
/// use tilt_data::Value;
/// let a = Value::Float(2.0);
/// assert_eq!(a.add(&Value::Float(3.0)), Value::Float(5.0));
/// assert_eq!(a.add(&Value::Null), Value::Null);
/// assert_eq!(Value::Null.is_null_v(), Value::Bool(true));
/// ```
#[derive(Clone, Debug, Default)]
pub enum Value {
    /// The paper's φ: "no event active".
    #[default]
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// An immutable interned string.
    Str(Arc<str>),
    /// A struct payload (positional fields).
    Tuple(Arc<[Value]>),
}

impl Value {
    /// Builds a struct value from field values.
    pub fn tuple<I: IntoIterator<Item = Value>>(fields: I) -> Value {
        Value::Tuple(fields.into_iter().collect())
    }

    /// Builds a string value.
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    /// Returns the float content, coercing integers; `None` for other types.
    #[inline]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(x) => Some(*x as f64),
            _ => None,
        }
    }

    /// Returns the integer content; `None` for other types.
    #[inline]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(x) => Some(*x),
            _ => None,
        }
    }

    /// Returns the boolean content; `None` for other types (including φ).
    #[inline]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Projects field `i` of a struct value; φ projects to φ.
    ///
    /// # Panics
    ///
    /// Panics if `self` is a tuple and `i` is out of bounds, or if `self` is a
    /// non-tuple, non-null value (a type error caught by the IR type checker
    /// in well-formed programs).
    #[inline]
    pub fn field(&self, i: usize) -> Value {
        match self {
            Value::Tuple(fields) => fields[i].clone(),
            Value::Null => Value::Null,
            other => panic!("field access on non-struct value {other:?}"),
        }
    }

    /// Identity comparison used for snapshot coalescing: φ equals φ, floats
    /// compare bitwise (so NaN payloads coalesce deterministically).
    pub fn same(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Tuple(a), Value::Tuple(b)) => {
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.same(y))
            }
            _ => false,
        }
    }
}

/// Applies a binary numeric op with int/float promotion and φ propagation.
macro_rules! numeric_binop {
    ($name:ident, $int:expr, $float:expr) => {
        /// Numeric operation with φ propagation and int→float promotion.
        #[inline]
        pub fn $name(&self, other: &Value) -> Value {
            match (self, other) {
                (Value::Int(a), Value::Int(b)) => $int(*a, *b),
                (Value::Float(a), Value::Float(b)) => $float(*a, *b),
                (Value::Int(a), Value::Float(b)) => $float(*a as f64, *b),
                (Value::Float(a), Value::Int(b)) => $float(*a, *b as f64),
                _ => Value::Null,
            }
        }
    };
}

/// Applies a comparison with φ propagation.
macro_rules! compare_binop {
    ($name:ident, $op:tt) => {
        /// Comparison with φ propagation (φ compared with anything is φ).
        #[inline]
        pub fn $name(&self, other: &Value) -> Value {
            match (self, other) {
                (Value::Int(a), Value::Int(b)) => Value::Bool(a $op b),
                (Value::Float(a), Value::Float(b)) => Value::Bool(a $op b),
                (Value::Int(a), Value::Float(b)) => Value::Bool((*a as f64) $op *b),
                (Value::Float(a), Value::Int(b)) => Value::Bool(*a $op (*b as f64)),
                (Value::Str(a), Value::Str(b)) => Value::Bool(a $op b),
                (Value::Bool(a), Value::Bool(b)) => Value::Bool(a $op b),
                _ => Value::Null,
            }
        }
    };
}

impl Value {
    numeric_binop!(add, |a: i64, b: i64| Value::Int(a.wrapping_add(b)), |a: f64, b| Value::Float(
        a + b
    ));
    numeric_binop!(sub, |a: i64, b: i64| Value::Int(a.wrapping_sub(b)), |a: f64, b| Value::Float(
        a - b
    ));
    numeric_binop!(mul, |a: i64, b: i64| Value::Int(a.wrapping_mul(b)), |a: f64, b| Value::Float(
        a * b
    ));
    numeric_binop!(
        div,
        |a: i64, b: i64| if b == 0 { Value::Null } else { Value::Int(a / b) },
        |a: f64, b| Value::Float(a / b)
    );
    numeric_binop!(
        rem,
        |a: i64, b: i64| if b == 0 { Value::Null } else { Value::Int(a % b) },
        |a: f64, b: f64| Value::Float(a % b)
    );
    numeric_binop!(
        pow,
        |a: i64, b: i64| Value::Int(a.pow(b.clamp(0, u32::MAX as i64) as u32)),
        |a: f64, b: f64| Value::Float(a.powf(b))
    );
    numeric_binop!(min_v, |a: i64, b: i64| Value::Int(a.min(b)), |a: f64, b: f64| Value::Float(
        a.min(b)
    ));
    numeric_binop!(max_v, |a: i64, b: i64| Value::Int(a.max(b)), |a: f64, b: f64| Value::Float(
        a.max(b)
    ));

    compare_binop!(lt, <);
    compare_binop!(le, <=);
    compare_binop!(gt, >);
    compare_binop!(ge, >=);

    /// Equality as a value-level op (φ-propagating, unlike [`Value::same`]).
    #[inline]
    pub fn eq_v(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Value::Null,
            _ => Value::Bool(self.same(other)),
        }
    }

    /// Inequality as a value-level op (φ-propagating).
    #[inline]
    pub fn ne_v(&self, other: &Value) -> Value {
        match self.eq_v(other) {
            Value::Bool(b) => Value::Bool(!b),
            v => v,
        }
    }

    /// Arithmetic negation with φ propagation.
    #[inline]
    pub fn neg(&self) -> Value {
        match self {
            Value::Int(a) => Value::Int(-a),
            Value::Float(a) => Value::Float(-a),
            _ => Value::Null,
        }
    }

    /// Absolute value with φ propagation.
    #[inline]
    pub fn abs(&self) -> Value {
        match self {
            Value::Int(a) => Value::Int(a.abs()),
            Value::Float(a) => Value::Float(a.abs()),
            _ => Value::Null,
        }
    }

    /// Square root (promotes ints) with φ propagation.
    #[inline]
    pub fn sqrt(&self) -> Value {
        match self.as_f64() {
            Some(x) => Value::Float(x.sqrt()),
            None => Value::Null,
        }
    }

    /// Kleene logical and: `false ∧ x = false` even when `x` is φ.
    #[inline]
    pub fn and(&self, other: &Value) -> Value {
        match (self.as_bool(), other.as_bool()) {
            (Some(false), _) | (_, Some(false)) => Value::Bool(false),
            (Some(true), Some(true)) => Value::Bool(true),
            _ => Value::Null,
        }
    }

    /// Kleene logical or: `true ∨ x = true` even when `x` is φ.
    #[inline]
    pub fn or(&self, other: &Value) -> Value {
        match (self.as_bool(), other.as_bool()) {
            (Some(true), _) | (_, Some(true)) => Value::Bool(true),
            (Some(false), Some(false)) => Value::Bool(false),
            _ => Value::Null,
        }
    }

    /// Logical not with φ propagation.
    #[inline]
    pub fn not(&self) -> Value {
        match self {
            Value::Bool(b) => Value::Bool(!b),
            _ => Value::Null,
        }
    }

    /// The paper's `e != φ` test; never returns φ.
    #[inline]
    pub fn is_null_v(&self) -> Value {
        Value::Bool(matches!(self, Value::Null))
    }

    /// Casts to float (φ-propagating).
    #[inline]
    pub fn to_float(&self) -> Value {
        match self.as_f64() {
            Some(x) => Value::Float(x),
            None => Value::Null,
        }
    }

    /// Casts to integer, truncating floats (φ-propagating).
    #[inline]
    pub fn to_int(&self) -> Value {
        match self {
            Value::Int(x) => Value::Int(*x),
            Value::Float(x) => Value::Int(*x as i64),
            _ => Value::Null,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.same(other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "φ"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Tuple(fields) => {
                write!(f, "{{")?;
                for (i, v) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl Payload for Value {
    #[inline]
    fn null() -> Self {
        Value::Null
    }

    #[inline]
    fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    #[inline]
    fn same(&self, other: &Self) -> bool {
        Value::same(self, other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_propagates_through_arithmetic() {
        let x = Value::Float(1.5);
        assert_eq!(x.add(&Value::Null), Value::Null);
        assert_eq!(Value::Null.mul(&x), Value::Null);
        assert_eq!(Value::Null.neg(), Value::Null);
        assert_eq!(Value::Null.sqrt(), Value::Null);
        assert_eq!(x.lt(&Value::Null), Value::Null);
    }

    #[test]
    fn int_float_promotion() {
        assert_eq!(Value::Int(2).add(&Value::Float(0.5)), Value::Float(2.5));
        assert_eq!(Value::Float(1.0).mul(&Value::Int(4)), Value::Float(4.0));
        assert_eq!(Value::Int(7).div(&Value::Int(2)), Value::Int(3));
        assert_eq!(Value::Int(7).rem(&Value::Int(2)), Value::Int(1));
    }

    #[test]
    fn integer_division_by_zero_is_null() {
        assert_eq!(Value::Int(1).div(&Value::Int(0)), Value::Null);
        assert_eq!(Value::Int(1).rem(&Value::Int(0)), Value::Null);
    }

    #[test]
    fn kleene_logic() {
        let t = Value::Bool(true);
        let f = Value::Bool(false);
        assert_eq!(f.and(&Value::Null), Value::Bool(false));
        assert_eq!(t.and(&Value::Null), Value::Null);
        assert_eq!(t.or(&Value::Null), Value::Bool(true));
        assert_eq!(f.or(&Value::Null), Value::Null);
        assert_eq!(Value::Null.not(), Value::Null);
    }

    #[test]
    fn is_null_never_returns_null() {
        assert_eq!(Value::Null.is_null_v(), Value::Bool(true));
        assert_eq!(Value::Int(3).is_null_v(), Value::Bool(false));
    }

    #[test]
    fn tuples_project_and_compare() {
        let v = Value::tuple([Value::Int(1), Value::Float(2.0)]);
        assert_eq!(v.field(0), Value::Int(1));
        assert_eq!(v.field(1), Value::Float(2.0));
        assert_eq!(Value::Null.field(1), Value::Null);
        let w = Value::tuple([Value::Int(1), Value::Float(2.0)]);
        assert!(v.same(&w));
        assert_eq!(v.eq_v(&w), Value::Bool(true));
    }

    #[test]
    fn same_treats_nan_bitwise() {
        let nan = Value::Float(f64::NAN);
        assert!(nan.same(&Value::Float(f64::NAN)));
        assert!(!nan.same(&Value::Float(1.0)));
        assert!(Value::Null.same(&Value::Null));
    }

    #[test]
    fn comparisons_and_equality() {
        assert_eq!(Value::Int(2).lt(&Value::Int(3)), Value::Bool(true));
        assert_eq!(Value::Float(2.0).ge(&Value::Int(2)), Value::Bool(true));
        assert_eq!(Value::str("a").eq_v(&Value::str("a")), Value::Bool(true));
        assert_eq!(Value::str("a").ne_v(&Value::str("b")), Value::Bool(true));
        assert_eq!(Value::Int(1).eq_v(&Value::Null), Value::Null);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Value::Null.to_string(), "φ");
        assert_eq!(Value::tuple([Value::Int(1), Value::Bool(true)]).to_string(), "{1, true}");
    }

    #[test]
    fn min_max_and_misc_math() {
        assert_eq!(Value::Int(3).min_v(&Value::Int(5)), Value::Int(3));
        assert_eq!(Value::Float(3.0).max_v(&Value::Int(5)), Value::Float(5.0));
        assert_eq!(Value::Float(-2.5).abs(), Value::Float(2.5));
        assert_eq!(Value::Int(9).sqrt(), Value::Float(3.0));
        assert_eq!(Value::Float(2.0).pow(&Value::Int(10)), Value::Float(1024.0));
        assert_eq!(Value::Float(2.9).to_int(), Value::Int(2));
        assert_eq!(Value::Int(2).to_float(), Value::Float(2.0));
    }
}
