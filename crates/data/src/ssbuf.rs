//! Snapshot buffers: the physical encoding of temporal objects (paper §6.1.1).
//!
//! A temporal object is a piecewise-constant function of time. A
//! [`SnapshotBuf`] stores only the *changes* of that function: an ordered
//! sequence of spans `(t_end, value)` where span *i* carries `value` over
//! `(t_end[i-1], t_end[i]]` (the first span starts at the buffer's start
//! time). Gaps — times with no active event — are explicit φ spans, exactly
//! as in Fig. 5 of the paper.

use std::fmt;

use crate::{coalesce, Event, Payload, Time, TimeRange};

/// One entry of a snapshot buffer: `value` holds until `t_end` (inclusive).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Span<P> {
    /// Inclusive end of the span.
    pub t_end: Time,
    /// The value over the span.
    pub value: P,
}

/// A snapshot buffer: the change-point encoding of a temporal object.
///
/// Invariants (checked in debug builds, preserved by all constructors):
///
/// * span end times are strictly increasing and all greater than `start`;
/// * outside `(start, end]` the object is φ.
///
/// Adjacent spans *may* carry equal values: the paper's reduction functions
/// fold each snapshot once (eq. 3 folds the *values* the object assumes, one
/// per snapshot), so span boundaries carry event identity — two back-to-back
/// events with the same price are two snapshots, not one. Use
/// [`SnapshotBuf::push`] for coalescing writes (derived piecewise-constant
/// results) and [`SnapshotBuf::push_raw`] to preserve boundaries (event
/// ingestion and kernel outputs).
///
/// # Examples
///
/// ```
/// use tilt_data::{Event, SnapshotBuf, Time, TimeRange, Value};
/// let events = vec![Event::new(Time::new(5), Time::new(10), Value::Float(1.0))];
/// let buf = SnapshotBuf::from_events(&events, TimeRange::new(Time::new(0), Time::new(12)));
/// assert_eq!(buf.value_at(Time::new(7)), Value::Float(1.0));
/// assert_eq!(buf.value_at(Time::new(11)), Value::Null);
/// ```
#[derive(Clone, PartialEq)]
pub struct SnapshotBuf<P> {
    start: Time,
    spans: Vec<Span<P>>,
}

impl<P: Payload> SnapshotBuf<P> {
    /// Creates an empty buffer whose first span will begin at `start`.
    pub fn new(start: Time) -> Self {
        SnapshotBuf { start, spans: Vec::new() }
    }

    /// Creates an empty buffer with span capacity pre-allocated.
    pub fn with_capacity(start: Time, capacity: usize) -> Self {
        SnapshotBuf { start, spans: Vec::with_capacity(capacity) }
    }

    /// Builds a buffer covering `range` from a sorted, non-overlapping event
    /// stream, clipping events to `range` and inserting φ spans for gaps.
    ///
    /// # Panics
    ///
    /// Panics (debug) if events are unsorted or overlapping.
    pub fn from_events(events: &[Event<P>], range: TimeRange) -> Self {
        debug_assert!(crate::validate_stream(events).is_ok(), "events must be sorted and disjoint");
        let mut buf = SnapshotBuf::with_capacity(range.start, events.len() * 2 + 1);
        for e in events {
            let iv = e.interval().intersect(&range);
            if iv.is_empty() {
                continue;
            }
            if iv.start > buf.end() {
                buf.push_raw(iv.start, P::null());
            }
            buf.push_raw(iv.end, e.payload.clone());
        }
        if buf.end() < range.end {
            buf.push_raw(range.end, P::null());
        }
        buf
    }

    /// Extracts the non-φ spans as events (the inverse of
    /// [`SnapshotBuf::from_events`] up to coalescing).
    pub fn to_events(&self) -> Vec<Event<P>> {
        let mut out = Vec::new();
        let mut prev = self.start;
        for s in &self.spans {
            if !s.value.is_null() {
                out.push(Event::new(prev, s.t_end, s.value.clone()));
            }
            prev = s.t_end;
        }
        coalesce(&out)
    }

    /// Appends a span ending at `t_end`, coalescing with the last span when
    /// values are identical.
    ///
    /// # Panics
    ///
    /// Panics if `t_end` does not advance past the current end.
    pub fn push(&mut self, t_end: Time, value: P) {
        assert!(t_end > self.end(), "span end {t_end:?} must advance past {:?}", self.end());
        match self.spans.last_mut() {
            Some(last) if last.value.same(&value) => last.t_end = t_end,
            _ => self.spans.push(Span { t_end, value }),
        }
    }

    /// Appends a span ending at `t_end` without coalescing, preserving the
    /// boundary as a distinct snapshot (event identity).
    ///
    /// # Panics
    ///
    /// Panics if `t_end` does not advance past the current end.
    pub fn push_raw(&mut self, t_end: Time, value: P) {
        assert!(t_end > self.end(), "span end {t_end:?} must advance past {:?}", self.end());
        self.spans.push(Span { t_end, value });
    }

    /// Resets the buffer to an empty state rooted at `start`, retaining the
    /// span allocation. This is what lets hot emission paths recycle
    /// buffers through a [`BufPool`] instead of reallocating every cycle.
    pub fn reset(&mut self, start: Time) {
        self.start = start;
        self.spans.clear();
    }

    /// Exclusive start of the buffer's coverage.
    #[inline]
    pub fn start(&self) -> Time {
        self.start
    }

    /// Inclusive end of the buffer's coverage (equals `start` when empty).
    #[inline]
    pub fn end(&self) -> Time {
        self.spans.last().map_or(self.start, |s| s.t_end)
    }

    /// The covered range `(start, end]`.
    #[inline]
    pub fn range(&self) -> TimeRange {
        TimeRange { start: self.start, end: self.end() }
    }

    /// Number of spans (change points).
    #[inline]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the buffer covers no time at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The raw spans, ordered by end time.
    #[inline]
    pub fn spans(&self) -> &[Span<P>] {
        &self.spans
    }

    /// Iterates `(interval, value)` pairs in time order.
    pub fn iter(&self) -> impl Iterator<Item = (TimeRange, &P)> + '_ {
        let mut prev = self.start;
        self.spans.iter().map(move |s| {
            let iv = TimeRange { start: prev, end: s.t_end };
            prev = s.t_end;
            (iv, &s.value)
        })
    }

    /// The value of the temporal object at time `t` (φ outside coverage).
    pub fn value_at(&self, t: Time) -> P {
        if t <= self.start || t > self.end() {
            return P::null();
        }
        let i = self.spans.partition_point(|s| s.t_end < t);
        self.spans[i].value.clone()
    }

    /// Index of the span containing `t`, if within coverage.
    #[inline]
    pub fn span_index_at(&self, t: Time) -> Option<usize> {
        if t <= self.start || t > self.end() {
            return None;
        }
        Some(self.spans.partition_point(|s| s.t_end < t))
    }

    /// Exclusive start time of span `i`.
    #[inline]
    pub fn span_start(&self, i: usize) -> Time {
        if i == 0 {
            self.start
        } else {
            self.spans[i - 1].t_end
        }
    }

    /// Copies the restriction of the object to `range` into a fresh buffer
    /// (used by the batched/latency execution mode; the parallel executor
    /// reads the shared buffer in place instead).
    pub fn slice(&self, range: TimeRange) -> SnapshotBuf<P> {
        let mut out = SnapshotBuf::new(range.start);
        self.slice_into(range, &mut out);
        out
    }

    /// Like [`SnapshotBuf::slice`], but writes into `out` (reset first),
    /// reusing its span allocation. Hot emission paths recycle per-advance
    /// output slices through a [`BufPool`] this way instead of allocating a
    /// fresh buffer per advance.
    pub fn slice_into(&self, range: TimeRange, out: &mut SnapshotBuf<P>) {
        let range = range.intersect(&self.range().intersect(&TimeRange::ALL));
        out.reset(range.start);
        if range.is_empty() {
            return;
        }
        let first = self.spans.partition_point(|s| s.t_end <= range.start);
        for s in &self.spans[first..] {
            let end = s.t_end.min(range.end);
            out.push_raw(end, s.value.clone());
            if end == range.end {
                break;
            }
        }
    }

    /// The first time strictly after `t` at which the object value (or span
    /// identity) changes: the buffer start if `t` precedes coverage, the end
    /// of the span containing/following `t` otherwise; `None` past the end.
    pub fn next_boundary_after(&self, t: Time) -> Option<Time> {
        if self.spans.is_empty() || t >= self.end() {
            return None;
        }
        if t < self.start {
            return Some(self.start);
        }
        let i = self.spans.partition_point(|s| s.t_end <= t);
        Some(self.spans[i].t_end)
    }

    /// Concatenates partition outputs that tile `(start, end]` back into one
    /// canonical buffer, merging equal values across the seams.
    ///
    /// # Panics
    ///
    /// Panics if the parts do not tile contiguously.
    pub fn concat(parts: Vec<SnapshotBuf<P>>) -> SnapshotBuf<P> {
        let mut iter = parts.into_iter();
        let mut out = match iter.next() {
            Some(first) => first,
            None => return SnapshotBuf::new(Time::ZERO),
        };
        for part in iter {
            assert_eq!(part.start, out.end(), "partition outputs must tile contiguously");
            for s in part.spans {
                out.push(s.t_end, s.value);
            }
        }
        out
    }

    /// Checks the structural invariants; used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut prev = self.start;
        for (i, s) in self.spans.iter().enumerate() {
            if s.t_end <= prev {
                return Err(format!("span {i} end {:?} does not advance past {prev:?}", s.t_end));
            }
            prev = s.t_end;
        }
        Ok(())
    }

    /// Whether no two adjacent spans carry equal values (fully coalesced).
    pub fn is_coalesced(&self) -> bool {
        self.spans.windows(2).all(|w| !w[0].value.same(&w[1].value))
    }
}

/// A recycling pool of [`SnapshotBuf`] allocations.
///
/// Streaming sessions allocate several intermediate buffers per emission
/// cycle (one per distinct kernel); under millions of advances per second
/// that allocation churn dominates small-batch costs. A pool owned by the
/// *worker* (one per shard thread, not per key session) lets every advance
/// reuse the span vectors of the previous one without holding per-key
/// memory: [`BufPool::take`] hands out a reset buffer, [`BufPool::put`]
/// returns it once its contents have been consumed.
pub struct BufPool<P> {
    free: Vec<SnapshotBuf<P>>,
}

impl<P> Default for BufPool<P> {
    fn default() -> Self {
        BufPool { free: Vec::new() }
    }
}

impl<P> fmt::Debug for BufPool<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BufPool({} idle)", self.free.len())
    }
}

impl<P: Payload> BufPool<P> {
    /// An empty pool.
    pub fn new() -> Self {
        BufPool { free: Vec::new() }
    }

    /// Takes a buffer rooted at `start`: a recycled allocation when one is
    /// available, a fresh one otherwise.
    pub fn take(&mut self, start: Time) -> SnapshotBuf<P> {
        match self.free.pop() {
            Some(mut buf) => {
                buf.reset(start);
                buf
            }
            None => SnapshotBuf::new(start),
        }
    }

    /// Returns a consumed buffer's allocation to the pool.
    pub fn put(&mut self, buf: SnapshotBuf<P>) {
        self.free.push(buf);
    }

    /// Number of idle buffers held.
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

impl<P: Payload> fmt::Debug for SnapshotBuf<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SSBuf[{:?}", self.start)?;
        for s in &self.spans {
            write!(f, " ({:?},{:?})", s.t_end, s.value)?;
        }
        write!(f, "]")
    }
}

/// A monotonic read cursor over a snapshot buffer.
///
/// Kernels generated by the TiLT compiler advance time monotonically; the
/// cursor remembers its last position so value lookups and next-change
/// queries are amortized O(1) instead of a binary search per tick.
#[derive(Clone, Debug)]
pub struct SsCursor<'a, P: Payload> {
    buf: &'a SnapshotBuf<P>,
    idx: usize,
}

impl<'a, P: Payload> SsCursor<'a, P> {
    /// Creates a cursor positioned at the beginning of `buf`.
    pub fn new(buf: &'a SnapshotBuf<P>) -> Self {
        SsCursor { buf, idx: 0 }
    }

    /// The underlying buffer.
    #[inline]
    pub fn buffer(&self) -> &'a SnapshotBuf<P> {
        self.buf
    }

    /// Advances to the span containing `t` and returns the object value at
    /// `t` (φ outside coverage). `t` must not decrease across calls for the
    /// amortized O(1) bound, but correctness holds for any `t` at the cost of
    /// a re-scan.
    pub fn value_at(&mut self, t: Time) -> P {
        if t <= self.buf.start || t > self.buf.end() {
            return P::null();
        }
        self.seek(t);
        self.buf.spans[self.idx].value.clone()
    }

    /// Returns the value at `t` together with the end of the span providing
    /// it (`None` when the value is φ forever after): one seek answers both
    /// "what is the value" and "when can it next change", which is what the
    /// generated kernel loop asks every iteration.
    pub fn value_and_boundary(&mut self, t: Time) -> (P, Option<Time>) {
        let (v, b) = self.value_ref_and_boundary(t);
        (v.cloned().unwrap_or_else(P::null), b)
    }

    /// Returns a reference to the value at `t`, or `None` when φ-outside.
    pub fn value_ref_at(&mut self, t: Time) -> Option<&'a P> {
        if t <= self.buf.start || t > self.buf.end() {
            return None;
        }
        self.seek(t);
        Some(&self.buf.spans[self.idx].value)
    }

    /// Like [`SsCursor::value_and_boundary`], but hands back a *reference*
    /// to the span value instead of cloning it (`None` when `t` is outside
    /// coverage). This is the typed fast path: callers that unbox the
    /// payload in place (see the `tilt-core` compiled kernel tier) read the
    /// span without ever cloning the enum.
    pub fn value_ref_and_boundary(&mut self, t: Time) -> (Option<&'a P>, Option<Time>) {
        if t <= self.buf.start {
            let b = if self.buf.is_empty() { None } else { Some(self.buf.start) };
            return (None, b);
        }
        if t > self.buf.end() {
            return (None, None);
        }
        self.seek(t);
        let span = &self.buf.spans[self.idx];
        (Some(&span.value), Some(span.t_end))
    }

    /// The next time strictly after `t` at which the object value changes,
    /// or `None` when the value is constant ever after.
    ///
    /// Change points are the buffer start (φ → first span) and every span
    /// end (value → next value, or → φ at the buffer end).
    pub fn next_change_after(&mut self, t: Time) -> Option<Time> {
        if t < self.buf.start {
            return if self.buf.is_empty() { None } else { Some(self.buf.start) };
        }
        if t >= self.buf.end() {
            return None;
        }
        self.seek_boundary(t);
        Some(self.buf.spans[self.idx].t_end)
    }

    /// Positions `idx` at the span containing `t` (requires coverage).
    #[inline]
    fn seek(&mut self, t: Time) {
        if self.idx >= self.buf.spans.len() || self.buf.span_start(self.idx) >= t {
            self.idx = self.buf.spans.partition_point(|s| s.t_end < t);
            return;
        }
        while self.buf.spans[self.idx].t_end < t {
            self.idx += 1;
        }
    }

    /// Positions `idx` at the first span with `t_end > t` (requires `t` in
    /// `[start, end)`).
    #[inline]
    fn seek_boundary(&mut self, t: Time) {
        if self.idx >= self.buf.spans.len() || self.buf.span_start(self.idx) > t {
            self.idx = self.buf.spans.partition_point(|s| s.t_end <= t);
            return;
        }
        while self.buf.spans[self.idx].t_end <= t {
            self.idx += 1;
        }
    }
}

impl<'a> SsCursor<'a, crate::Value> {
    /// Float fast path of [`SsCursor::value_and_boundary`]: the value at `t`
    /// unboxed to `f64` (`None` for φ or non-numeric payloads; integers
    /// coerce) together with the providing span's end. The compiled kernel
    /// tier loads `Float`-typed point accesses through this, so the hot
    /// loop reads one discriminant instead of cloning a [`crate::Value`].
    #[inline]
    pub fn value_f64_and_boundary(&mut self, t: Time) -> (Option<f64>, Option<Time>) {
        let (v, b) = self.value_ref_and_boundary(t);
        (v.and_then(crate::Value::as_f64), b)
    }

    /// Integer fast path: the value at `t` unboxed to `i64` (`None` for φ
    /// or non-integer payloads) together with the providing span's end.
    #[inline]
    pub fn value_i64_and_boundary(&mut self, t: Time) -> (Option<i64>, Option<Time>) {
        let (v, b) = self.value_ref_and_boundary(t);
        (v.and_then(crate::Value::as_i64), b)
    }

    /// Boolean fast path: the value at `t` unboxed to `bool` (`None` for φ
    /// or non-boolean payloads) together with the providing span's end.
    #[inline]
    pub fn value_bool_and_boundary(&mut self, t: Time) -> (Option<bool>, Option<Time>) {
        let (v, b) = self.value_ref_and_boundary(t);
        (v.and_then(crate::Value::as_bool), b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    fn fbuf(events: &[(i64, i64, f64)], lo: i64, hi: i64) -> SnapshotBuf<Value> {
        let evs: Vec<Event<Value>> = events
            .iter()
            .map(|&(s, e, v)| Event::new(Time::new(s), Time::new(e), Value::Float(v)))
            .collect();
        SnapshotBuf::from_events(&evs, TimeRange::new(Time::new(lo), Time::new(hi)))
    }

    #[test]
    fn from_events_matches_figure_5() {
        // Events a=(5,10], b=(16,23], c=(30,35] over (0, 40].
        let buf = fbuf(&[(5, 10, 1.0), (16, 23, 2.0), (30, 35, 3.0)], 0, 40);
        let ends: Vec<i64> = buf.spans().iter().map(|s| s.t_end.ticks()).collect();
        assert_eq!(ends, vec![5, 10, 16, 23, 30, 35, 40]);
        assert_eq!(buf.value_at(Time::new(5)), Value::Null);
        assert_eq!(buf.value_at(Time::new(6)), Value::Float(1.0));
        assert_eq!(buf.value_at(Time::new(10)), Value::Float(1.0));
        assert_eq!(buf.value_at(Time::new(11)), Value::Null);
        assert_eq!(buf.value_at(Time::new(23)), Value::Float(2.0));
        assert_eq!(buf.value_at(Time::new(36)), Value::Null);
        buf.check_invariants().unwrap();
    }

    #[test]
    fn round_trip_to_events() {
        let buf = fbuf(&[(5, 10, 1.0), (16, 23, 2.0)], 0, 30);
        let evs = buf.to_events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].interval(), TimeRange::new(Time::new(5), Time::new(10)));
        assert_eq!(evs[1].payload, Value::Float(2.0));
    }

    #[test]
    fn push_coalesces_equal_values() {
        let mut buf: SnapshotBuf<Value> = SnapshotBuf::new(Time::new(0));
        buf.push(Time::new(5), Value::Int(1));
        buf.push(Time::new(9), Value::Int(1));
        buf.push(Time::new(12), Value::Int(2));
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.value_at(Time::new(8)), Value::Int(1));
        buf.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "must advance")]
    fn push_rejects_non_advancing_end() {
        let mut buf: SnapshotBuf<Value> = SnapshotBuf::new(Time::new(0));
        buf.push(Time::new(5), Value::Int(1));
        buf.push(Time::new(5), Value::Int(2));
    }

    #[test]
    fn slice_restricts_and_renormalizes() {
        let buf = fbuf(&[(5, 10, 1.0), (16, 23, 2.0)], 0, 30);
        let s = buf.slice(TimeRange::new(Time::new(7), Time::new(20)));
        assert_eq!(s.range(), TimeRange::new(Time::new(7), Time::new(20)));
        assert_eq!(s.value_at(Time::new(8)), Value::Float(1.0));
        assert_eq!(s.value_at(Time::new(12)), Value::Null);
        assert_eq!(s.value_at(Time::new(18)), Value::Float(2.0));
        s.check_invariants().unwrap();
    }

    #[test]
    fn concat_merges_seams() {
        let buf = fbuf(&[(0, 20, 1.0)], 0, 20);
        let a = buf.slice(TimeRange::new(Time::new(0), Time::new(10)));
        let b = buf.slice(TimeRange::new(Time::new(10), Time::new(20)));
        let joined = SnapshotBuf::concat(vec![a, b]);
        assert_eq!(joined.len(), 1);
        assert_eq!(joined, buf);
    }

    #[test]
    fn cursor_tracks_values_and_changes() {
        let buf = fbuf(&[(5, 10, 1.0), (16, 23, 2.0)], 0, 30);
        let mut cur = SsCursor::new(&buf);
        assert_eq!(cur.value_at(Time::new(3)), Value::Null);
        assert_eq!(cur.value_at(Time::new(6)), Value::Float(1.0));
        assert_eq!(cur.value_at(Time::new(20)), Value::Float(2.0));
        let mut cur2 = SsCursor::new(&buf);
        assert_eq!(cur2.next_change_after(Time::new(0)), Some(Time::new(5)));
        assert_eq!(cur2.next_change_after(Time::new(5)), Some(Time::new(10)));
        assert_eq!(cur2.next_change_after(Time::new(24)), Some(Time::new(30)));
        assert_eq!(cur2.next_change_after(Time::new(30)), None);
        assert_eq!(cur2.next_change_after(Time::new(-5)), Some(Time::new(0)));
    }

    #[test]
    fn cursor_handles_backward_seek() {
        let buf = fbuf(&[(5, 10, 1.0), (16, 23, 2.0)], 0, 30);
        let mut cur = SsCursor::new(&buf);
        assert_eq!(cur.value_at(Time::new(20)), Value::Float(2.0));
        assert_eq!(cur.value_at(Time::new(6)), Value::Float(1.0));
    }

    #[test]
    fn slice_into_recycles_and_matches_slice() {
        let buf = fbuf(&[(5, 10, 1.0), (16, 23, 2.0)], 0, 30);
        let mut out: SnapshotBuf<Value> = SnapshotBuf::new(Time::new(99));
        out.push_raw(Time::new(200), Value::Float(9.0)); // stale content to overwrite
        for (lo, hi) in [(7i64, 20i64), (0, 30), (25, 28), (40, 50)] {
            let range = TimeRange::new(Time::new(lo), Time::new(hi));
            buf.slice_into(range, &mut out);
            assert_eq!(out, buf.slice(range), "range ({lo},{hi}]");
        }
    }

    #[test]
    fn typed_cursor_accessors_match_dynamic_reads() {
        let buf = fbuf(&[(5, 10, 1.5), (16, 23, 2.5)], 0, 30);
        let mut dynamic = SsCursor::new(&buf);
        let mut fast = SsCursor::new(&buf);
        for t in 0..=31 {
            let t = Time::new(t);
            let (v, b) = dynamic.value_and_boundary(t);
            let (x, bf) = fast.value_f64_and_boundary(t);
            assert_eq!(x, v.as_f64(), "value at {t:?}");
            assert_eq!(bf, b, "boundary at {t:?}");
        }
        // Wrong-class unboxing reads as φ without disturbing the boundary.
        let mut ints = SsCursor::new(&buf);
        assert_eq!(ints.value_i64_and_boundary(Time::new(7)), (None, Some(Time::new(10))));
        let bools = SsCursor::new(&buf).value_bool_and_boundary(Time::new(7));
        assert_eq!(bools, (None, Some(Time::new(10))));
        // Int payloads coerce on the float path, exactly like `Value::as_f64`.
        let ibuf = SnapshotBuf::from_events(
            &[Event::point(Time::new(2), Value::Int(7))],
            TimeRange::new(Time::new(0), Time::new(4)),
        );
        assert_eq!(
            SsCursor::new(&ibuf).value_f64_and_boundary(Time::new(2)),
            (Some(7.0), Some(Time::new(2)))
        );
    }

    #[test]
    fn empty_buffer_behaviour() {
        let buf: SnapshotBuf<Value> = SnapshotBuf::new(Time::new(0));
        assert!(buf.is_empty());
        assert_eq!(buf.value_at(Time::new(1)), Value::Null);
        assert_eq!(buf.end(), Time::new(0));
        let mut cur = SsCursor::new(&buf);
        assert_eq!(cur.next_change_after(Time::new(-2)), None);
    }

    #[test]
    fn iter_yields_contiguous_intervals() {
        let buf = fbuf(&[(5, 10, 1.0)], 0, 12);
        let items: Vec<(TimeRange, Value)> = buf.iter().map(|(r, v)| (r, v.clone())).collect();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].0, TimeRange::new(Time::new(0), Time::new(5)));
        assert_eq!(items[1].1, Value::Float(1.0));
        assert_eq!(items[2].0, TimeRange::new(Time::new(10), Time::new(12)));
    }
}
