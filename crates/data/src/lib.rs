//! Data-plane foundations for the TiLT reproduction.
//!
//! This crate defines the shared vocabulary every engine in the workspace
//! speaks:
//!
//! * [`Time`] / [`TimeRange`] — logical tick time and half-open `(start, end]`
//!   intervals;
//! * [`Value`] — dynamically typed payloads with the paper's φ (null)
//!   propagation semantics;
//! * [`Event`] — payload + validity interval, the event-centric view;
//! * [`SnapshotBuf`] — change-point encoded temporal objects (paper §6.1.1),
//!   the time-centric view, plus the [`SsCursor`] used by generated kernels.
//!
//! # Example
//!
//! ```
//! use tilt_data::{Event, SnapshotBuf, Time, TimeRange, Value};
//!
//! let events = vec![
//!     Event::new(Time::new(0), Time::new(5), Value::Float(10.0)),
//!     Event::new(Time::new(5), Time::new(10), Value::Float(11.0)),
//! ];
//! let buf = SnapshotBuf::from_events(&events, TimeRange::new(Time::new(0), Time::new(10)));
//! assert_eq!(buf.value_at(Time::new(7)), Value::Float(11.0));
//! assert_eq!(buf.to_events().len(), 2);
//! ```

#![warn(missing_docs)]

mod event;
mod mask;
mod ssbuf;
mod time;
mod value;

pub use event::{
    coalesce, count_in_range, sort_stream, stream_extent, streams_close, streams_equivalent,
    validate_stream, values_close, Event,
};
pub use mask::NullMask;
pub use ssbuf::{BufPool, SnapshotBuf, Span, SsCursor};
pub use time::{Time, TimeRange};
pub use value::Value;

/// Payloads storable in events and snapshot buffers.
///
/// A payload type designates one value as φ ("no event active") and defines
/// the identity relation used for snapshot coalescing. The trait is
/// implemented for [`Value`] (the dynamic payload the TiLT compiler executes
/// over) and for `f64` (NaN-as-φ, used by the specialized baseline engines).
pub trait Payload: Clone + std::fmt::Debug + Send + Sync + 'static {
    /// The φ value of this payload type.
    fn null() -> Self;

    /// Whether this value is φ.
    fn is_null(&self) -> bool;

    /// Identity for coalescing: must be reflexive, symmetric, transitive, and
    /// must hold between any two φ values.
    fn same(&self, other: &Self) -> bool;
}

impl Payload for f64 {
    #[inline]
    fn null() -> Self {
        f64::NAN
    }

    #[inline]
    fn is_null(&self) -> bool {
        self.is_nan()
    }

    #[inline]
    fn same(&self, other: &Self) -> bool {
        self.to_bits() == other.to_bits()
    }
}

impl Payload for i64 {
    #[inline]
    fn null() -> Self {
        i64::MIN
    }

    #[inline]
    fn is_null(&self) -> bool {
        *self == i64::MIN
    }

    #[inline]
    fn same(&self, other: &Self) -> bool {
        self == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_payload_uses_nan_as_null() {
        assert!(<f64 as Payload>::null().is_null());
        assert!(Payload::same(&f64::NAN, &f64::NAN));
        assert!(!Payload::same(&1.0, &2.0));
        assert!(Payload::same(&1.0, &1.0));
    }

    #[test]
    fn i64_payload_sentinel() {
        assert!(<i64 as Payload>::null().is_null());
        assert!(!5i64.is_null());
    }

    #[test]
    fn send_sync_for_core_types() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Value>();
        assert_send_sync::<SnapshotBuf<Value>>();
        assert_send_sync::<Event<Value>>();
        assert_send_sync::<Time>();
    }
}
