//! Multi-query sharing: kernel-prefix dedup across compiled queries
//! (cf. *Shared Arrangements* and *Factor Windows*).
//!
//! A production stream processor serves many queries over the same input
//! streams, and correlated queries repeat work: two tenants registering
//! the same dashboard query, or a coarse window aggregate built from the
//! same fine-grained panes another query already maintains. This module
//! detects such overlap *structurally* and executes it once:
//!
//! 1. [`structural_keys`] assigns every temporal object of a compiled
//!    query a canonical fingerprint, rooted at input *positions* (not
//!    object ids) with let/map variables De-Bruijn-numbered, so two
//!    independently built queries produce identical keys exactly when
//!    their computations are identical;
//! 2. [`QueryGroup`] merges the kernel lists of N compiled queries,
//!    collapsing kernels with equal fingerprints into one *shared node*.
//!    Because fingerprints are recursive over dependencies, the shared
//!    set is automatically closed under prefixes: if two kernels match,
//!    their entire upstream chains match too;
//! 3. [`GroupSessionIn`] is the streaming executor for a group: one input
//!    history per source (kept once, not once per query), each distinct
//!    node executed once per advance over the union of its consumers'
//!    boundary-resolved extents, and per-query outputs sliced from the
//!    shared buffers.
//!
//! Sharing is *observationally invisible*: a query's output through a
//! group session equals its output through its own [`StreamSession`](crate::StreamSession)
//! — the differential property tests in the
//! workspace root pin this down.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

use tilt_data::{BufPool, Event, SnapshotBuf, Time, TimeRange, Value};

use crate::analysis::Extent;
use crate::error::{CompileError, Result};
use crate::exec::{lcm, CompiledQuery};
use crate::ir::{Expr, ReduceOp, TObjId, VarId};

/// Interns canonical fingerprints so dependency references can be embedded
/// as small ids instead of full fingerprint strings — *exact* hash-consing
/// by string equality, not by a digest, so distinct structures can never
/// collide and silently merge.
///
/// Fingerprints are only comparable when produced against the **same**
/// interner: [`QueryGroup::new`] threads one interner through every member
/// query. (Two structurally identical *whole queries* keyed against fresh
/// interners still agree, because their intern orders coincide.)
#[derive(Debug, Default)]
pub struct KeyInterner {
    ids: HashMap<String, usize>,
}

impl KeyInterner {
    /// A fresh, empty interner.
    pub fn new() -> KeyInterner {
        KeyInterner::default()
    }

    /// The stable id of `key` within this interner, allocating on first
    /// sight.
    fn intern(&mut self, key: &str) -> usize {
        match self.ids.get(key) {
            Some(&id) => id,
            None => {
                let id = self.ids.len();
                self.ids.insert(key.to_string(), id);
                id
            }
        }
    }
}

/// Canonical structural fingerprints for every temporal object (inputs and
/// kernel outputs) of a compiled query, against a fresh [`KeyInterner`].
///
/// To compare fingerprints *across* queries, use [`structural_keys_with`]
/// with one shared interner (as [`QueryGroup::new`] does).
pub fn structural_keys(cq: &CompiledQuery) -> HashMap<TObjId, String> {
    structural_keys_with(cq, &mut KeyInterner::new())
}

/// Canonical structural fingerprints for every temporal object (inputs and
/// kernel outputs) of a compiled query.
///
/// Two objects in different queries keyed against the same `interner`
/// receive the same fingerprint iff they are computed by structurally
/// identical kernel chains from the same input positions: object ids are
/// replaced by input positions or interned upstream fingerprints, and
/// bound variables by De Bruijn indices, so id/counter differences between
/// independently built queries do not matter. [`ReduceOp::Custom`]
/// reductions fingerprint by `Arc` identity — only literally shared custom
/// reducers are considered equal.
///
/// Dependency references embed the upstream fingerprint's intern id, not
/// the upstream string itself, so fingerprint size stays linear in body
/// size instead of growing exponentially along kernel chains that
/// reference a producer more than once.
pub fn structural_keys_with(
    cq: &CompiledQuery,
    interner: &mut KeyInterner,
) -> HashMap<TObjId, String> {
    let q = cq.query();
    let mut keys: HashMap<TObjId, String> = HashMap::new();
    // Inputs are referenced by position directly (already compact).
    let mut refs: HashMap<TObjId, String> = HashMap::new();
    for (i, obj) in q.inputs().iter().enumerate() {
        let ty = q.input_type(*obj).cloned();
        let key = format!("in{i}:{ty:?}");
        refs.insert(*obj, key.clone());
        keys.insert(*obj, key);
    }
    // Kernels are in topological order: dependencies always resolve.
    for te in q.exprs() {
        let mut key = format!(
            "k(p={},s={},dom=({:?},{:?}))",
            te.dom.precision, te.sample, te.dom.start, te.dom.end
        );
        let mut scope: Vec<VarId> = Vec::new();
        write_expr(&mut key, &te.body, &refs, &mut scope);
        refs.insert(te.output, format!("n{}", interner.intern(&key)));
        keys.insert(te.output, key);
    }
    keys
}

/// Writes the canonical form of `e` into `out`. `scope` is the stack of
/// enclosing let/map binders (innermost last) for De Bruijn numbering.
fn write_expr(out: &mut String, e: &Expr, keys: &HashMap<TObjId, String>, scope: &mut Vec<VarId>) {
    match e {
        Expr::Const(v) => {
            let _ = write!(out, "c:{v:?}");
        }
        Expr::Var(v) => {
            // Innermost binder = index 0. Free variables cannot occur in a
            // type-checked kernel body, but degrade gracefully if they do.
            match scope.iter().rev().position(|b| b == v) {
                Some(depth) => {
                    let _ = write!(out, "v{depth}");
                }
                None => {
                    let _ = write!(out, "free{}", v.raw());
                }
            }
        }
        Expr::Unary(op, a) => {
            let _ = write!(out, "u:{op:?}(");
            write_expr(out, a, keys, scope);
            out.push(')');
        }
        Expr::Binary(op, a, b) => {
            let _ = write!(out, "b:{op:?}(");
            write_expr(out, a, keys, scope);
            out.push(',');
            write_expr(out, b, keys, scope);
            out.push(')');
        }
        Expr::If(c, t, f) => {
            out.push_str("if(");
            write_expr(out, c, keys, scope);
            out.push(',');
            write_expr(out, t, keys, scope);
            out.push(',');
            write_expr(out, f, keys, scope);
            out.push(')');
        }
        Expr::Let { var, value, body } => {
            out.push_str("let(");
            write_expr(out, value, keys, scope);
            out.push(',');
            scope.push(*var);
            write_expr(out, body, keys, scope);
            scope.pop();
            out.push(')');
        }
        Expr::Field(a, i) => {
            let _ = write!(out, "f{i}(");
            write_expr(out, a, keys, scope);
            out.push(')');
        }
        Expr::Tuple(items) => {
            out.push_str("tup(");
            for (i, it) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_expr(out, it, keys, scope);
            }
            out.push(')');
        }
        Expr::Time => out.push('t'),
        Expr::At { obj, offset } => {
            let _ = write!(out, "at([{}],{offset})", obj_key(keys, *obj));
        }
        Expr::Reduce { op, window } => {
            let op_key = match op {
                // Custom reducers carry opaque closures: equal only when
                // they are literally the same Arc.
                ReduceOp::Custom(c) => format!("custom@{:p}", Arc::as_ptr(c)),
                other => other.name().to_string(),
            };
            let _ = write!(
                out,
                "red:{op_key}([{}],{},{},",
                obj_key(keys, window.obj),
                window.lo,
                window.hi
            );
            match &window.map {
                None => out.push('_'),
                Some((var, m)) => {
                    out.push_str("map(");
                    scope.push(*var);
                    write_expr(out, m, keys, scope);
                    scope.pop();
                    out.push(')');
                }
            }
            out.push(')');
        }
    }
}

fn obj_key(keys: &HashMap<TObjId, String>, obj: TObjId) -> &str {
    keys.get(&obj).map_or("?", |s| s.as_str())
}

/// One distinct kernel of a [`QueryGroup`]: the representative instance plus
/// the union of every consumer's boundary-resolved extent.
#[derive(Debug)]
struct SharedNode {
    /// Representative query index (the first registrant of this fingerprint).
    query: usize,
    /// Kernel index within the representative query.
    kernel: usize,
    /// Union over all instances of the boundary extent of the kernel's
    /// output object — how far beyond the emission range the shared buffer
    /// must reach to serve every consumer.
    ext: Extent,
    /// Number of (query, kernel) instances collapsed into this node.
    instances: usize,
    /// The kernel's input wiring, resolved once at group build: for each
    /// dependency, its slot in the representative query's slot table and
    /// where its buffer comes from. Execution fills exactly these slots —
    /// no per-advance rescan of earlier kernels.
    deps: Vec<(usize, OutputRef)>,
}

/// Where a query's output comes from within the group.
#[derive(Clone, Copy, Debug)]
enum OutputRef {
    /// The query is an identity over source `i`.
    Source(usize),
    /// The query's output object is node `i`'s buffer.
    Node(usize),
}

/// N compiled queries merged into one executable unit with structurally
/// identical kernel prefixes deduplicated.
///
/// Query input `i` is wired to group source `i` for every member, so all
/// members read the same ingested streams; registration fails if two
/// queries declare different payload types for the same source position.
///
/// ```
/// use std::sync::Arc;
/// use tilt_core::ir::{DataType, Expr, Query, ReduceOp, TDom};
/// use tilt_core::sharing::QueryGroup;
/// use tilt_core::Compiler;
///
/// let mut b = Query::builder();
/// let x = b.input("x", DataType::Float);
/// let s = b.temporal("s", TDom::every_tick(), Expr::reduce_window(ReduceOp::Sum, x, 4));
/// let q = b.finish(s).unwrap();
/// let cq = Arc::new(Compiler::new().compile(&q).unwrap());
/// // Two tenants registering the same query share its single kernel.
/// let group = QueryGroup::new(vec![Arc::clone(&cq), cq]).unwrap();
/// assert_eq!(group.kernel_instances(), 2);
/// assert_eq!(group.distinct_kernels(), 1);
/// ```
#[derive(Debug)]
pub struct QueryGroup {
    queries: Vec<Arc<CompiledQuery>>,
    n_sources: usize,
    grid: i64,
    lookahead: i64,
    keep: i64,
    nodes: Vec<SharedNode>,
    /// Per query, per kernel index: the node executing that kernel.
    node_of: Vec<Vec<usize>>,
    outputs: Vec<OutputRef>,
}

impl QueryGroup {
    /// Merges `queries` into a group, deduplicating structurally identical
    /// kernels.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Invalid`] when `queries` is empty and
    /// [`CompileError::Type`] when two queries disagree on the payload type
    /// of a shared source position.
    pub fn new(queries: Vec<Arc<CompiledQuery>>) -> Result<QueryGroup> {
        if queries.is_empty() {
            return Err(CompileError::Invalid("a query group needs at least one query".into()));
        }
        let n_sources = queries.iter().map(|q| q.query().inputs().len()).max().unwrap_or(0);
        let mut source_types: Vec<Option<crate::ir::DataType>> = vec![None; n_sources];
        for (qi, cq) in queries.iter().enumerate() {
            for (i, obj) in cq.query().inputs().iter().enumerate() {
                let Some(ty) = cq.query().input_type(*obj) else { continue };
                match &source_types[i] {
                    None => source_types[i] = Some(ty.clone()),
                    Some(prev) if prev == ty => {}
                    Some(prev) => {
                        return Err(CompileError::Type(format!(
                            "query {qi} reads source {i} as {ty:?}, \
                             but an earlier query reads it as {prev:?}"
                        )));
                    }
                }
            }
        }

        let mut nodes: Vec<SharedNode> = Vec::new();
        let mut by_key: HashMap<String, usize> = HashMap::new();
        let mut node_of: Vec<Vec<usize>> = Vec::with_capacity(queries.len());
        let mut outputs: Vec<OutputRef> = Vec::with_capacity(queries.len());
        // One interner across every member: fingerprints embed intern ids
        // for upstream references, and equal ids mean byte-equal upstream
        // fingerprints — exact cross-query comparison, no digests.
        let mut interner = KeyInterner::new();
        for (qi, cq) in queries.iter().enumerate() {
            let q = cq.query();
            let keys = structural_keys_with(cq, &mut interner);
            let kernel_index: HashMap<TObjId, usize> =
                cq.kernels().iter().enumerate().map(|(i, k)| (k.out, i)).collect();
            let mut this: Vec<usize> = Vec::with_capacity(cq.kernels().len());
            for (ki, kernel) in cq.kernels().iter().enumerate() {
                let key = keys[&kernel.out].clone();
                let ext = cq.boundary().extent(kernel.out);
                let ni = match by_key.get(&key) {
                    Some(&ni) => {
                        nodes[ni].ext = nodes[ni].ext.join(ext);
                        nodes[ni].instances += 1;
                        ni
                    }
                    None => {
                        // First encounter within a topologically ordered
                        // kernel list: dependencies already have nodes, so
                        // creation order is a valid execution order.
                        let deps = kernel
                            .dependencies()
                            .into_iter()
                            .map(|obj| {
                                let src = match q.inputs().iter().position(|o| *o == obj) {
                                    Some(i) => OutputRef::Source(i),
                                    None => OutputRef::Node(this[kernel_index[&obj]]),
                                };
                                (obj.index(), src)
                            })
                            .collect();
                        nodes.push(SharedNode { query: qi, kernel: ki, ext, instances: 1, deps });
                        by_key.insert(key, nodes.len() - 1);
                        nodes.len() - 1
                    }
                };
                this.push(ni);
            }
            outputs.push(if q.is_input(q.output()) {
                let i = q
                    .inputs()
                    .iter()
                    .position(|o| *o == q.output())
                    .expect("identity output is an input");
                OutputRef::Source(i)
            } else {
                OutputRef::Node(this[kernel_index[&q.output()]])
            });
            node_of.push(this);
        }

        let grid = queries.iter().map(|q| q.grid()).fold(1, lcm);
        let lookahead =
            queries.iter().map(|q| q.boundary().max_input_lookahead(q.query())).max().unwrap_or(0);
        let keep =
            queries.iter().map(|q| q.boundary().max_input_lookback(q.query())).max().unwrap_or(0)
                + grid;
        Ok(QueryGroup { queries, n_sources, grid, lookahead, keep, nodes, node_of, outputs })
    }

    /// A new group with `cq` appended as the last member: the incremental
    /// edit behind live query *attach*. Shared-prefix nodes are recomputed
    /// from scratch (group construction is cheap next to streaming), but
    /// live per-key sessions are untouched — their state is only input
    /// histories and a watermark, both independent of the member set, so
    /// [`GroupSessionIn::migrate_group`] can move them to the new group
    /// in place.
    ///
    /// # Errors
    ///
    /// Propagates [`QueryGroup::new`] source-type conflicts.
    pub fn with_member(&self, cq: Arc<CompiledQuery>) -> Result<QueryGroup> {
        let mut queries = self.queries.clone();
        queries.push(cq);
        QueryGroup::new(queries)
    }

    /// A new group with member `index` removed: the incremental edit behind
    /// live query *detach*. Later members shift down one position; callers
    /// tracking stable query identities must remap accordingly.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Invalid`] when `index` is out of range or
    /// the group would become empty (drop the last session instead).
    pub fn without_member(&self, index: usize) -> Result<QueryGroup> {
        if index >= self.queries.len() {
            return Err(CompileError::Invalid(format!(
                "cannot detach member {index} of a {}-member group",
                self.queries.len()
            )));
        }
        if self.queries.len() == 1 {
            return Err(CompileError::Invalid(
                "cannot detach the last member of a group; drop the group instead".into(),
            ));
        }
        let mut queries = self.queries.clone();
        queries.remove(index);
        QueryGroup::new(queries)
    }

    /// The member queries, in registration order.
    pub fn queries(&self) -> &[Arc<CompiledQuery>] {
        &self.queries
    }

    /// Number of member queries.
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }

    /// Number of input sources the group reads (the widest member).
    pub fn n_sources(&self) -> usize {
        self.n_sources
    }

    /// The coarsest grid every member query agrees on (lcm of member grids):
    /// group emission horizons are aligned to it so each member's per-advance
    /// chunks stay seam-free.
    pub fn grid(&self) -> i64 {
        self.grid
    }

    /// The largest input lookahead over all member queries: emission must
    /// trail the watermark by this much.
    pub fn max_input_lookahead(&self) -> i64 {
        self.lookahead
    }

    /// The largest input lookback over all member queries (the history each
    /// group session retains behind its watermark).
    pub fn max_input_lookback(&self) -> i64 {
        self.keep - self.grid
    }

    /// The group's *state horizon*: the quiet stretch after which a fresh
    /// group session is observationally identical to one that lived through
    /// it — the widest member bound of [`CompiledQuery::state_horizon`].
    pub fn state_horizon(&self) -> i64 {
        self.max_input_lookback() + self.lookahead + 2 * self.grid
    }

    /// Total kernels across all member queries (what N independent sessions
    /// would execute per advance).
    pub fn kernel_instances(&self) -> usize {
        self.node_of.iter().map(|v| v.len()).sum()
    }

    /// Distinct kernels after structural dedup (what the group executes per
    /// advance).
    pub fn distinct_kernels(&self) -> usize {
        self.nodes.len()
    }

    /// Distinct kernels serving more than one instance — the shared prefix
    /// the dedup pass found.
    pub fn shared_kernels(&self) -> usize {
        self.nodes.iter().filter(|n| n.instances > 1).count()
    }

    /// Opens a streaming session borrowing this group.
    pub fn session(&self, start: Time) -> GroupSession<'_> {
        GroupSessionIn::new(self, start)
    }

    /// Opens a streaming session that owns an `Arc` handle on this group
    /// (for worker threads holding many sessions over one shared plan).
    pub fn shared_session(self: &Arc<Self>, start: Time) -> SharedGroupSession {
        GroupSessionIn::new(Arc::clone(self), start)
    }
}

/// Incremental batched execution of a [`QueryGroup`]: the multi-query
/// analogue of [`crate::StreamSessionIn`].
///
/// One input history per group source feeds every member query; each
/// [`GroupSessionIn::advance_to`] executes every *distinct* kernel once and
/// returns one finalized output buffer per member query, in registration
/// order.
#[derive(Debug)]
pub struct GroupSessionIn<G: Borrow<QueryGroup>> {
    group: G,
    histories: Vec<SnapshotBuf<Value>>,
    watermark: Time,
}

/// A group session borrowing its [`QueryGroup`].
pub type GroupSession<'a> = GroupSessionIn<&'a QueryGroup>;

/// A group session sharing ownership of its [`QueryGroup`].
pub type SharedGroupSession = GroupSessionIn<Arc<QueryGroup>>;

impl<G: Borrow<QueryGroup>> GroupSessionIn<G> {
    fn new(group: G, start: Time) -> Self {
        let g = group.borrow();
        let histories = (0..g.n_sources).map(|_| SnapshotBuf::new(start)).collect();
        GroupSessionIn { group, histories, watermark: start }
    }

    /// The current watermark (everything up to it has been emitted).
    pub fn watermark(&self) -> Time {
        self.watermark
    }

    /// The per-source input histories, in source order. Together with the
    /// watermark these are a session's *entire* streaming state (state
    /// depends only on absorbed input, never on the member set — see
    /// [`GroupSessionIn::migrate_group`]), which is what makes sessions
    /// serializable: a durability layer persists `(histories, watermark)`
    /// and rebuilds with [`GroupSessionIn::from_parts`].
    pub fn histories(&self) -> &[SnapshotBuf<Value>] {
        &self.histories
    }

    /// Rebuilds a session from previously captured state: the inverse of
    /// reading [`GroupSessionIn::histories`] and
    /// [`GroupSessionIn::watermark`]. Histories short of the group's
    /// source count are padded rooted at the watermark (exactly as
    /// [`GroupSessionIn::migrate_group`] would), so state captured under
    /// an older group edit restores against the current one.
    ///
    /// Fails (rather than panicking later) if a history violates the
    /// snapshot-buffer invariants.
    pub fn from_parts(
        group: G,
        mut histories: Vec<SnapshotBuf<Value>>,
        watermark: Time,
    ) -> std::result::Result<Self, String> {
        for (i, h) in histories.iter().enumerate() {
            h.check_invariants().map_err(|e| format!("history {i}: {e}"))?;
        }
        let n = group.borrow().n_sources;
        while histories.len() < n {
            histories.push(SnapshotBuf::new(watermark));
        }
        Ok(GroupSessionIn { group, histories, watermark })
    }

    /// Moves this session onto a different (typically edited) group without
    /// disturbing its streaming state: input histories and the watermark
    /// carry over unchanged. This is what makes live attach/detach cheap —
    /// a session's state depends only on the *input* it has absorbed, never
    /// on the member set, so recomputing shared-prefix nodes
    /// ([`QueryGroup::with_member`] / [`QueryGroup::without_member`]) does
    /// not invalidate it.
    ///
    /// If the new group reads more sources than the session has histories,
    /// the new histories are rooted at the current watermark (that source
    /// contributed nothing so far). Extra histories from a shrunk group are
    /// retained and ignored.
    pub fn migrate_group(&mut self, group: G) {
        let n = group.borrow().n_sources;
        while self.histories.len() < n {
            self.histories.push(SnapshotBuf::new(self.watermark));
        }
        self.group = group;
    }

    /// Appends events to group source `idx` (feeding every member query that
    /// declares that input position). Events must be in order and start at
    /// or after the previous end of that source's history.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or events regress in time.
    pub fn push_events(&mut self, idx: usize, events: &[Event<Value>]) {
        crate::exec::push_history(&mut self.histories[idx], events);
    }

    /// Advances the input watermark to `upto` and returns each member
    /// query's finalized output prefix, in registration order.
    ///
    /// Emission stops at `align_down(upto − max lookahead, group grid)` —
    /// the most conservative member's horizon — so every returned prefix is
    /// final. Buffers may be empty when the horizon has not advanced.
    pub fn advance_to(&mut self, upto: Time) -> Vec<SnapshotBuf<Value>> {
        let mut pool = BufPool::new();
        self.advance_to_with(upto, &mut pool)
    }

    /// Like [`GroupSessionIn::advance_to`], drawing every intermediate
    /// kernel buffer from `pool` (and returning it there before the call
    /// ends). Long-lived workers holding many sessions pass one shared pool
    /// so per-advance allocation churn amortizes away; the returned output
    /// buffers can be [`BufPool::put`] back once consumed.
    pub fn advance_to_with(
        &mut self,
        upto: Time,
        pool: &mut BufPool<Value>,
    ) -> Vec<SnapshotBuf<Value>> {
        assert!(upto > self.watermark, "advance_to must move forward");
        let g = self.group.borrow();
        let target = Time::new(upto.ticks() - g.lookahead).align_down(g.grid);
        if target <= self.watermark {
            let wm = self.watermark;
            return (0..g.num_queries()).map(|_| pool.take(wm)).collect();
        }
        self.emit_range(target, pool)
    }

    /// Emits everything up to `end` unconditionally (end-of-stream flush:
    /// missing future input reads as φ).
    pub fn flush_to(&mut self, end: Time) -> Vec<SnapshotBuf<Value>> {
        let mut pool = BufPool::new();
        self.flush_to_with(end, &mut pool)
    }

    /// Like [`GroupSessionIn::flush_to`], drawing intermediates from `pool`
    /// (see [`GroupSessionIn::advance_to_with`]).
    pub fn flush_to_with(
        &mut self,
        end: Time,
        pool: &mut BufPool<Value>,
    ) -> Vec<SnapshotBuf<Value>> {
        if end <= self.watermark {
            let g = self.group.borrow();
            let wm = self.watermark;
            return (0..g.num_queries()).map(|_| pool.take(wm)).collect();
        }
        self.emit_range(end, pool)
    }

    fn emit_range(&mut self, target: Time, pool: &mut BufPool<Value>) -> Vec<SnapshotBuf<Value>> {
        let g = self.group.borrow();
        for hist in &mut self.histories {
            if hist.end() < target {
                hist.push_raw(target, Value::Null);
            }
        }
        let range = TimeRange::new(self.watermark, target);

        // Pass 1: every distinct kernel once, over the union of its
        // consumers' extents (creation order is topological). Buffers come
        // from the pool and go back at the end of the pass.
        let mut node_bufs: Vec<Option<SnapshotBuf<Value>>> =
            (0..g.nodes.len()).map(|_| None).collect();
        for ni in 0..g.nodes.len() {
            let node = &g.nodes[ni];
            let cq = &g.queries[node.query];
            let kernel = &cq.kernels()[node.kernel];
            let kstart = range.start.saturating_add(-node.ext.lookback());
            let kend = range.end.saturating_add(node.ext.lookahead()).align_up(kernel.precision);
            let mut out = pool.take(kstart);
            {
                let mut view: Vec<Option<&SnapshotBuf<Value>>> = vec![None; cq.n_slots()];
                for &(slot, src) in &node.deps {
                    view[slot] = Some(match src {
                        OutputRef::Source(i) => &self.histories[i],
                        OutputRef::Node(d) => {
                            node_bufs[d].as_ref().expect("dep node computed before its consumer")
                        }
                    });
                }
                kernel.run_into(&view, TimeRange::new(kstart, kend), &mut out);
            }
            node_bufs[ni] = Some(out);
        }

        // Pass 2: per-query outputs, sliced from the shared buffers with
        // the same tail semantics as a standalone run (grid ticks past the
        // last one inside the range read φ, not extrapolated values).
        // Output slices draw from the pool too: the shard worker puts them
        // back once their events are delivered, so steady-state emission
        // allocates nothing.
        let outs = g
            .outputs
            .iter()
            .map(|out| {
                let mut sliced = pool.take(range.start);
                match *out {
                    OutputRef::Source(i) => self.histories[i].slice_into(range, &mut sliced),
                    OutputRef::Node(ni) => {
                        let node = &g.nodes[ni];
                        let p = g.queries[node.query].kernels()[node.kernel].precision;
                        output_slice_into(
                            node_bufs[ni].as_ref().expect("node computed"),
                            range,
                            p,
                            &mut sliced,
                        );
                    }
                }
                sliced
            })
            .collect();
        for buf in node_bufs.into_iter().flatten() {
            pool.put(buf);
        }

        self.watermark = target;
        for hist in &mut self.histories {
            crate::exec::trim_history(hist, target, g.keep);
        }
        outs
    }
}

/// Restricts a shared node buffer to a query's exact output range,
/// reproducing the tail a standalone output kernel would emit: values only
/// through the last grid tick inside the range, φ beyond it. Writes into
/// `out` (reset first) so callers can recycle the allocation.
fn output_slice_into(
    buf: &SnapshotBuf<Value>,
    range: TimeRange,
    precision: i64,
    out: &mut SnapshotBuf<Value>,
) {
    let g_last = range.end.align_down(precision);
    if g_last <= range.start {
        // No grid tick inside the range: all φ (cf. `Kernel::run`).
        out.reset(range.start);
        out.push_raw(range.end, Value::Null);
        return;
    }
    buf.slice_into(TimeRange::new(range.start, g_last), out);
    if g_last < range.end {
        out.push_raw(range.end, Value::Null);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{DataType, Query, ReduceOp, TDom};
    use crate::Compiler;
    use tilt_data::{coalesce, streams_equivalent};

    /// The YSB pane shape: tumbling count over a filtered stream.
    fn pane_query() -> Query {
        let mut b = Query::builder();
        let x = b.input("ads", DataType::Int);
        let views = b.temporal(
            "views",
            TDom::every_tick(),
            Expr::if_else(Expr::at(x).eq(Expr::c(0i64)), Expr::at(x), Expr::null()),
        );
        let counts =
            b.temporal("c10", TDom::unbounded(10), Expr::reduce_window(ReduceOp::Count, views, 10));
        b.finish(counts).unwrap()
    }

    /// The correlated factor query: peak pane count per coarse window,
    /// built on the *same* panes as `pane_query`.
    fn factor_query() -> Query {
        let mut b = Query::builder();
        let x = b.input("ads", DataType::Int);
        let views = b.temporal(
            "views",
            TDom::every_tick(),
            Expr::if_else(Expr::at(x).eq(Expr::c(0i64)), Expr::at(x), Expr::null()),
        );
        let counts =
            b.temporal("c10", TDom::unbounded(10), Expr::reduce_window(ReduceOp::Count, views, 10));
        let peak =
            b.temporal("peak", TDom::unbounded(60), Expr::reduce_window(ReduceOp::Max, counts, 60));
        b.finish(peak).unwrap()
    }

    fn int_events(n: i64) -> Vec<Event<Value>> {
        (1..=n).map(|t| Event::point(Time::new(t), Value::Int(t % 3))).collect()
    }

    #[test]
    fn structural_keys_ignore_id_and_var_numbering() {
        // Build the same query twice; the second builder burns extra object
        // and variable ids first, so raw ids differ everywhere.
        let cq1 = Compiler::new().compile(&pane_query()).unwrap();
        let q2 = {
            let mut b = Query::builder();
            let _decoy_in = b.input("decoy", DataType::Float);
            let _ = b.var();
            let _ = b.var();
            let mut b2 = Query::builder();
            let x = b2.input("ads", DataType::Int);
            let views = b2.temporal(
                "v",
                TDom::every_tick(),
                Expr::if_else(Expr::at(x).eq(Expr::c(0i64)), Expr::at(x), Expr::null()),
            );
            let counts = b2.temporal(
                "c",
                TDom::unbounded(10),
                Expr::reduce_window(ReduceOp::Count, views, 10),
            );
            b2.finish(counts).unwrap()
        };
        let cq2 = Compiler::new().compile(&q2).unwrap();
        let k1 = structural_keys(&cq1);
        let k2 = structural_keys(&cq2);
        assert_eq!(k1[&cq1.query().output()], k2[&cq2.query().output()]);
    }

    #[test]
    fn fingerprints_stay_small_on_deep_multi_reference_chains() {
        // Regression: dependency references are hash-consed. A chain of
        // kernels that each read their upstream object several times used
        // to square the fingerprint size per level (exponential in depth);
        // with digests it stays linear in body size.
        let depth = 40usize;
        let mut b = Query::builder();
        let mut prev = b.input("x", DataType::Float);
        for i in 0..depth {
            prev = b.temporal(
                &format!("n{i}"),
                TDom::every_tick(),
                Expr::if_else(
                    Expr::at(prev).gt(Expr::c(0.0)),
                    Expr::at(prev),
                    Expr::reduce_window(ReduceOp::Sum, prev, 4),
                ),
            );
        }
        let q = b.finish(prev).unwrap();
        // Unoptimized: one kernel per expression, so the chain depth is real.
        let cq = Compiler::unoptimized().compile(&q).unwrap();
        assert_eq!(cq.num_kernels(), depth);
        let started = std::time::Instant::now();
        let keys = structural_keys(&cq);
        assert!(started.elapsed() < std::time::Duration::from_secs(1));
        assert!(
            keys.values().all(|k| k.len() < 4096),
            "fingerprints must stay bounded, got max {}",
            keys.values().map(|k| k.len()).max().unwrap()
        );
        // And the dedup still works through the digested references.
        let cq2 = Arc::new(Compiler::unoptimized().compile(&q).unwrap());
        let group = QueryGroup::new(vec![Arc::new(cq), cq2]).unwrap();
        assert_eq!(group.distinct_kernels(), depth);
        assert_eq!(group.kernel_instances(), 2 * depth);
    }

    #[test]
    fn identical_queries_collapse_to_one_kernel() {
        let cq = Arc::new(Compiler::new().compile(&pane_query()).unwrap());
        let group = QueryGroup::new(vec![Arc::clone(&cq), Arc::clone(&cq), cq]).unwrap();
        assert_eq!(group.kernel_instances(), 3);
        assert_eq!(group.distinct_kernels(), 1);
        assert_eq!(group.shared_kernels(), 1);
    }

    #[test]
    fn factor_query_shares_the_pane_prefix() {
        let pane = Arc::new(Compiler::new().compile(&pane_query()).unwrap());
        let factor = Arc::new(Compiler::new().compile(&factor_query()).unwrap());
        assert_eq!(pane.num_kernels(), 1, "filter fuses into the pane count");
        assert_eq!(factor.num_kernels(), 2, "coarse window must not fuse into the panes");
        let group = QueryGroup::new(vec![pane, factor]).unwrap();
        assert_eq!(group.kernel_instances(), 3);
        assert_eq!(group.distinct_kernels(), 2, "the pane kernel is shared");
        assert_eq!(group.shared_kernels(), 1);
        assert_eq!(group.grid(), 60);
    }

    #[test]
    fn unrelated_queries_share_nothing() {
        let pane = Arc::new(Compiler::new().compile(&pane_query()).unwrap());
        let other = {
            let mut b = Query::builder();
            let x = b.input("ads", DataType::Int);
            let s = b.temporal("s", TDom::every_tick(), Expr::reduce_window(ReduceOp::Sum, x, 7));
            Arc::new(Compiler::new().compile(&b.finish(s).unwrap()).unwrap())
        };
        let group = QueryGroup::new(vec![pane, other]).unwrap();
        assert_eq!(group.distinct_kernels(), 2);
        assert_eq!(group.shared_kernels(), 0);
    }

    #[test]
    fn mismatched_source_types_are_rejected() {
        let int_q = Arc::new(Compiler::new().compile(&pane_query()).unwrap());
        let float_q = {
            let mut b = Query::builder();
            let x = b.input("ads", DataType::Float);
            let s = b.temporal("s", TDom::every_tick(), Expr::reduce_window(ReduceOp::Sum, x, 4));
            Arc::new(Compiler::new().compile(&b.finish(s).unwrap()).unwrap())
        };
        assert!(matches!(QueryGroup::new(vec![int_q, float_q]), Err(CompileError::Type(_))));
        assert!(matches!(QueryGroup::new(vec![]), Err(CompileError::Invalid(_))));
    }

    #[test]
    fn group_session_matches_standalone_sessions() {
        // The core differential property, deterministically: pane + factor
        // through one group session vs each through its own StreamSession,
        // chunked identically, must agree per query.
        let pane = Arc::new(Compiler::new().compile(&pane_query()).unwrap());
        let factor = Arc::new(Compiler::new().compile(&factor_query()).unwrap());
        let group = QueryGroup::new(vec![Arc::clone(&pane), Arc::clone(&factor)]).unwrap();
        let events = int_events(500);
        let end = Time::new(540);

        let mut gs = group.session(Time::ZERO);
        let mut outs: Vec<Vec<Event<Value>>> = vec![Vec::new(); 2];
        for chunk in events.chunks(64) {
            gs.push_events(0, chunk);
            let upto = chunk.last().unwrap().end;
            if upto > gs.watermark() {
                for (qi, buf) in gs.advance_to(upto).into_iter().enumerate() {
                    outs[qi].extend(buf.to_events());
                }
            }
        }
        for (qi, buf) in gs.flush_to(end).into_iter().enumerate() {
            outs[qi].extend(buf.to_events());
        }

        for (qi, cq) in [pane, factor].iter().enumerate() {
            let mut session = cq.stream_session(Time::ZERO);
            session.push_events(0, &events);
            let expected = session.flush_to(end).to_events();
            assert!(
                streams_equivalent(&coalesce(&expected), &coalesce(&outs[qi])),
                "query {qi}: expected {expected:?}, got {:?}",
                outs[qi]
            );
        }
    }

    #[test]
    fn incremental_edits_preserve_live_sessions() {
        // The live attach/detach contract: a session's state is input
        // histories + watermark, independent of the member set, so a
        // group edited with `with_member` / `without_member` can adopt a
        // running session via `migrate_group` and the surviving member's
        // output is exactly what an unedited run produces.
        let pane = Arc::new(Compiler::new().compile(&pane_query()).unwrap());
        let factor = Arc::new(Compiler::new().compile(&factor_query()).unwrap());
        let base = Arc::new(QueryGroup::new(vec![Arc::clone(&pane)]).unwrap());
        let grown = Arc::new(base.with_member(Arc::clone(&factor)).unwrap());
        assert_eq!(grown.num_queries(), 2);
        assert_eq!(grown.shared_kernels(), 1, "the appended member shares the pane prefix");
        let shrunk = Arc::new(grown.without_member(1).unwrap());
        assert_eq!(shrunk.num_queries(), 1);
        assert!(grown.without_member(5).is_err(), "out-of-range member");
        assert!(shrunk.without_member(0).is_err(), "cannot empty a group");

        let events = int_events(300);
        let end = Time::new(360);
        // Reference: the pane query through an unedited 1-member group.
        let mut plain = base.shared_session(Time::ZERO);
        let mut expected: Vec<Event<Value>> = Vec::new();
        // Edited: grow mid-stream, then shrink back, migrating the live
        // session each time.
        let mut edited = base.shared_session(Time::ZERO);
        let mut got: Vec<Event<Value>> = Vec::new();
        for (i, chunk) in events.chunks(60).enumerate() {
            let upto = chunk.last().unwrap().end;
            plain.push_events(0, chunk);
            edited.push_events(0, chunk);
            if upto > plain.watermark() {
                expected.extend(plain.advance_to(upto).remove(0).to_events());
                got.extend(edited.advance_to(upto).remove(0).to_events());
            }
            if i == 1 {
                edited.migrate_group(Arc::clone(&grown));
            }
            if i == 3 {
                edited.migrate_group(Arc::clone(&shrunk));
            }
        }
        expected.extend(plain.flush_to(end).remove(0).to_events());
        got.extend(edited.flush_to(end).remove(0).to_events());
        assert!(
            streams_equivalent(&coalesce(&expected), &coalesce(&got)),
            "group edits disturbed a live session's output"
        );
    }

    #[test]
    fn identity_member_slices_its_source() {
        let ident = {
            let mut b = Query::builder();
            let x = b.input("ads", DataType::Int);
            Arc::new(Compiler::new().compile(&b.finish(x).unwrap()).unwrap())
        };
        let pane = Arc::new(Compiler::new().compile(&pane_query()).unwrap());
        let group = QueryGroup::new(vec![ident, pane]).unwrap();
        let events = int_events(40);
        let mut gs = group.session(Time::ZERO);
        gs.push_events(0, &events);
        let outs = gs.flush_to(Time::new(60));
        assert!(streams_equivalent(&coalesce(&events), &coalesce(&outs[0].to_events())));
    }
}
