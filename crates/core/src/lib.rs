//! `tilt-core` — the paper's primary contribution: the TiLT intermediate
//! representation, its optimizing compiler, and the parallel runtime.
//!
//! The crate is organized as the compilation pipeline of Fig. 3:
//!
//! 1. [`ir`] — queries are *written* (usually by `tilt-query`'s frontend) as
//!    temporal expressions over unbounded time domains;
//! 2. [`analysis`] — boundary resolution infers, from temporal lineage, how
//!    much input history each output interval needs (paper §5.1);
//! 3. [`opt`] — IR-to-IR optimization, chiefly operator fusion across
//!    pipeline breakers (paper §5.2);
//! 4. [`codegen`] — temporal expressions are lowered to loop kernels over
//!    snapshot buffers with incremental reduction state (paper §6.1).
//!    Kernel bodies carry two execution tiers: typed register bytecode
//!    over unboxed `f64`/`i64`/`bool` files (the default, with per-subtree
//!    fallback to boxed `Value` operations for `Str`/`Tuple` and custom
//!    reductions) and the closure-tree `Value` interpreter
//!    ([`ExecTier::Interpreted`]), kept byte-identical for differential
//!    testing;
//! 5. [`exec`] — kernels run serially, data-parallel over boundary-resolved
//!    partitions, or in batched streaming mode (paper §6.2).
//!
//! # Quick start
//!
//! ```
//! use tilt_core::ir::{DataType, Expr, Query, ReduceOp, TDom};
//! use tilt_core::Compiler;
//! use tilt_data::{Event, SnapshotBuf, Time, TimeRange, Value};
//!
//! // ~avg[t] = ⊕(mean, ~stock[t-10 : t])
//! let mut b = Query::builder();
//! let stock = b.input("stock", DataType::Float);
//! let avg = b.temporal("avg10", TDom::every_tick(),
//!     Expr::reduce_window(ReduceOp::Mean, stock, 10));
//! let query = b.finish(avg).unwrap();
//!
//! let compiled = Compiler::new().compile(&query).unwrap();
//! let events: Vec<Event<tilt_data::Value>> =
//!     (1..=20).map(|t| Event::point(Time::new(t), Value::Float(t as f64))).collect();
//! let range = TimeRange::new(Time::new(0), Time::new(20));
//! let input = SnapshotBuf::from_events(&events, range);
//! let out = compiled.run(&[&input], range);
//! assert_eq!(out.value_at(Time::new(20)), Value::Float(15.5)); // mean of 11..=20
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod codegen;
pub mod error;
pub mod exec;
pub mod ir;
pub mod opt;
pub mod sharing;

pub use codegen::KernelProfile;
pub use error::{CompileError, Result};
pub use exec::{
    CompiledQuery, Compiler, ExecStats, ExecTier, SharedStreamSession, StreamSession,
    StreamSessionIn,
};
pub use sharing::{GroupSession, GroupSessionIn, QueryGroup, SharedGroupSession};
