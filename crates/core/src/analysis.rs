//! Temporal lineage analysis and boundary resolution (paper §5.1).
//!
//! The time-centric IR makes data dependencies across time explicit: a point
//! access `~x[t+d]` needs `~x` only at `t+d`, and a window reduce
//! `⊕(f, ~x[t+lo : t+hi])` needs `~x` only on `(t+lo, t+hi]`. *Boundary
//! resolution* folds these per-expression extents along the dependency
//! chains of a query to answer: to produce the output on `(Ts, Te]`, which
//! slice of each input is required? The answer — `(Ts − lookback,
//! Te + lookahead]` per input — is what lets the executor cut a stream into
//! independently processable partitions (paper Fig. 6).

use std::collections::HashMap;

use crate::ir::{Expr, Query, TObjId};

/// The interval of offsets, relative to the evaluation time `t`, at which an
/// expression (or query output) reads an object: accesses fall within
/// `[t + lo, t + hi]`.
///
/// Unlike a plain lookback/lookahead pair, keeping the signed interval makes
/// composition precise: a `Shift(+2)` of a `Shift(-5)` reaches `[t-3, t-3]`,
/// not `[t-5, t+2]`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Extent {
    /// Earliest access offset.
    pub lo: i64,
    /// Latest access offset.
    pub hi: i64,
}

impl Extent {
    /// The instantaneous access `[t, t]`.
    pub const ZERO: Extent = Extent { lo: 0, hi: 0 };

    /// Union of access intervals.
    pub fn join(self, other: Extent) -> Extent {
        Extent { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
    }

    /// Sequential composition (Minkowski sum): reading an intermediate at
    /// offsets `self` whose definition itself reads at offsets `inner`.
    pub fn chain(self, inner: Extent) -> Extent {
        Extent { lo: self.lo + inner.lo, hi: self.hi + inner.hi }
    }

    /// Extent of a point access at `offset`.
    pub fn point(offset: i64) -> Extent {
        Extent { lo: offset, hi: offset }
    }

    /// Extent of a window access `(t+lo, t+hi]`.
    pub fn window(lo: i64, hi: i64) -> Extent {
        Extent { lo, hi }
    }

    /// Ticks of history needed before the output interval (≥ 0).
    pub fn lookback(&self) -> i64 {
        (-self.lo).max(0)
    }

    /// Ticks of future needed after the output interval (≥ 0).
    pub fn lookahead(&self) -> i64 {
        self.hi.max(0)
    }
}

/// The resolved boundary conditions of a query (paper Fig. 3b):
/// producing the output on `(Ts, Te]` requires each object on
/// `(Ts − lookback, Te + lookahead]`.
#[derive(Clone, Debug, Default)]
pub struct Boundary {
    extents: HashMap<TObjId, Extent>,
}

impl Boundary {
    /// The extent required of `obj` (inputs *and* intermediates), relative to
    /// the output interval. Objects the output does not depend on have no
    /// entry.
    pub fn extent(&self, obj: TObjId) -> Extent {
        self.extents.get(&obj).copied().unwrap_or(Extent::ZERO)
    }

    /// Whether the output depends on `obj` at all.
    pub fn depends_on(&self, obj: TObjId) -> bool {
        self.extents.contains_key(&obj)
    }

    /// The largest lookback over all query inputs — the width of the
    /// duplicated region each parallel partition re-reads.
    pub fn max_input_lookback(&self, query: &Query) -> i64 {
        query.inputs().iter().map(|i| self.extent(*i).lookback()).max().unwrap_or(0)
    }

    /// The largest lookahead over all query inputs.
    pub fn max_input_lookahead(&self, query: &Query) -> i64 {
        query.inputs().iter().map(|i| self.extent(*i).lookahead()).max().unwrap_or(0)
    }
}

/// Extents of the *direct* accesses of one expression, per referenced object.
pub fn direct_extents(body: &Expr) -> HashMap<TObjId, Extent> {
    let mut out: HashMap<TObjId, Extent> = HashMap::new();
    body.walk(&mut |e| {
        let (obj, ext) = match e {
            Expr::At { obj, offset } => (*obj, Extent::point(*offset)),
            Expr::Reduce { window, .. } => (window.obj, Extent::window(window.lo, window.hi)),
            _ => return,
        };
        out.entry(obj).and_modify(|e| *e = e.join(ext)).or_insert(ext);
    });
    out
}

/// Resolves the boundary conditions of `query` by propagating extents from
/// the output back along the temporal-lineage DAG.
///
/// An expression with a coarse time domain (precision `p > 1`) adds `p − 1`
/// ticks of slack to its own accesses: the snapshot a consumer reads at `t`
/// may have been computed up to one grid step earlier.
pub fn resolve_boundaries(query: &Query) -> Boundary {
    let mut boundary = Boundary::default();
    boundary.extents.insert(query.output(), Extent::ZERO);

    // Walk expressions in reverse topological order so each definition sees
    // the final extent of its own output before distributing to dependencies.
    for te in query.exprs().iter().rev() {
        let Some(&out_ext) = boundary.extents.get(&te.output) else {
            continue; // dead expression: the output does not depend on it
        };
        let slack = te.dom.precision - 1;
        for (dep, mut ext) in direct_extents(&te.body) {
            // A consumer with grid precision p may evaluate up to p−1 ticks
            // away from the time whose value it defines, in both directions.
            ext.lo -= slack;
            ext.hi += slack;
            let total = out_ext.chain(ext);
            boundary.extents.entry(dep).and_modify(|e| *e = e.join(total)).or_insert(total);
        }
    }
    boundary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{DataType, Expr, ReduceOp, TDom};

    /// Builds the paper's trend-analysis query shape and checks the inferred
    /// boundary matches Fig. 3b: `~filter[Ts:Te] ⇐ ~stock[Ts-20:Te]`.
    #[test]
    fn trend_query_boundary_matches_paper() {
        let mut b = Query::builder();
        let stock = b.input("stock", DataType::Float);
        let sum10 =
            b.temporal("sum10", TDom::every_tick(), Expr::reduce_window(ReduceOp::Sum, stock, 10));
        let sum20 =
            b.temporal("sum20", TDom::every_tick(), Expr::reduce_window(ReduceOp::Sum, stock, 20));
        let avg10 = b.temporal("avg10", TDom::every_tick(), Expr::at(sum10).div(Expr::c(10.0)));
        let avg20 = b.temporal("avg20", TDom::every_tick(), Expr::at(sum20).div(Expr::c(20.0)));
        let join = b.temporal(
            "join",
            TDom::every_tick(),
            Expr::if_else(
                Expr::at(avg10).is_present().and(Expr::at(avg20).is_present()),
                Expr::at(avg10).sub(Expr::at(avg20)),
                Expr::null(),
            ),
        );
        let filter = b.temporal(
            "filter",
            TDom::every_tick(),
            Expr::if_else(Expr::at(join).gt(Expr::c(0.0)), Expr::at(join), Expr::null()),
        );
        let q = b.finish(filter).unwrap();
        let boundary = resolve_boundaries(&q);
        assert_eq!(boundary.extent(stock), Extent { lo: -20, hi: 0 });
        assert_eq!(boundary.extent(join), Extent::ZERO);
        assert_eq!(boundary.max_input_lookback(&q), 20);
        assert_eq!(boundary.max_input_lookahead(&q), 0);
    }

    #[test]
    fn shift_contributes_lookahead_and_lookback() {
        let mut b = Query::builder();
        let input = b.input("in", DataType::Float);
        let past = b.temporal("past", TDom::every_tick(), Expr::at_off(input, -5));
        let future = b.temporal("future", TDom::every_tick(), Expr::at_off(past, 2));
        let q = b.finish(future).unwrap();
        let boundary = resolve_boundaries(&q);
        // future[t] = past[t+2] = in[t-3]: the signed composition is exact.
        assert_eq!(boundary.extent(past), Extent { lo: 2, hi: 2 });
        assert_eq!(boundary.extent(input), Extent { lo: -3, hi: -3 });
        assert_eq!(boundary.extent(input).lookback(), 3);
        assert_eq!(boundary.extent(input).lookahead(), 0);
    }

    #[test]
    fn window_extents_accumulate_along_chains() {
        let mut b = Query::builder();
        let input = b.input("in", DataType::Float);
        let smooth =
            b.temporal("smooth", TDom::every_tick(), Expr::reduce_window(ReduceOp::Mean, input, 8));
        let agg =
            b.temporal("agg", TDom::every_tick(), Expr::reduce_window(ReduceOp::Max, smooth, 4));
        let q = b.finish(agg).unwrap();
        let boundary = resolve_boundaries(&q);
        assert_eq!(boundary.extent(smooth).lookback(), 4);
        assert_eq!(boundary.extent(input).lookback(), 12);
    }

    #[test]
    fn precision_adds_slack() {
        let mut b = Query::builder();
        let input = b.input("in", DataType::Float);
        let win =
            b.temporal("win", TDom::unbounded(5), Expr::reduce_window(ReduceOp::Sum, input, 10));
        let q = b.finish(win).unwrap();
        let boundary = resolve_boundaries(&q);
        assert_eq!(boundary.extent(input).lookback(), 14); // 10 + (5 - 1)
    }

    #[test]
    fn dead_expressions_have_no_extent() {
        let mut b = Query::builder();
        let input = b.input("in", DataType::Float);
        let _dead =
            b.temporal("dead", TDom::every_tick(), Expr::reduce_window(ReduceOp::Sum, input, 100));
        let out = b.temporal("out", TDom::every_tick(), Expr::at(input));
        let q = b.finish(out).unwrap();
        let boundary = resolve_boundaries(&q);
        assert!(!boundary.depends_on(TObjId(1)));
        assert_eq!(boundary.extent(input), Extent::ZERO);
    }

    #[test]
    fn extent_algebra() {
        let a = Extent { lo: -3, hi: 1 };
        let b = Extent { lo: -1, hi: 4 };
        assert_eq!(a.join(b), Extent { lo: -3, hi: 4 });
        assert_eq!(a.chain(b), Extent { lo: -4, hi: 5 });
        assert_eq!(Extent::point(-7), Extent { lo: -7, hi: -7 });
        assert_eq!(Extent::point(-7).lookback(), 7);
        assert_eq!(Extent::point(3).lookahead(), 3);
        assert_eq!(Extent::window(-10, 2), Extent { lo: -10, hi: 2 });
    }
}
