//! The typed compilation tier: monomorphized register bytecode (paper §6.1,
//! "compiled" execution; see DESIGN.md substitution 1).
//!
//! The closure-compiled [`Program`](super::Program) still interprets every
//! operation over the dynamic [`Value`] enum — each node matches on tags and
//! clones payloads. This module adds the tier the paper's LLVM backend
//! provides: the type checker assigns every sub-expression a static type,
//! and the body is lowered once into a small register bytecode over four
//! register classes:
//!
//! * `F`/`I`/`B` — unboxed `f64`/`i64`/`bool` register files with an
//!   out-of-band [`NullMask`] carrying φ, so the numeric hot path never
//!   touches the enum;
//! * `V` — boxed [`Value`] registers, the *precise* fallback for `Str` and
//!   `Tuple` subtrees, [`crate::ir::ReduceOp::Custom`] results, and values
//!   whose runtime type is genuinely dynamic (e.g. an `if` whose branches
//!   promote `int` against `float`: the taken branch's unpromoted value is
//!   observable, so the result must stay boxed to match the interpreter
//!   bit-for-bit).
//!
//! Every enum-touching operation counts into
//! [`TypedCtx::fallback_ops`]; a fully numeric plan compiles with zero `V`
//! registers ([`TypedProgram::is_fully_typed`]) and its counter stays zero —
//! the `kernel_hot` bench guardrail pins this. Compiled and interpreted
//! tiers are *byte-identical* on well-typed data: the differential property
//! suite (`tests/compiled_tier_properties.rs`) compares them span by span.
//!
//! When lowering for the batched tier (`speculate` in [`compile_typed`]),
//! `if`/`else` bodies whose instructions are side-effect-free and
//! non-trapping are **if-converted**: both branches execute
//! unconditionally and a single [`Instr::Select`] picks the taken value,
//! yielding straight-line bytecode the batch gate (`super::batch`) can
//! admit. The per-tick tier lowers with speculation off, so its bytecode
//! keeps the branchy reference shape.
//! Payloads that violate their declared input type follow [`Value`]'s
//! unboxing semantics on the typed path — `Int` on a `Float` input coerces
//! ([`Value::as_f64`]), anything else reads as φ — instead of reproducing
//! the interpreter's dynamic-dispatch quirks; ingestion owns the contract
//! that event payloads match their declared types.

use std::collections::HashMap;

use tilt_data::{NullMask, Value};

use super::program::{PointSpec, Program};
use crate::error::{CompileError, Result};
use crate::ir::typeck::{binary_type, unary_type, TypeInfo};
use crate::ir::{BinOp, DataType, Expr, ReduceOp, TObjId, UnOp, VarId};

/// The register class of a typed value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Class {
    /// Unboxed `f64`.
    F,
    /// Unboxed `i64`.
    I,
    /// Unboxed `bool`.
    B,
    /// Boxed [`Value`] (the fallback class).
    V,
}

impl Class {
    /// The class representing payloads of declared type `ty`.
    pub(crate) fn of_type(ty: &DataType) -> Class {
        match ty {
            DataType::Float => Class::F,
            DataType::Int => Class::I,
            DataType::Bool => Class::B,
            // Unknown inputs carry arbitrary runtime payloads: stay boxed.
            DataType::Str | DataType::Tuple(_) | DataType::Unknown => Class::V,
        }
    }
}

/// A typed register: class + index into that class's file.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct Reg {
    pub(crate) class: Class,
    pub(crate) idx: u16,
}

/// Arithmetic operations shared by the `F` and `I` instruction arms.
#[derive(Clone, Copy, Debug)]
pub(super) enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Pow,
    Min,
    Max,
}

impl ArithOp {
    fn of(op: BinOp) -> Option<ArithOp> {
        Some(match op {
            BinOp::Add => ArithOp::Add,
            BinOp::Sub => ArithOp::Sub,
            BinOp::Mul => ArithOp::Mul,
            BinOp::Div => ArithOp::Div,
            BinOp::Rem => ArithOp::Rem,
            BinOp::Pow => ArithOp::Pow,
            BinOp::Min => ArithOp::Min,
            BinOp::Max => ArithOp::Max,
            _ => return None,
        })
    }

    /// Float semantics, identical to `Value`'s float arms.
    #[inline]
    pub(super) fn apply_f(self, a: f64, b: f64) -> f64 {
        match self {
            ArithOp::Add => a + b,
            ArithOp::Sub => a - b,
            ArithOp::Mul => a * b,
            ArithOp::Div => a / b,
            ArithOp::Rem => a % b,
            ArithOp::Pow => a.powf(b),
            ArithOp::Min => a.min(b),
            ArithOp::Max => a.max(b),
        }
    }

    /// Integer semantics, identical to `Value`'s int arms (`None` = φ).
    #[inline]
    pub(super) fn apply_i(self, a: i64, b: i64) -> Option<i64> {
        Some(match self {
            ArithOp::Add => a.wrapping_add(b),
            ArithOp::Sub => a.wrapping_sub(b),
            ArithOp::Mul => a.wrapping_mul(b),
            ArithOp::Div if b == 0 => return None,
            ArithOp::Div => a / b,
            ArithOp::Rem if b == 0 => return None,
            ArithOp::Rem => a % b,
            ArithOp::Pow => a.pow(b.clamp(0, u32::MAX as i64) as u32),
            ArithOp::Min => a.min(b),
            ArithOp::Max => a.max(b),
        })
    }
}

/// Ordering comparisons shared by the typed comparison arms.
#[derive(Clone, Copy, Debug)]
pub(super) enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    fn of(op: BinOp) -> Option<CmpOp> {
        Some(match op {
            BinOp::Lt => CmpOp::Lt,
            BinOp::Le => CmpOp::Le,
            BinOp::Gt => CmpOp::Gt,
            BinOp::Ge => CmpOp::Ge,
            _ => return None,
        })
    }

    /// The mirrored comparison: `c op a ⇔ a flip(op) c`, used when folding
    /// a left-hand constant into a `Cmp*C` superinstruction.
    fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    #[inline]
    pub(super) fn apply<T: PartialOrd>(self, a: T, b: T) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// One typed instruction. Register operands are indices into the class
/// files of [`TypedCtx`]; control flow uses absolute instruction indices.
#[derive(Clone, Debug)]
pub(super) enum Instr {
    ConstF {
        dst: u16,
        v: f64,
    },
    ConstI {
        dst: u16,
        v: i64,
    },
    ConstB {
        dst: u16,
        v: bool,
    },
    ConstV {
        dst: u16,
        v: Box<Value>,
    },
    /// Sets `dst` to φ.
    Null {
        dst: Reg,
    },
    /// Loads the evaluation time into an `I` register.
    Time {
        dst: u16,
    },
    /// Same-class register copy.
    Mov {
        src: Reg,
        dst: Reg,
    },
    /// Boxes a typed register into a `V` register.
    Box {
        src: Reg,
        dst: u16,
    },
    ArithF {
        op: ArithOp,
        a: u16,
        b: u16,
        dst: u16,
    },
    ArithI {
        op: ArithOp,
        a: u16,
        b: u16,
        dst: u16,
    },
    /// Arithmetic with an embedded constant operand (`rev` puts the
    /// constant on the left: `c op a`). Saves a constant register read per
    /// tick — the most common binary shape after fusion.
    ArithFC {
        op: ArithOp,
        a: u16,
        c: f64,
        dst: u16,
        rev: bool,
    },
    /// `x * y + z` in one dispatch (peephole-fused; computed as separate
    /// multiply-then-add so rounding matches the interpreter exactly —
    /// this is *not* an FMA).
    MulAddF {
        x: u16,
        y: u16,
        z: u16,
        dst: u16,
    },
    /// `x * y + c` with an embedded constant addend.
    MulAddFC {
        x: u16,
        y: u16,
        c: f64,
        dst: u16,
    },
    ArithIC {
        op: ArithOp,
        a: u16,
        c: i64,
        dst: u16,
        rev: bool,
    },
    CmpF {
        op: CmpOp,
        a: u16,
        b: u16,
        dst: u16,
    },
    CmpI {
        op: CmpOp,
        a: u16,
        b: u16,
        dst: u16,
    },
    CmpB {
        op: CmpOp,
        a: u16,
        b: u16,
        dst: u16,
    },
    /// Comparison against an embedded constant (left-hand constants are
    /// pre-flipped by the compiler).
    CmpFC {
        op: CmpOp,
        a: u16,
        c: f64,
        dst: u16,
    },
    CmpIC {
        op: CmpOp,
        a: u16,
        c: i64,
        dst: u16,
    },
    /// The filter idiom `cond ? a : b` where both branches are plain
    /// registers or φ: a single conditional move, no jump scaffold.
    Select {
        cond: u16,
        t: Option<Reg>,
        f: Option<Reg>,
        dst: Reg,
    },
    /// Float equality with snapshot-identity semantics (bitwise, like
    /// [`Value::same`]); `neg` selects `!=`.
    EqF {
        neg: bool,
        a: u16,
        b: u16,
        dst: u16,
    },
    EqI {
        neg: bool,
        a: u16,
        b: u16,
        dst: u16,
    },
    EqB {
        neg: bool,
        a: u16,
        b: u16,
        dst: u16,
    },
    /// Kleene conjunction over `B` registers.
    AndB {
        a: u16,
        b: u16,
        dst: u16,
    },
    /// Kleene disjunction over `B` registers.
    OrB {
        a: u16,
        b: u16,
        dst: u16,
    },
    NotB {
        a: u16,
        dst: u16,
    },
    NegF {
        a: u16,
        dst: u16,
    },
    NegI {
        a: u16,
        dst: u16,
    },
    AbsF {
        a: u16,
        dst: u16,
    },
    AbsI {
        a: u16,
        dst: u16,
    },
    SqrtF {
        a: u16,
        dst: u16,
    },
    /// Int → float conversion (the numeric promotion step).
    I2F {
        a: u16,
        dst: u16,
    },
    /// Float → int truncation (`ToInt`).
    F2I {
        a: u16,
        dst: u16,
    },
    /// The `e != φ` test; never φ, works on every class.
    IsNull {
        a: Reg,
        dst: u16,
    },
    /// Dynamic binary op over boxed operands (fallback arm): boxes both
    /// sides, applies the `Value` op, stores per `dst` class.
    BinV {
        op: BinOp,
        a: Reg,
        b: Reg,
        dst: Reg,
    },
    /// Dynamic unary op over a boxed operand (fallback arm).
    UnV {
        op: UnOp,
        a: u16,
        dst: Reg,
    },
    /// Tuple field projection out of a `V` register.
    Field {
        a: u16,
        idx: usize,
        dst: u16,
    },
    /// Tuple construction from (possibly φ) typed parts.
    MakeTuple {
        parts: Box<[Option<Reg>]>,
        dst: u16,
    },
    Jump {
        target: u32,
    },
    /// Three-way branch on a `B` register: fall through on `true`.
    Branch {
        cond: u16,
        on_false: u32,
        on_null: u32,
    },
    /// Three-way branch on a boxed condition (dynamic `if`).
    BranchV {
        cond: u16,
        on_false: u32,
        on_null: u32,
    },
}

/// The runtime register files of a compiled typed program.
///
/// φ lives in per-class [`NullMask`]s for the unboxed files; `V` registers
/// carry it inline as [`Value::Null`]. Registers persist across ticks, like
/// the interpreter's [`super::EvalCtx`] slots.
#[derive(Clone, Debug)]
pub(crate) struct TypedCtx {
    /// The current evaluation time in ticks.
    pub(crate) t: i64,
    f: Vec<f64>,
    i: Vec<i64>,
    b: Vec<bool>,
    v: Vec<Value>,
    nf: NullMask,
    ni: NullMask,
    nb: NullMask,
    /// Executions of enum-touching (fallback) operations since creation.
    pub(crate) fallback_ops: u64,
    /// Executions of fused window maps since creation — the observable for
    /// the map-once-per-element invariant (Subtract-on-Evict must *not*
    /// re-run maps; see `super::reduce`).
    pub(crate) map_runs: u64,
}

impl TypedCtx {
    #[inline]
    fn set_f(&mut self, i: u16, v: f64) {
        self.f[i as usize] = v;
        self.nf.set(i as usize, false);
    }

    #[inline]
    fn set_i(&mut self, i: u16, v: i64) {
        self.i[i as usize] = v;
        self.ni.set(i as usize, false);
    }

    #[inline]
    fn set_b(&mut self, i: u16, v: bool) {
        self.b[i as usize] = v;
        self.nb.set(i as usize, false);
    }

    #[inline]
    pub(super) fn get_f(&self, i: u16) -> (f64, bool) {
        (self.f[i as usize], self.nf.get(i as usize))
    }

    #[inline]
    pub(super) fn get_i(&self, i: u16) -> (i64, bool) {
        (self.i[i as usize], self.ni.get(i as usize))
    }

    #[inline]
    pub(super) fn get_b(&self, i: u16) -> (bool, bool) {
        (self.b[i as usize], self.nb.get(i as usize))
    }

    #[inline]
    fn set_null(&mut self, r: Reg) {
        match r.class {
            Class::F => self.nf.set(r.idx as usize, true),
            Class::I => self.ni.set(r.idx as usize, true),
            Class::B => self.nb.set(r.idx as usize, true),
            Class::V => self.v[r.idx as usize] = Value::Null,
        }
    }

    /// Whether the register currently holds φ.
    #[inline]
    fn is_null(&self, r: Reg) -> bool {
        match r.class {
            Class::F => self.nf.get(r.idx as usize),
            Class::I => self.ni.get(r.idx as usize),
            Class::B => self.nb.get(r.idx as usize),
            Class::V => matches!(self.v[r.idx as usize], Value::Null),
        }
    }

    /// Boxes a register's current content.
    #[inline]
    fn read_value(&self, r: Reg) -> Value {
        match r.class {
            Class::F => {
                let (x, n) = self.get_f(r.idx);
                if n {
                    Value::Null
                } else {
                    Value::Float(x)
                }
            }
            Class::I => {
                let (x, n) = self.get_i(r.idx);
                if n {
                    Value::Null
                } else {
                    Value::Int(x)
                }
            }
            Class::B => {
                let (x, n) = self.get_b(r.idx);
                if n {
                    Value::Null
                } else {
                    Value::Bool(x)
                }
            }
            Class::V => self.v[r.idx as usize].clone(),
        }
    }

    /// Unboxes `v` into `r` (φ on class mismatch, with int → float
    /// coercion on the `F` file, mirroring [`Value::as_f64`]).
    #[inline]
    pub(crate) fn store_value(&mut self, r: Reg, v: Value) {
        match r.class {
            Class::F => match v.as_f64() {
                Some(x) => self.set_f(r.idx, x),
                None => self.nf.set(r.idx as usize, true),
            },
            Class::I => match v.as_i64() {
                Some(x) => self.set_i(r.idx, x),
                None => self.ni.set(r.idx as usize, true),
            },
            Class::B => match v.as_bool() {
                Some(x) => self.set_b(r.idx, x),
                None => self.nb.set(r.idx as usize, true),
            },
            // Counting happens at the operation sites (BinV, loads, …),
            // not here, so one dynamic op is one fallback op.
            Class::V => self.v[r.idx as usize] = v,
        }
    }

    /// Like [`TypedCtx::store_value`] but by reference (point loads, map
    /// elements): unboxed classes never clone the payload.
    #[inline]
    pub(crate) fn load_value(&mut self, r: Reg, v: &Value) {
        match r.class {
            Class::F => self.store_f64(r, v.as_f64()),
            Class::I => self.store_i64(r, v.as_i64()),
            Class::B => self.store_bool(r, v.as_bool()),
            Class::V => {
                self.fallback_ops += 1;
                self.v[r.idx as usize] = v.clone();
            }
        }
    }

    /// Stores an already-unboxed float (`None` = φ) — the typed point-load
    /// fast path.
    #[inline]
    pub(crate) fn store_f64(&mut self, r: Reg, v: Option<f64>) {
        debug_assert_eq!(r.class, Class::F);
        match v {
            Some(x) => self.set_f(r.idx, x),
            None => self.nf.set(r.idx as usize, true),
        }
    }

    /// Stores an already-unboxed integer (`None` = φ).
    #[inline]
    pub(crate) fn store_i64(&mut self, r: Reg, v: Option<i64>) {
        debug_assert_eq!(r.class, Class::I);
        match v {
            Some(x) => self.set_i(r.idx, x),
            None => self.ni.set(r.idx as usize, true),
        }
    }

    /// Stores an already-unboxed boolean (`None` = φ).
    #[inline]
    pub(crate) fn store_bool(&mut self, r: Reg, v: Option<bool>) {
        debug_assert_eq!(r.class, Class::B);
        match v {
            Some(x) => self.set_b(r.idx, x),
            None => self.nb.set(r.idx as usize, true),
        }
    }
}

/// A compiled per-element window map (the typed counterpart of
/// [`super::MapFn`]): its instructions share the enclosing program's
/// register space.
#[derive(Clone, Debug)]
pub(crate) struct TypedMap {
    /// The register the element value is loaded into before evaluation.
    var: Reg,
    instrs: Vec<Instr>,
    root: Option<Reg>,
}

impl TypedMap {
    /// The class of the mapped element, or `None` when the map is provably
    /// φ for every element.
    pub(crate) fn fold_class(&self) -> Option<Class> {
        self.root.map(|r| r.class)
    }
}

impl TypedMap {
    /// Applies the map to one window element (`Value::Null` = skip).
    pub(crate) fn run(&self, ctx: &mut TypedCtx, elem: &Value) -> Value {
        ctx.map_runs += 1;
        ctx.load_value(self.var, elem);
        exec(&self.instrs, ctx);
        match self.root {
            Some(r) => ctx.read_value(r),
            None => Value::Null,
        }
    }

    /// Applies the map and reads the root as an unboxed `f64` (`None` = φ)
    /// — the typed reduce fold path when [`TypedMap::fold_class`] is
    /// `Some(Class::F)`. No boxed `Value` is built on either side.
    pub(crate) fn run_f64(&self, ctx: &mut TypedCtx, elem: &Value) -> Option<f64> {
        ctx.map_runs += 1;
        ctx.load_value(self.var, elem);
        exec(&self.instrs, ctx);
        let r = self.root?;
        debug_assert_eq!(r.class, Class::F);
        let (x, n) = ctx.get_f(r.idx);
        if n {
            None
        } else {
            Some(x)
        }
    }

    /// Applies the map and reads the root as an unboxed `i64` (`None` = φ).
    pub(crate) fn run_i64(&self, ctx: &mut TypedCtx, elem: &Value) -> Option<i64> {
        ctx.map_runs += 1;
        ctx.load_value(self.var, elem);
        exec(&self.instrs, ctx);
        let r = self.root?;
        debug_assert_eq!(r.class, Class::I);
        let (x, n) = ctx.get_i(r.idx);
        if n {
            None
        } else {
            Some(x)
        }
    }
}

/// A kernel body lowered to typed register bytecode.
#[derive(Clone)]
pub(crate) struct TypedProgram {
    /// Constant materialization, executed **once** per register file
    /// ([`TypedProgram::new_ctx`]) — constants never burn a dispatch in the
    /// per-tick loop.
    pub(super) prelude: Vec<Instr>,
    pub(super) instrs: Vec<Instr>,
    pub(super) root: Option<Reg>,
    pub(super) n_f: u16,
    pub(super) n_i: u16,
    pub(super) n_b: u16,
    n_v: u16,
    /// Destination register per point slot of the paired [`Program`]
    /// (`None` when the body never reads the slot's value — the kernel
    /// still advances its cursor for change-point stepping).
    pub(crate) point_regs: Vec<Option<Reg>>,
    /// Destination register per reduce slot (`None` when provably φ).
    pub(crate) reduce_regs: Vec<Option<Reg>>,
    /// Typed map per reduce slot, when the fused map compiled.
    pub(crate) typed_maps: Vec<Option<TypedMap>>,
    /// Per reduce slot: the element class when unboxed accumulators apply.
    pub(crate) reduce_elem: Vec<Option<Class>>,
}

impl TypedProgram {
    /// Creates a register file sized for this program, with every constant
    /// register pre-materialized by the prelude.
    pub(crate) fn new_ctx(&self) -> TypedCtx {
        let mut ctx = TypedCtx {
            t: 0,
            f: vec![0.0; self.n_f as usize],
            i: vec![0; self.n_i as usize],
            b: vec![false; self.n_b as usize],
            v: vec![Value::Null; self.n_v as usize],
            nf: NullMask::new(self.n_f as usize),
            ni: NullMask::new(self.n_i as usize),
            nb: NullMask::new(self.n_b as usize),
            fallback_ops: 0,
            map_runs: 0,
        };
        exec(&self.prelude, &mut ctx);
        ctx
    }

    /// Executes the program against a prepared context and boxes the root.
    #[inline]
    pub(crate) fn run(&self, ctx: &mut TypedCtx) -> Value {
        exec(&self.instrs, ctx);
        match self.root {
            Some(r) => ctx.read_value(r),
            None => Value::Null,
        }
    }

    /// Whether the plan never touches the dynamic enum: no `V` registers
    /// were allocated, so every fallback arm is unreachable.
    pub(crate) fn is_fully_typed(&self) -> bool {
        self.n_v == 0
    }

    /// The register class of the kernel's output values (what downstream
    /// consumers of the output buffer should assume).
    pub(crate) fn output_class(&self) -> Class {
        self.root.map_or(Class::V, |r| r.class)
    }
}

impl std::fmt::Debug for TypedProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TypedProgram")
            .field("instrs", &self.instrs.len())
            .field("regs", &(self.n_f, self.n_i, self.n_b, self.n_v))
            .field("fully_typed", &self.is_fully_typed())
            .finish()
    }
}

/// Executes one instruction sequence over `ctx`.
///
/// Straight-line stretches run through a slice iterator (no per-instruction
/// bounds check); taken jumps restart the iterator at their target.
pub(super) fn exec(instrs: &[Instr], ctx: &mut TypedCtx) {
    let mut pc = 0usize;
    'dispatch: while pc < instrs.len() {
        for ins in &instrs[pc..] {
            pc += 1;
            match ins {
                Instr::ConstF { dst, v } => ctx.set_f(*dst, *v),
                Instr::ConstI { dst, v } => ctx.set_i(*dst, *v),
                Instr::ConstB { dst, v } => ctx.set_b(*dst, *v),
                Instr::ConstV { dst, v } => {
                    ctx.fallback_ops += 1;
                    ctx.v[*dst as usize] = (**v).clone();
                }
                Instr::Null { dst } => ctx.set_null(*dst),
                Instr::Time { dst } => {
                    let t = ctx.t;
                    ctx.set_i(*dst, t);
                }
                Instr::Mov { src, dst } => match (src.class, dst.class) {
                    (Class::F, Class::F) => {
                        let (x, n) = ctx.get_f(src.idx);
                        ctx.f[dst.idx as usize] = x;
                        ctx.nf.set(dst.idx as usize, n);
                    }
                    (Class::I, Class::I) => {
                        let (x, n) = ctx.get_i(src.idx);
                        ctx.i[dst.idx as usize] = x;
                        ctx.ni.set(dst.idx as usize, n);
                    }
                    (Class::B, Class::B) => {
                        let (x, n) = ctx.get_b(src.idx);
                        ctx.b[dst.idx as usize] = x;
                        ctx.nb.set(dst.idx as usize, n);
                    }
                    _ => {
                        ctx.fallback_ops += 1;
                        ctx.v[dst.idx as usize] = ctx.v[src.idx as usize].clone();
                    }
                },
                Instr::Box { src, dst } => {
                    ctx.fallback_ops += 1;
                    ctx.v[*dst as usize] = ctx.read_value(*src);
                }
                Instr::ArithF { op, a, b, dst } => {
                    // Branch-free: IEEE float ops cannot trap, so the value is
                    // computed unconditionally and φ rides the flag store.
                    let (x, xn) = ctx.get_f(*a);
                    let (y, yn) = ctx.get_f(*b);
                    ctx.f[*dst as usize] = op.apply_f(x, y);
                    ctx.nf.set(*dst as usize, xn | yn);
                }
                Instr::ArithI { op, a, b, dst } => {
                    let (x, xn) = ctx.get_i(*a);
                    let (y, yn) = ctx.get_i(*b);
                    match if xn || yn { None } else { op.apply_i(x, y) } {
                        Some(r) => ctx.set_i(*dst, r),
                        None => ctx.ni.set(*dst as usize, true),
                    }
                }
                Instr::ArithFC { op, a, c, dst, rev } => {
                    let (x, n) = ctx.get_f(*a);
                    let r = if *rev { op.apply_f(*c, x) } else { op.apply_f(x, *c) };
                    ctx.f[*dst as usize] = r;
                    ctx.nf.set(*dst as usize, n);
                }
                Instr::MulAddF { x, y, z, dst } => {
                    let (a, an) = ctx.get_f(*x);
                    let (b, bn) = ctx.get_f(*y);
                    let (c, cn) = ctx.get_f(*z);
                    ctx.f[*dst as usize] = a * b + c;
                    ctx.nf.set(*dst as usize, an | bn | cn);
                }
                Instr::MulAddFC { x, y, c, dst } => {
                    let (a, an) = ctx.get_f(*x);
                    let (b, bn) = ctx.get_f(*y);
                    ctx.f[*dst as usize] = a * b + *c;
                    ctx.nf.set(*dst as usize, an | bn);
                }
                Instr::ArithIC { op, a, c, dst, rev } => {
                    let (x, n) = ctx.get_i(*a);
                    let r = if n {
                        None
                    } else if *rev {
                        op.apply_i(*c, x)
                    } else {
                        op.apply_i(x, *c)
                    };
                    match r {
                        Some(r) => ctx.set_i(*dst, r),
                        None => ctx.ni.set(*dst as usize, true),
                    }
                }
                Instr::CmpFC { op, a, c, dst } => {
                    let (x, n) = ctx.get_f(*a);
                    ctx.b[*dst as usize] = op.apply(x, *c);
                    ctx.nb.set(*dst as usize, n);
                }
                Instr::CmpIC { op, a, c, dst } => {
                    let (x, n) = ctx.get_i(*a);
                    if n {
                        ctx.nb.set(*dst as usize, true);
                    } else {
                        ctx.set_b(*dst, op.apply(x, *c));
                    }
                }
                Instr::Select { cond, t, f, dst } => {
                    let (c, n) = ctx.get_b(*cond);
                    let taken = if n {
                        None
                    } else if c {
                        *t
                    } else {
                        *f
                    };
                    match taken {
                        None => ctx.set_null(*dst),
                        Some(src) if src == *dst => {}
                        Some(src) => match (src.class, dst.class) {
                            (Class::F, Class::F) => {
                                let (x, xn) = ctx.get_f(src.idx);
                                ctx.f[dst.idx as usize] = x;
                                ctx.nf.set(dst.idx as usize, xn);
                            }
                            (Class::I, Class::I) => {
                                let (x, xn) = ctx.get_i(src.idx);
                                ctx.i[dst.idx as usize] = x;
                                ctx.ni.set(dst.idx as usize, xn);
                            }
                            (Class::B, Class::B) => {
                                let (x, xn) = ctx.get_b(src.idx);
                                ctx.b[dst.idx as usize] = x;
                                ctx.nb.set(dst.idx as usize, xn);
                            }
                            _ => {
                                ctx.fallback_ops += 1;
                                ctx.v[dst.idx as usize] = ctx.read_value(src);
                            }
                        },
                    }
                }
                Instr::CmpF { op, a, b, dst } => {
                    let (x, xn) = ctx.get_f(*a);
                    let (y, yn) = ctx.get_f(*b);
                    ctx.b[*dst as usize] = op.apply(x, y);
                    ctx.nb.set(*dst as usize, xn | yn);
                }
                Instr::CmpI { op, a, b, dst } => {
                    let (x, xn) = ctx.get_i(*a);
                    let (y, yn) = ctx.get_i(*b);
                    if xn || yn {
                        ctx.nb.set(*dst as usize, true);
                    } else {
                        ctx.set_b(*dst, op.apply(x, y));
                    }
                }
                Instr::CmpB { op, a, b, dst } => {
                    let (x, xn) = ctx.get_b(*a);
                    let (y, yn) = ctx.get_b(*b);
                    if xn || yn {
                        ctx.nb.set(*dst as usize, true);
                    } else {
                        ctx.set_b(*dst, op.apply(x, y));
                    }
                }
                Instr::EqF { neg, a, b, dst } => {
                    let (x, xn) = ctx.get_f(*a);
                    let (y, yn) = ctx.get_f(*b);
                    ctx.b[*dst as usize] = (x.to_bits() == y.to_bits()) != *neg;
                    ctx.nb.set(*dst as usize, xn | yn);
                }
                Instr::EqI { neg, a, b, dst } => {
                    let (x, xn) = ctx.get_i(*a);
                    let (y, yn) = ctx.get_i(*b);
                    if xn || yn {
                        ctx.nb.set(*dst as usize, true);
                    } else {
                        ctx.set_b(*dst, (x == y) != *neg);
                    }
                }
                Instr::EqB { neg, a, b, dst } => {
                    let (x, xn) = ctx.get_b(*a);
                    let (y, yn) = ctx.get_b(*b);
                    if xn || yn {
                        ctx.nb.set(*dst as usize, true);
                    } else {
                        ctx.set_b(*dst, (x == y) != *neg);
                    }
                }
                Instr::AndB { a, b, dst } => {
                    let (x, xn) = ctx.get_b(*a);
                    let (y, yn) = ctx.get_b(*b);
                    // Kleene: false ∧ φ = false.
                    if (!xn && !x) || (!yn && !y) {
                        ctx.set_b(*dst, false);
                    } else if !xn && !yn {
                        ctx.set_b(*dst, true);
                    } else {
                        ctx.nb.set(*dst as usize, true);
                    }
                }
                Instr::OrB { a, b, dst } => {
                    let (x, xn) = ctx.get_b(*a);
                    let (y, yn) = ctx.get_b(*b);
                    // Kleene: true ∨ φ = true.
                    if (!xn && x) || (!yn && y) {
                        ctx.set_b(*dst, true);
                    } else if !xn && !yn {
                        ctx.set_b(*dst, false);
                    } else {
                        ctx.nb.set(*dst as usize, true);
                    }
                }
                Instr::NotB { a, dst } => {
                    let (x, n) = ctx.get_b(*a);
                    if n {
                        ctx.nb.set(*dst as usize, true);
                    } else {
                        ctx.set_b(*dst, !x);
                    }
                }
                Instr::NegF { a, dst } => {
                    let (x, n) = ctx.get_f(*a);
                    ctx.f[*dst as usize] = -x;
                    ctx.nf.set(*dst as usize, n);
                }
                Instr::NegI { a, dst } => {
                    let (x, n) = ctx.get_i(*a);
                    if n {
                        ctx.ni.set(*dst as usize, true);
                    } else {
                        ctx.set_i(*dst, -x);
                    }
                }
                Instr::AbsF { a, dst } => {
                    let (x, n) = ctx.get_f(*a);
                    ctx.f[*dst as usize] = x.abs();
                    ctx.nf.set(*dst as usize, n);
                }
                Instr::AbsI { a, dst } => {
                    let (x, n) = ctx.get_i(*a);
                    if n {
                        ctx.ni.set(*dst as usize, true);
                    } else {
                        ctx.set_i(*dst, x.abs());
                    }
                }
                Instr::SqrtF { a, dst } => {
                    let (x, n) = ctx.get_f(*a);
                    ctx.f[*dst as usize] = x.sqrt();
                    ctx.nf.set(*dst as usize, n);
                }
                Instr::I2F { a, dst } => {
                    let (x, n) = ctx.get_i(*a);
                    ctx.f[*dst as usize] = x as f64;
                    ctx.nf.set(*dst as usize, n);
                }
                Instr::F2I { a, dst } => {
                    let (x, n) = ctx.get_f(*a);
                    if n {
                        ctx.ni.set(*dst as usize, true);
                    } else {
                        ctx.set_i(*dst, x as i64);
                    }
                }
                Instr::IsNull { a, dst } => {
                    let n = ctx.is_null(*a);
                    ctx.set_b(*dst, n);
                }
                Instr::BinV { op, a, b, dst } => {
                    ctx.fallback_ops += 1;
                    // Box only non-V operands; V operands apply by reference
                    // (no Arc traffic for Str/Tuple payloads).
                    let result = match (a.class, b.class) {
                        (Class::V, Class::V) => {
                            op.apply(&ctx.v[a.idx as usize], &ctx.v[b.idx as usize])
                        }
                        (Class::V, _) => op.apply(&ctx.v[a.idx as usize], &ctx.read_value(*b)),
                        (_, Class::V) => op.apply(&ctx.read_value(*a), &ctx.v[b.idx as usize]),
                        _ => op.apply(&ctx.read_value(*a), &ctx.read_value(*b)),
                    };
                    ctx.store_value(*dst, result);
                }
                Instr::UnV { op, a, dst } => {
                    ctx.fallback_ops += 1;
                    let result = op.apply(&ctx.v[*a as usize]);
                    ctx.store_value(*dst, result);
                }
                Instr::Field { a, idx, dst } => {
                    ctx.fallback_ops += 1;
                    ctx.v[*dst as usize] = ctx.v[*a as usize].field(*idx);
                }
                Instr::MakeTuple { parts, dst } => {
                    ctx.fallback_ops += 1;
                    let fields: Vec<Value> = parts
                        .iter()
                        .map(|p| p.map_or(Value::Null, |r| ctx.read_value(r)))
                        .collect();
                    ctx.v[*dst as usize] = Value::tuple(fields);
                }
                Instr::Jump { target } => {
                    pc = *target as usize;
                    continue 'dispatch;
                }
                Instr::Branch { cond, on_false, on_null } => {
                    let (x, n) = ctx.get_b(*cond);
                    if n {
                        pc = *on_null as usize;
                        continue 'dispatch;
                    }
                    if !x {
                        pc = *on_false as usize;
                        continue 'dispatch;
                    }
                }
                Instr::BranchV { cond, on_false, on_null } => {
                    ctx.fallback_ops += 1;
                    match ctx.v[*cond as usize] {
                        Value::Bool(true) => {}
                        Value::Bool(false) => {
                            pc = *on_false as usize;
                            continue 'dispatch;
                        }
                        _ => {
                            pc = *on_null as usize;
                            continue 'dispatch;
                        }
                    }
                }
            }
        }
    }
}

/// If `out` is the value of `code`'s last instruction and its class matches
/// `dst`, rewrites that instruction to write `dst` directly (eliding the
/// branch-tail `Mov`). Safe because every instruction writes a fresh
/// single-writer register: the original destination has no other reader
/// once the `if` consumes it.
fn branch_retargets(code: &mut [Instr], out: &Out, dst: Reg) -> bool {
    let Out::Reg(r, _) = out else { return false };
    if r.class != dst.class {
        return false;
    }
    let Some(last) = code.last_mut() else { return false };
    let written = match last {
        Instr::ArithF { dst, .. }
        | Instr::ArithFC { dst, .. }
        | Instr::SqrtF { dst, .. }
        | Instr::NegF { dst, .. }
        | Instr::AbsF { dst, .. }
        | Instr::I2F { dst, .. }
            if r.class == Class::F =>
        {
            Some(dst)
        }
        Instr::ArithI { dst, .. }
        | Instr::ArithIC { dst, .. }
        | Instr::NegI { dst, .. }
        | Instr::AbsI { dst, .. }
        | Instr::F2I { dst, .. }
        | Instr::Time { dst }
            if r.class == Class::I =>
        {
            Some(dst)
        }
        Instr::CmpF { dst, .. }
        | Instr::CmpI { dst, .. }
        | Instr::CmpB { dst, .. }
        | Instr::CmpFC { dst, .. }
        | Instr::CmpIC { dst, .. }
        | Instr::EqF { dst, .. }
        | Instr::EqI { dst, .. }
        | Instr::EqB { dst, .. }
        | Instr::AndB { dst, .. }
        | Instr::OrB { dst, .. }
        | Instr::NotB { dst, .. }
        | Instr::IsNull { dst, .. }
            if r.class == Class::B =>
        {
            Some(dst)
        }
        Instr::Field { dst, .. } | Instr::MakeTuple { dst, .. } if r.class == Class::V => Some(dst),
        _ => None,
    };
    match written {
        Some(d) if *d == r.idx => {
            *d = dst.idx;
            true
        }
        _ => false,
    }
}

/// Compile-time descriptor of a sub-expression's value.
#[derive(Clone, Debug)]
enum Out {
    /// Lives in a register, with its inferred static type.
    Reg(Reg, DataType),
    /// Provably φ (type `Unknown`): folded away, no register.
    Null,
}

impl Out {
    fn ty(&self) -> DataType {
        match self {
            Out::Reg(_, ty) => ty.clone(),
            Out::Null => DataType::Unknown,
        }
    }
}

/// Compiles a kernel body into a [`TypedProgram`].
///
/// `program` is the already-compiled interpreter tier: its point and reduce
/// slot layout is authoritative, and the typed program maps registers onto
/// the *same* slots so both tiers share cursors, reduce runners, and
/// change-point stepping. `objs` resolves temporal-object payload types
/// (from [`TypeInfo`]); `classes` gives each upstream object's register
/// class — `V` for objects produced by fallback or dynamically-typed
/// kernels, whose buffers may hold runtime types the static type does not
/// pin down.
///
/// # Errors
///
/// Propagates type or structure errors; callers treat a failed typed
/// compile as "stay on the interpreter tier" (see `Kernel::with_types`).
pub(crate) fn compile_typed(
    body: &Expr,
    program: &Program,
    objs: &dyn Fn(TObjId) -> Result<DataType>,
    classes: &HashMap<TObjId, Class>,
    speculate: bool,
) -> Result<TypedProgram> {
    let mut cc = TypedCompiler {
        program,
        objs,
        classes,
        speculate,
        env: HashMap::new(),
        prelude: Vec::new(),
        instrs: Vec::new(),
        const_f: HashMap::new(),
        const_i: HashMap::new(),
        n_regs: [0; 4],
        next_reduce: 0,
        point_regs: vec![None; program.points.len()],
        reduce_regs: vec![None; program.reduces.len()],
        typed_maps: vec![None; program.reduces.len()],
        reduce_elem: vec![None; program.reduces.len()],
    };
    let root = cc.emit(body)?;
    if cc.next_reduce != program.reduces.len() {
        return Err(CompileError::Invalid("typed tier lost a reduce slot".into()));
    }
    let root = match root {
        Out::Reg(r, _) => Some(r),
        Out::Null => None,
    };
    thread_jumps(&mut cc.instrs);
    for map in cc.typed_maps.iter_mut().flatten() {
        thread_jumps(&mut map.instrs);
    }
    Ok(TypedProgram {
        prelude: cc.prelude,
        instrs: cc.instrs,
        root,
        n_f: cc.n_regs[0],
        n_i: cc.n_regs[1],
        n_b: cc.n_regs[2],
        n_v: cc.n_regs[3],
        point_regs: cc.point_regs,
        reduce_regs: cc.reduce_regs,
        typed_maps: cc.typed_maps,
        reduce_elem: cc.reduce_elem,
    })
}

/// Whether `code` is safe to execute on a path the source program did not
/// take: straight-line typed instructions whose only effect is writing
/// their destination register, and which cannot trap on operands the taken
/// path never constrained. Integer `Div`/`Rem`/`Pow` (zero divisors,
/// `i64::MIN` edge cases) and `NegI`/`AbsI` (overflow) are excluded, as is
/// all control flow and boxed traffic.
fn speculatable(code: &[Instr]) -> bool {
    code.iter().all(|ins| match ins {
        Instr::ConstF { .. }
        | Instr::ConstI { .. }
        | Instr::ConstB { .. }
        | Instr::Time { .. }
        | Instr::ArithF { .. }
        | Instr::ArithFC { .. }
        | Instr::MulAddF { .. }
        | Instr::MulAddFC { .. }
        | Instr::CmpF { .. }
        | Instr::CmpI { .. }
        | Instr::CmpB { .. }
        | Instr::CmpFC { .. }
        | Instr::CmpIC { .. }
        | Instr::EqF { .. }
        | Instr::EqI { .. }
        | Instr::EqB { .. }
        | Instr::AndB { .. }
        | Instr::OrB { .. }
        | Instr::NotB { .. }
        | Instr::NegF { .. }
        | Instr::AbsF { .. }
        | Instr::SqrtF { .. }
        | Instr::I2F { .. }
        | Instr::F2I { .. } => true,
        Instr::ArithI { op, .. } | Instr::ArithIC { op, .. } => {
            !matches!(op, ArithOp::Div | ArithOp::Rem | ArithOp::Pow)
        }
        Instr::Null { dst } => dst.class != Class::V,
        Instr::Mov { src, dst } => src.class != Class::V && dst.class != Class::V,
        Instr::IsNull { a, .. } => a.class != Class::V,
        Instr::Select { dst, .. } => dst.class != Class::V,
        Instr::NegI { .. }
        | Instr::AbsI { .. }
        | Instr::ConstV { .. }
        | Instr::Box { .. }
        | Instr::BinV { .. }
        | Instr::UnV { .. }
        | Instr::Field { .. }
        | Instr::MakeTuple { .. }
        | Instr::Jump { .. }
        | Instr::Branch { .. }
        | Instr::BranchV { .. } => false,
    })
}

/// Follows `Jump`-to-`Jump` chains to the final destination (jumps are
/// forward-only by construction, so chains terminate).
fn resolve_jump(instrs: &[Instr], mut t: u32) -> u32 {
    while let Some(Instr::Jump { target }) = instrs.get(t as usize) {
        t = *target;
    }
    t
}

/// Jump threading: branch-scaffold hops (`Branch`/`Jump` landing on another
/// `Jump`) retarget straight to their final destination, so the executed
/// path through an `if` carries no trampoline dispatches.
fn thread_jumps(instrs: &mut [Instr]) {
    for i in 0..instrs.len() {
        let updated = match &instrs[i] {
            Instr::Jump { target } => Instr::Jump { target: resolve_jump(instrs, *target) },
            Instr::Branch { cond, on_false, on_null } => Instr::Branch {
                cond: *cond,
                on_false: resolve_jump(instrs, *on_false),
                on_null: resolve_jump(instrs, *on_null),
            },
            Instr::BranchV { cond, on_false, on_null } => Instr::BranchV {
                cond: *cond,
                on_false: resolve_jump(instrs, *on_false),
                on_null: resolve_jump(instrs, *on_null),
            },
            _ => continue,
        };
        instrs[i] = updated;
    }
}

/// Object-type lookup backed by whole-query [`TypeInfo`].
pub(crate) fn type_lookup<'a>(info: &'a TypeInfo) -> impl Fn(TObjId) -> Result<DataType> + 'a {
    move |obj| {
        info.object_type(obj)
            .cloned()
            .ok_or_else(|| CompileError::UnboundObject(format!("{obj} (typed tier)")))
    }
}

struct TypedCompiler<'a> {
    program: &'a Program,
    objs: &'a dyn Fn(TObjId) -> Result<DataType>,
    classes: &'a HashMap<TObjId, Class>,
    /// If-conversion for the batched tier: `if` branches whose code is
    /// [`speculatable`] are evaluated unconditionally and merged with one
    /// `Select`, keeping the body straight-line (see `super::batch`).
    speculate: bool,
    env: HashMap<VarId, (Option<Reg>, DataType)>,
    /// Run-once constant materialization (see [`TypedProgram::new_ctx`]).
    prelude: Vec<Instr>,
    instrs: Vec<Instr>,
    /// Known-constant registers, for folding into `*C` superinstructions.
    const_f: HashMap<u16, f64>,
    const_i: HashMap<u16, i64>,
    /// Register counts per class, indexed F, I, B, V.
    n_regs: [u16; 4],
    /// Reduce slots are assigned in body traversal order, exactly like the
    /// interpreter compiler's `reduces` list.
    next_reduce: usize,
    point_regs: Vec<Option<Reg>>,
    reduce_regs: Vec<Option<Reg>>,
    typed_maps: Vec<Option<TypedMap>>,
    reduce_elem: Vec<Option<Class>>,
}

impl TypedCompiler<'_> {
    fn alloc(&mut self, class: Class) -> Result<Reg> {
        let slot = match class {
            Class::F => 0,
            Class::I => 1,
            Class::B => 2,
            Class::V => 3,
        };
        let idx = self.n_regs[slot];
        if idx == u16::MAX {
            return Err(CompileError::Invalid("typed tier register file overflow".into()));
        }
        self.n_regs[slot] += 1;
        Ok(Reg { class, idx })
    }

    /// The register class of upstream object `obj` with payload type `ty`.
    fn obj_class(&self, obj: TObjId, ty: &DataType) -> Class {
        self.classes.get(&obj).copied().unwrap_or_else(|| Class::of_type(ty))
    }

    /// Pushes a placeholder jump and returns its index for later patching.
    fn reserve(&mut self) -> usize {
        self.instrs.push(Instr::Jump { target: u32::MAX });
        self.instrs.len() - 1
    }

    /// Allocates a register holding φ (a materialized folded-null operand;
    /// nothing else ever writes it, so it initializes in the prelude).
    fn null_reg(&mut self, class: Class) -> Result<Reg> {
        let r = self.alloc(class)?;
        self.prelude.push(Instr::Null { dst: r });
        Ok(r)
    }

    /// The constant value of a numeric register, widened to `f64` (int
    /// constants promote exactly like `Value`'s mixed arithmetic).
    fn as_const_f(&self, r: Reg) -> Option<f64> {
        match r.class {
            Class::F => self.const_f.get(&r.idx).copied(),
            Class::I => self.const_i.get(&r.idx).map(|x| *x as f64),
            _ => None,
        }
    }

    /// Appends a branch's side-compiled instructions, relocating internal
    /// jump targets by the insertion offset.
    fn splice(&mut self, side: Vec<Instr>) {
        let base = self.instrs.len() as u32;
        for ins in side {
            self.instrs.push(match ins {
                Instr::Jump { target } => Instr::Jump { target: target + base },
                Instr::Branch { cond, on_false, on_null } => {
                    Instr::Branch { cond, on_false: on_false + base, on_null: on_null + base }
                }
                Instr::BranchV { cond, on_false, on_null } => {
                    Instr::BranchV { cond, on_false: on_false + base, on_null: on_null + base }
                }
                other => other,
            });
        }
    }

    /// Emits the instruction(s) that move `src` into `dst` (boxing when the
    /// destination is dynamic).
    fn emit_assign(&mut self, src: &Out, dst: Reg) -> Result<()> {
        match src {
            Out::Null => self.instrs.push(Instr::Null { dst }),
            Out::Reg(r, _) if r.class == dst.class => self.instrs.push(Instr::Mov { src: *r, dst }),
            Out::Reg(r, _) if dst.class == Class::V => {
                self.instrs.push(Instr::Box { src: *r, dst: dst.idx })
            }
            Out::Reg(..) => {
                return Err(CompileError::Invalid("typed tier class mismatch in assign".into()))
            }
        }
        Ok(())
    }

    /// Coerces an `I`-class operand to a fresh `F` register (numeric
    /// promotion); `F` operands pass through.
    fn promote_f(&mut self, r: Reg) -> Result<Reg> {
        match r.class {
            Class::F => Ok(r),
            Class::I => {
                let dst = self.alloc(Class::F)?;
                self.instrs.push(Instr::I2F { a: r.idx, dst: dst.idx });
                Ok(dst)
            }
            _ => Err(CompileError::Invalid("typed tier promoted a non-numeric class".into())),
        }
    }

    fn emit(&mut self, e: &Expr) -> Result<Out> {
        match e {
            // Constants materialize in the prelude — once per register
            // file, never in the per-tick instruction stream.
            Expr::Const(v) => match v {
                Value::Null => Ok(Out::Null),
                Value::Bool(b) => {
                    let r = self.alloc(Class::B)?;
                    self.prelude.push(Instr::ConstB { dst: r.idx, v: *b });
                    Ok(Out::Reg(r, DataType::Bool))
                }
                Value::Int(x) => {
                    let r = self.alloc(Class::I)?;
                    self.prelude.push(Instr::ConstI { dst: r.idx, v: *x });
                    self.const_i.insert(r.idx, *x);
                    Ok(Out::Reg(r, DataType::Int))
                }
                Value::Float(x) => {
                    let r = self.alloc(Class::F)?;
                    self.prelude.push(Instr::ConstF { dst: r.idx, v: *x });
                    self.const_f.insert(r.idx, *x);
                    Ok(Out::Reg(r, DataType::Float))
                }
                other => {
                    let r = self.alloc(Class::V)?;
                    self.prelude.push(Instr::ConstV { dst: r.idx, v: Box::new(other.clone()) });
                    Ok(Out::Reg(r, DataType::of_value(other)))
                }
            },
            Expr::Var(v) => match self.env.get(v) {
                Some((Some(r), ty)) => Ok(Out::Reg(*r, ty.clone())),
                Some((None, _)) => Ok(Out::Null),
                None => Err(CompileError::UnboundVar(v.to_string())),
            },
            Expr::Time => {
                let r = self.alloc(Class::I)?;
                self.instrs.push(Instr::Time { dst: r.idx });
                Ok(Out::Reg(r, DataType::Int))
            }
            Expr::Unary(op, a) => {
                let ao = self.emit(a)?;
                self.emit_unary(*op, ao)
            }
            Expr::Binary(op, a, b) => {
                let ao = self.emit(a)?;
                let bo = self.emit(b)?;
                self.emit_binary(*op, ao, bo)
            }
            Expr::If(c, t, f) => self.emit_if(c, t, f),
            Expr::Let { var, value, body } => {
                let vo = self.emit(value)?;
                let entry = match &vo {
                    Out::Reg(r, ty) => (Some(*r), ty.clone()),
                    Out::Null => (None, DataType::Unknown),
                };
                let shadowed = self.env.insert(*var, entry);
                let bo = self.emit(body);
                match shadowed {
                    Some(prev) => {
                        self.env.insert(*var, prev);
                    }
                    None => {
                        self.env.remove(var);
                    }
                }
                bo
            }
            Expr::Field(a, i) => {
                let ao = self.emit(a)?;
                match ao {
                    Out::Null => Ok(Out::Null),
                    Out::Reg(r, ty) => {
                        if r.class != Class::V {
                            return Err(CompileError::Invalid(
                                "typed tier field access on unboxed register".into(),
                            ));
                        }
                        let field_ty = match &ty {
                            DataType::Tuple(fields) => {
                                fields.get(*i).cloned().unwrap_or(DataType::Unknown)
                            }
                            _ => DataType::Unknown,
                        };
                        // Tuples built under promotion may hold runtime
                        // types the static field type does not pin down:
                        // projections stay boxed.
                        let dst = self.alloc(Class::V)?;
                        self.instrs.push(Instr::Field { a: r.idx, idx: *i, dst: dst.idx });
                        Ok(Out::Reg(dst, field_ty))
                    }
                }
            }
            Expr::Tuple(items) => {
                let mut parts = Vec::with_capacity(items.len());
                let mut types = Vec::with_capacity(items.len());
                for it in items {
                    let o = self.emit(it)?;
                    types.push(o.ty());
                    parts.push(match o {
                        Out::Reg(r, _) => Some(r),
                        Out::Null => None,
                    });
                }
                let dst = self.alloc(Class::V)?;
                self.instrs
                    .push(Instr::MakeTuple { parts: parts.into_boxed_slice(), dst: dst.idx });
                Ok(Out::Reg(dst, DataType::Tuple(types)))
            }
            Expr::At { obj, offset } => {
                let ty = (self.objs)(*obj)?;
                let spec = PointSpec { obj: *obj, offset: *offset };
                let slot =
                    self.program.points.iter().position(|p| *p == spec).ok_or_else(|| {
                        CompileError::Invalid("typed tier missing point slot".into())
                    })?;
                if let Some(r) = self.point_regs[slot] {
                    return Ok(Out::Reg(r, ty));
                }
                let r = self.alloc(self.obj_class(*obj, &ty))?;
                self.point_regs[slot] = Some(r);
                Ok(Out::Reg(r, ty))
            }
            Expr::Reduce { op, window } => {
                let slot = self.next_reduce;
                if slot >= self.program.reduces.len()
                    || self.program.reduces[slot].obj != window.obj
                    || (self.program.reduces[slot].lo, self.program.reduces[slot].hi)
                        != (window.lo, window.hi)
                {
                    return Err(CompileError::Invalid("typed tier reduce slot mismatch".into()));
                }
                self.next_reduce += 1;
                let src_ty = (self.objs)(window.obj)?;
                let src_class = self.obj_class(window.obj, &src_ty);
                let (elem_class, elem_ty) = match &window.map {
                    None => (src_class, src_ty),
                    Some((var, mapped)) => {
                        let (map, elem) = self.compile_map(*var, mapped, src_class, src_ty)?;
                        self.typed_maps[slot] = Some(map);
                        match elem {
                            // The map is provably φ for every element: the
                            // window never fills and the result is φ.
                            None => return Ok(Out::Null),
                            Some(ct) => ct,
                        }
                    }
                };
                if matches!(elem_class, Class::F | Class::I) {
                    self.reduce_elem[slot] = Some(elem_class);
                }
                let result_ty = op.result_type(&elem_ty);
                let class = match op {
                    ReduceOp::Count => Class::I,
                    ReduceOp::Mean | ReduceOp::StdDev => Class::F,
                    // Custom reducers run opaque user closures: stay boxed.
                    ReduceOp::Custom(_) => Class::V,
                    ReduceOp::Min | ReduceOp::Max => elem_class,
                    ReduceOp::Sum | ReduceOp::Product => match elem_class {
                        Class::F => Class::F,
                        Class::I => Class::I,
                        _ => Class::V,
                    },
                };
                let r = self.alloc(class)?;
                self.reduce_regs[slot] = Some(r);
                Ok(Out::Reg(r, result_ty))
            }
        }
    }

    /// Compiles a fused window map into a side instruction sequence sharing
    /// this program's registers. Returns the map and the element's
    /// `(class, type)` after mapping (`None` when provably φ).
    #[allow(clippy::type_complexity)]
    fn compile_map(
        &mut self,
        var: VarId,
        body: &Expr,
        src_class: Class,
        src_ty: DataType,
    ) -> Result<(TypedMap, Option<(Class, DataType)>)> {
        let var_reg = self.alloc(src_class)?;
        let shadowed = self.env.insert(var, (Some(var_reg), src_ty));
        let outer = std::mem::take(&mut self.instrs);
        let rooted = self.emit(body);
        let instrs = std::mem::replace(&mut self.instrs, outer);
        match shadowed {
            Some(prev) => {
                self.env.insert(var, prev);
            }
            None => {
                self.env.remove(&var);
            }
        }
        let root = rooted?;
        let (root_reg, elem) = match root {
            Out::Reg(r, ty) => (Some(r), Some((r.class, ty))),
            Out::Null => (None, None),
        };
        Ok((TypedMap { var: var_reg, instrs, root: root_reg }, elem))
    }

    fn emit_unary(&mut self, op: UnOp, ao: Out) -> Result<Out> {
        // `is_null` is the one operator that observes φ rather than
        // propagating it.
        if let UnOp::IsNull = op {
            let dst = self.alloc(Class::B)?;
            match &ao {
                Out::Null => self.instrs.push(Instr::ConstB { dst: dst.idx, v: true }),
                Out::Reg(r, _) => self.instrs.push(Instr::IsNull { a: *r, dst: dst.idx }),
            }
            return Ok(Out::Reg(dst, DataType::Bool));
        }
        let Out::Reg(r, ty) = ao else { return Ok(Out::Null) };
        let result_ty = unary_type(op, &ty)?;
        // Dynamic operand: apply the Value op; sqrt / casts still land in
        // typed registers because their dynamic results are single-class.
        if r.class == Class::V {
            let dst_class = match op {
                UnOp::Sqrt | UnOp::ToFloat => Class::F,
                UnOp::ToInt => Class::I,
                UnOp::Not => Class::B,
                UnOp::Neg | UnOp::Abs => Class::V,
                UnOp::IsNull => unreachable!("handled above"),
            };
            let dst = self.alloc(dst_class)?;
            self.instrs.push(Instr::UnV { op, a: r.idx, dst });
            return Ok(Out::Reg(dst, result_ty));
        }
        let out = match (op, r.class) {
            (UnOp::Neg, Class::F) => {
                let dst = self.alloc(Class::F)?;
                self.instrs.push(Instr::NegF { a: r.idx, dst: dst.idx });
                dst
            }
            (UnOp::Neg, Class::I) => {
                let dst = self.alloc(Class::I)?;
                self.instrs.push(Instr::NegI { a: r.idx, dst: dst.idx });
                dst
            }
            (UnOp::Abs, Class::F) => {
                let dst = self.alloc(Class::F)?;
                self.instrs.push(Instr::AbsF { a: r.idx, dst: dst.idx });
                dst
            }
            (UnOp::Abs, Class::I) => {
                let dst = self.alloc(Class::I)?;
                self.instrs.push(Instr::AbsI { a: r.idx, dst: dst.idx });
                dst
            }
            (UnOp::Sqrt, Class::F | Class::I) => {
                let a = self.promote_f(r)?;
                let dst = self.alloc(Class::F)?;
                self.instrs.push(Instr::SqrtF { a: a.idx, dst: dst.idx });
                dst
            }
            (UnOp::Not, Class::B) => {
                let dst = self.alloc(Class::B)?;
                self.instrs.push(Instr::NotB { a: r.idx, dst: dst.idx });
                dst
            }
            (UnOp::ToFloat, Class::F) => r,
            (UnOp::ToFloat, Class::I) => self.promote_f(r)?,
            (UnOp::ToInt, Class::I) => r,
            (UnOp::ToInt, Class::F) => {
                let dst = self.alloc(Class::I)?;
                self.instrs.push(Instr::F2I { a: r.idx, dst: dst.idx });
                dst
            }
            _ => {
                return Err(CompileError::Invalid(format!(
                    "typed tier cannot apply {op} to class {:?}",
                    r.class
                )))
            }
        };
        Ok(Out::Reg(out, result_ty))
    }

    fn emit_binary(&mut self, op: BinOp, ao: Out, bo: Out) -> Result<Out> {
        let result_ty = binary_type(op, &ao.ty(), &bo.ty())?;
        // Kleene connectives observe φ; everything else propagates it.
        if op.is_logical() {
            let a = self.logical_operand(&ao)?;
            let b = self.logical_operand(&bo)?;
            // `φ ∧ φ` / `φ ∨ φ` are φ — but one φ operand must stay live:
            // `false ∧ φ = false` and `true ∨ φ = true`.
            let (a, b) = match (a, b) {
                (Some(a), Some(b)) => (a, b),
                (None, None) => return Ok(Out::Null),
                (Some(a), None) => (a, self.null_reg(Class::B)?),
                (None, Some(b)) => (self.null_reg(Class::B)?, b),
            };
            let dst = self.alloc(Class::B)?;
            let instr = match op {
                BinOp::And => Instr::AndB { a: a.idx, b: b.idx, dst: dst.idx },
                _ => Instr::OrB { a: a.idx, b: b.idx, dst: dst.idx },
            };
            self.instrs.push(instr);
            return Ok(Out::Reg(dst, DataType::Bool));
        }
        let (Out::Reg(ar, _), Out::Reg(br, _)) = (&ao, &bo) else { return Ok(Out::Null) };
        let (ar, br) = (*ar, *br);

        if let Some(cmp) = CmpOp::of(op) {
            let dst = self.alloc(Class::B)?;
            match (ar.class, br.class) {
                (Class::I, Class::I) => {
                    // Embedded-constant comparison (flipping when the
                    // constant sits on the left).
                    if let Some(c) = self.const_i.get(&br.idx).copied() {
                        self.instrs.push(Instr::CmpIC { op: cmp, a: ar.idx, c, dst: dst.idx });
                    } else if let Some(c) = self.const_i.get(&ar.idx).copied() {
                        self.instrs.push(Instr::CmpIC {
                            op: cmp.flip(),
                            a: br.idx,
                            c,
                            dst: dst.idx,
                        });
                    } else {
                        self.instrs.push(Instr::CmpI {
                            op: cmp,
                            a: ar.idx,
                            b: br.idx,
                            dst: dst.idx,
                        })
                    }
                }
                (Class::B, Class::B) => {
                    self.instrs.push(Instr::CmpB { op: cmp, a: ar.idx, b: br.idx, dst: dst.idx })
                }
                (Class::F | Class::I, Class::F | Class::I) => {
                    // Float or mixed numeric: constants (including int
                    // constants on a float comparison) embed pre-promoted.
                    if let Some(c) = self.as_const_f(br) {
                        let a = self.promote_f(ar)?;
                        self.instrs.push(Instr::CmpFC { op: cmp, a: a.idx, c, dst: dst.idx });
                    } else if let Some(c) = self.as_const_f(ar) {
                        let b = self.promote_f(br)?;
                        self.instrs.push(Instr::CmpFC {
                            op: cmp.flip(),
                            a: b.idx,
                            c,
                            dst: dst.idx,
                        });
                    } else {
                        let a = self.promote_f(ar)?;
                        let b = self.promote_f(br)?;
                        self.instrs.push(Instr::CmpF { op: cmp, a: a.idx, b: b.idx, dst: dst.idx })
                    }
                }
                _ => self.instrs.push(Instr::BinV { op, a: ar, b: br, dst }),
            }
            return Ok(Out::Reg(dst, DataType::Bool));
        }
        if matches!(op, BinOp::Eq | BinOp::Ne) {
            let neg = op == BinOp::Ne;
            let dst = self.alloc(Class::B)?;
            match (ar.class, br.class) {
                (Class::F, Class::F) => {
                    self.instrs.push(Instr::EqF { neg, a: ar.idx, b: br.idx, dst: dst.idx })
                }
                (Class::I, Class::I) => {
                    self.instrs.push(Instr::EqI { neg, a: ar.idx, b: br.idx, dst: dst.idx })
                }
                (Class::B, Class::B) => {
                    self.instrs.push(Instr::EqB { neg, a: ar.idx, b: br.idx, dst: dst.idx })
                }
                // Mixed int/float equality and dynamic operands follow the
                // exact Value::same semantics through the boxed op.
                _ => self.instrs.push(Instr::BinV { op, a: ar, b: br, dst }),
            }
            return Ok(Out::Reg(dst, DataType::Bool));
        }
        let arith = ArithOp::of(op)
            .ok_or_else(|| CompileError::Invalid(format!("typed tier unknown operator {op}")))?;
        match (ar.class, br.class) {
            (Class::I, Class::I) => {
                let dst = self.alloc(Class::I)?;
                if let Some(c) = self.const_i.get(&br.idx).copied() {
                    self.instrs.push(Instr::ArithIC {
                        op: arith,
                        a: ar.idx,
                        c,
                        dst: dst.idx,
                        rev: false,
                    });
                } else if let Some(c) = self.const_i.get(&ar.idx).copied() {
                    self.instrs.push(Instr::ArithIC {
                        op: arith,
                        a: br.idx,
                        c,
                        dst: dst.idx,
                        rev: true,
                    });
                } else {
                    self.instrs.push(Instr::ArithI {
                        op: arith,
                        a: ar.idx,
                        b: br.idx,
                        dst: dst.idx,
                    });
                }
                Ok(Out::Reg(dst, result_ty))
            }
            (Class::F | Class::I, Class::F | Class::I) => {
                // Peephole: `x * y + rhs` fuses into one dispatch when the
                // multiply's value is consumed only here (left operand
                // order is preserved, so NaN payloads match the
                // interpreter bit-for-bit).
                if op == BinOp::Add && ar.class == Class::F && br.class == Class::F {
                    if let Some(dst) = self.try_mul_add(ar, br)? {
                        return Ok(Out::Reg(dst, result_ty));
                    }
                }
                // Float or mixed numeric arithmetic; constant operands
                // (int constants pre-promoted) embed in the instruction.
                let dst = self.alloc(Class::F)?;
                if let Some(c) = self.as_const_f(br) {
                    let a = self.promote_f(ar)?;
                    self.instrs.push(Instr::ArithFC {
                        op: arith,
                        a: a.idx,
                        c,
                        dst: dst.idx,
                        rev: false,
                    });
                } else if let Some(c) = self.as_const_f(ar) {
                    let b = self.promote_f(br)?;
                    self.instrs.push(Instr::ArithFC {
                        op: arith,
                        a: b.idx,
                        c,
                        dst: dst.idx,
                        rev: true,
                    });
                } else {
                    let a = self.promote_f(ar)?;
                    let b = self.promote_f(br)?;
                    self.instrs.push(Instr::ArithF { op: arith, a: a.idx, b: b.idx, dst: dst.idx });
                }
                Ok(Out::Reg(dst, result_ty))
            }
            _ => {
                // A dynamic operand keeps the result dynamic: int/int stays
                // int, anything else promotes — only the boxed op knows.
                let dst = self.alloc(Class::V)?;
                self.instrs.push(Instr::BinV { op, a: ar, b: br, dst });
                Ok(Out::Reg(dst, result_ty))
            }
        }
    }

    /// Fuses `mul + rhs` into a `MulAddF`/`MulAddFC` when the immediately
    /// preceding instruction is the multiply producing the *left* operand
    /// and nothing else can read its register (not let-bound). Returns the
    /// fused destination, or `None` when the pattern does not apply.
    fn try_mul_add(&mut self, ar: Reg, br: Reg) -> Result<Option<Reg>> {
        let Some(Instr::ArithF { op: ArithOp::Mul, a: x, b: y, dst }) = self.instrs.last() else {
            return Ok(None);
        };
        let (x, y, mul_dst) = (*x, *y, *dst);
        if mul_dst != ar.idx || br.idx == mul_dst || self.env.values().any(|(r, _)| *r == Some(ar))
        {
            return Ok(None);
        }
        self.instrs.pop();
        let out = self.alloc(Class::F)?;
        match self.const_f.get(&br.idx).copied() {
            Some(c) => self.instrs.push(Instr::MulAddFC { x, y, c, dst: out.idx }),
            None => self.instrs.push(Instr::MulAddF { x, y, z: br.idx, dst: out.idx }),
        }
        Ok(Some(out))
    }

    /// Materializes a Kleene-connective operand as a `B` register (`None`
    /// when the operand is provably φ on both sides — caller folds).
    fn logical_operand(&mut self, o: &Out) -> Result<Option<Reg>> {
        match o {
            Out::Reg(r, _) if r.class == Class::B => Ok(Some(*r)),
            Out::Reg(r, _) if r.class == Class::V => {
                // Dynamic bools (e.g. read from a fallback kernel's buffer)
                // unbox into the B file; non-bool payloads read as φ, which
                // is exactly `Value::as_bool`'s contract in Value::and/or.
                let dst = self.alloc(Class::B)?;
                self.instrs.push(Instr::UnV { op: UnOp::Not, a: r.idx, dst });
                let flipped = self.alloc(Class::B)?;
                self.instrs.push(Instr::NotB { a: dst.idx, dst: flipped.idx });
                Ok(Some(flipped))
            }
            Out::Reg(..) => {
                Err(CompileError::Invalid("typed tier non-bool logical operand".into()))
            }
            Out::Null => Ok(None),
        }
    }

    fn emit_if(&mut self, c: &Expr, t: &Expr, f: &Expr) -> Result<Out> {
        let co = self.emit(c)?;
        // A φ condition yields φ without evaluating either branch — the
        // interpreter's laziness, preserved.
        let Out::Reg(cr, _) = co else { return Ok(Out::Null) };
        // Compile each branch into a side buffer: branches that need no
        // instructions of their own (registers, constants, φ) collapse to
        // one `Select`; everything else splices into a jump scaffold.
        let outer = std::mem::take(&mut self.instrs);
        let to = self.emit(t);
        let t_code = std::mem::take(&mut self.instrs);
        let fo = self.emit(f);
        let f_code = std::mem::replace(&mut self.instrs, outer);
        let (to, fo) = (to?, fo?);

        // Destination class: equal classes pass through; mixed classes box,
        // because the taken branch's unpromoted value is observable.
        let (dst, result) = match (&to, &fo) {
            (Out::Null, Out::Null) => {
                // Both branches are φ; the cond still runs (it was already
                // emitted) but the result is φ. A throwaway register keeps
                // the control-flow skeleton patchable.
                (self.alloc(Class::B)?, Out::Null)
            }
            (Out::Reg(r, ty), Out::Null) | (Out::Null, Out::Reg(r, ty)) => {
                let dst = self.alloc(r.class)?;
                (dst, Out::Reg(dst, ty.clone()))
            }
            (Out::Reg(ra, ta), Out::Reg(rb, tb)) => {
                let ty = ta.unify(tb).or_else(|| ta.promote(tb)).ok_or_else(|| {
                    CompileError::Type(format!("if branches disagree: {ta} vs {tb}"))
                })?;
                let class = if ra.class == rb.class { ra.class } else { Class::V };
                let dst = self.alloc(class)?;
                (dst, Out::Reg(dst, ty))
            }
        };

        // Empty branch bodies always collapse to one `Select`. Under
        // `speculate` (the batched tier), branches of safe code — no
        // trapping integer ops, no control flow, no boxed traffic — are
        // evaluated on *both* paths and merged the same way: semantically
        // invisible (a typed non-trapping op has no effect beyond its own
        // destination register), but the body stays straight-line, which
        // the batch gate requires.
        let empty = t_code.is_empty() && f_code.is_empty();
        let spec = self.speculate
            && dst.class != Class::V
            && speculatable(&t_code)
            && speculatable(&f_code);
        if cr.class == Class::B && (empty || spec) {
            let as_src = |o: &Out| match o {
                Out::Reg(r, _) => Some(*r),
                Out::Null => None,
            };
            self.splice(t_code);
            self.splice(f_code);
            self.instrs.push(Instr::Select { cond: cr.idx, t: as_src(&to), f: as_src(&fo), dst });
            return Ok(result);
        }

        // When a branch's value is produced by its own last instruction,
        // rewrite that instruction to target the `if` destination directly
        // and skip the tail `Mov` (the branch then jumps straight to the
        // end).
        let mut t_code = t_code;
        let mut f_code = f_code;
        let t_assigned = branch_retargets(&mut t_code, &to, dst);
        let f_assigned = branch_retargets(&mut f_code, &fo, dst);

        let branch_at = self.reserve();
        self.splice(t_code);
        let j_then = self.reserve();
        let else_at = self.instrs.len();
        self.splice(f_code);
        let j_else = self.reserve();
        let then_mov = self.instrs.len();
        if !t_assigned {
            self.emit_assign(&to, dst)?;
        }
        let j1 = self.reserve();
        let else_mov = self.instrs.len();
        if !f_assigned {
            self.emit_assign(&fo, dst)?;
        }
        let j2 = self.reserve();
        let null_at = self.instrs.len();
        self.instrs.push(Instr::Null { dst });
        let end = self.instrs.len();

        let (else_at, null_at) = (else_at as u32, null_at as u32);
        self.instrs[branch_at] = match cr.class {
            Class::B => Instr::Branch { cond: cr.idx, on_false: else_at, on_null: null_at },
            Class::V => Instr::BranchV { cond: cr.idx, on_false: else_at, on_null: null_at },
            _ => return Err(CompileError::Invalid("typed tier non-bool if condition".into())),
        };
        self.instrs[j_then] =
            Instr::Jump { target: if t_assigned { end } else { then_mov } as u32 };
        self.instrs[j_else] =
            Instr::Jump { target: if f_assigned { end } else { else_mov } as u32 };
        self.instrs[j1] = Instr::Jump { target: end as u32 };
        self.instrs[j2] = Instr::Jump { target: end as u32 };
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::program::compile;

    fn typed(body: &Expr, obj_ty: DataType) -> (Program, TypedProgram) {
        let program = compile(body).unwrap();
        let objs = move |_: TObjId| Ok(obj_ty.clone());
        let classes = HashMap::new();
        let tp = compile_typed(body, &program, &objs, &classes, false).unwrap();
        (program, tp)
    }

    /// Runs both tiers over the same point-slot inputs and compares.
    fn both(body: &Expr, obj_ty: DataType, points: &[Value]) -> (Value, Value) {
        let (program, tp) = typed(body, obj_ty);
        let mut ictx = program.new_ctx();
        let mut tctx = tp.new_ctx();
        for (i, v) in points.iter().enumerate() {
            ictx.points[i] = v.clone();
            if let Some(r) = tp.point_regs[i] {
                tctx.load_value(r, v);
            }
        }
        (program.run(&mut ictx), tp.run(&mut tctx))
    }

    fn obj(i: u32) -> TObjId {
        TObjId(i)
    }

    #[test]
    fn numeric_filter_map_is_fully_typed_and_identical() {
        // (p0 * 2 + 1 > 10) ? p0 : φ
        let e = Expr::if_else(
            Expr::at(obj(0)).mul(Expr::c(2.0)).add(Expr::c(1.0)).gt(Expr::c(10.0)),
            Expr::at(obj(0)),
            Expr::null(),
        );
        let (_, tp) = typed(&e, DataType::Float);
        assert!(tp.is_fully_typed());
        for v in [Value::Float(7.5), Value::Float(1.0), Value::Null] {
            let (a, b) = both(&e, DataType::Float, std::slice::from_ref(&v));
            assert!(a.same(&b), "input {v:?}: interp {a:?} vs typed {b:?}");
        }
        // And the fully-typed run performs zero fallback operations.
        let (_, tp) = typed(&e, DataType::Float);
        let mut ctx = tp.new_ctx();
        tp.run(&mut ctx);
        assert_eq!(ctx.fallback_ops, 0);
    }

    #[test]
    fn kleene_and_null_propagation_match_interpreter() {
        // (p0 > 0 && p1 > 0) || is_null(p0), with p0: float and p1: int.
        let e = Expr::at(obj(0))
            .gt(Expr::c(0.0))
            .and(Expr::at(obj(1)).gt(Expr::c(0i64)))
            .or(Expr::at(obj(0)).is_null());
        let program = compile(&e).unwrap();
        let objs = |o: TObjId| Ok(if o == obj(0) { DataType::Float } else { DataType::Int });
        let tp = compile_typed(&e, &program, &objs, &HashMap::new(), false).unwrap();
        assert!(tp.is_fully_typed());
        let cases = [
            [Value::Float(1.0), Value::Int(1)],
            [Value::Float(1.0), Value::Null],
            [Value::Null, Value::Int(-1)],
            [Value::Null, Value::Null],
            [Value::Float(-1.0), Value::Null],
        ];
        for points in &cases {
            let mut ictx = program.new_ctx();
            let mut tctx = tp.new_ctx();
            for (i, v) in points.iter().enumerate() {
                ictx.points[i] = v.clone();
                if let Some(r) = tp.point_regs[i] {
                    tctx.load_value(r, v);
                }
            }
            let a = program.run(&mut ictx);
            let b = tp.run(&mut tctx);
            assert!(a.same(&b), "points {points:?}: interp {a:?} vs typed {b:?}");
        }
    }

    #[test]
    fn mixed_branch_if_stays_boxed_for_identity() {
        // if p0 > 0 then 1 (int) else 2.5 (float): the taken branch's
        // dynamic type is observable; the typed tier must preserve it.
        let e = Expr::if_else(Expr::at(obj(0)).gt(Expr::c(0.0)), Expr::c(1i64), Expr::c(2.5));
        let (a, b) = both(&e, DataType::Float, &[Value::Float(5.0)]);
        assert!(a.same(&Value::Int(1)));
        assert!(a.same(&b));
        let (a, b) = both(&e, DataType::Float, &[Value::Float(-5.0)]);
        assert!(a.same(&Value::Float(2.5)));
        assert!(a.same(&b));
    }

    #[test]
    fn str_and_tuple_fall_back_but_agree() {
        // {p0, p0 == "hot"} — string equality + tuple construction.
        let e = Expr::Tuple(vec![Expr::at(obj(0)), Expr::at(obj(0)).eq(Expr::c("hot"))]);
        let (_, tp) = typed(&e, DataType::Str);
        assert!(!tp.is_fully_typed());
        for v in [Value::str("hot"), Value::str("cold"), Value::Null] {
            let (a, b) = both(&e, DataType::Str, std::slice::from_ref(&v));
            assert!(a.same(&b), "input {v:?}: interp {a:?} vs typed {b:?}");
        }
        // Fallback executions are visible in the counter.
        let (_, tp) = typed(&e, DataType::Str);
        let mut ctx = tp.new_ctx();
        tp.run(&mut ctx);
        assert!(ctx.fallback_ops > 0);
    }

    #[test]
    fn field_projection_and_int_division_semantics() {
        // p0.1 / 2 over {float, int}: integer division, φ on zero divisor.
        let tuple_ty = DataType::Tuple(vec![DataType::Float, DataType::Int]);
        let e = Expr::at(obj(0)).get(1).div(Expr::c(2i64));
        let v = Value::tuple([Value::Float(0.5), Value::Int(7)]);
        let (a, b) = both(&e, tuple_ty.clone(), &[v]);
        assert!(a.same(&Value::Int(3)));
        assert!(a.same(&b));
        let e0 = Expr::at(obj(0)).get(1).div(Expr::c(0i64));
        let v = Value::tuple([Value::Float(0.5), Value::Int(7)]);
        let (a, b) = both(&e0, tuple_ty, &[v]);
        assert!(a.same(&Value::Null));
        assert!(a.same(&b));
    }

    #[test]
    fn let_bindings_and_time_share_registers() {
        let v = VarId::from_raw(0);
        let e = Expr::Let {
            var: v,
            value: Box::new(Expr::at(obj(0)).mul(Expr::c(3.0))),
            body: Box::new(
                Expr::Var(v).add(Expr::Var(v)).add(Expr::Time.bin(BinOp::Mul, Expr::c(0i64))),
            ),
        };
        let (a, b) = both(&e, DataType::Float, &[Value::Float(2.0)]);
        assert!(a.same(&Value::Float(12.0)));
        assert!(a.same(&b), "interp {a:?} vs typed {b:?}");
    }

    #[test]
    fn bitwise_float_equality_matches_value_same() {
        // NaN == NaN is true under snapshot identity; -0.0 == 0.0 is false.
        let e = Expr::at(obj(0)).eq(Expr::at_off(obj(0), -1));
        let (program, _) = typed(&e, DataType::Float);
        assert_eq!(program.points.len(), 2);
        for (x, y) in [(f64::NAN, f64::NAN), (-0.0, 0.0), (1.5, 1.5), (1.5, 2.5)] {
            let (a, b) = both(&e, DataType::Float, &[Value::Float(x), Value::Float(y)]);
            assert!(a.same(&b), "({x}, {y}): interp {a:?} vs typed {b:?}");
        }
    }
}

#[cfg(test)]
mod bench_probe {
    use super::*;
    use crate::codegen::program::compile;

    #[test]
    #[ignore]
    fn probe_eval_speed() {
        // ~45-node numeric body, mirroring kernel_hot's pointwise plan.
        let x = Expr::at(TObjId(0));
        let scaled = x.clone().mul(Expr::c(1.0001)).add(Expr::c(0.5));
        let wrapped = Expr::if_else(
            scaled.clone().gt(Expr::c(1.5)),
            scaled.clone().sub(Expr::c(1.5)),
            scaled,
        );
        let poly = wrapped
            .clone()
            .mul(wrapped.clone())
            .mul(Expr::c(0.5))
            .add(wrapped.clone().mul(Expr::c(0.25)))
            .add(Expr::c(0.125));
        let energy = poly.abs().add(Expr::c(1.0)).sqrt();
        let clamped = energy
            .clone()
            .sub(Expr::c(0.3))
            .mul(Expr::c(2.5))
            .bin(BinOp::Max, Expr::c(-1.0))
            .bin(BinOp::Min, Expr::c(1.0));
        let cubic = clamped
            .clone()
            .mul(clamped.clone())
            .mul(clamped.clone())
            .add(clamped.mul(Expr::c(0.5)))
            .sub(Expr::c(0.25));
        let body = Expr::if_else(
            cubic.clone().gt(Expr::c(-0.9)).and(cubic.clone().lt(Expr::c(0.9))),
            cubic.mul(Expr::c(4.0)).add(energy.mul(Expr::c(0.1))),
            Expr::null(),
        );
        eprintln!("body size: {}", body.size());
        let program = compile(&body).unwrap();
        let objs = |_: TObjId| Ok(DataType::Float);
        let tp = compile_typed(&body, &program, &objs, &HashMap::new(), false).unwrap();
        let n = 3_000_000u64;

        let mut ictx = program.new_ctx();
        let t0 = std::time::Instant::now();
        let mut acc = 0u64;
        for i in 0..n {
            ictx.points[0] = Value::Float((i % 97) as f64 * 0.01);
            if !matches!(program.run(&mut ictx), Value::Null) {
                acc += 1;
            }
        }
        let interp = t0.elapsed();
        let mut tctx = tp.new_ctx();
        let t0 = std::time::Instant::now();
        let mut acc2 = 0u64;
        for i in 0..n {
            tctx.load_value(tp.point_regs[0].unwrap(), &Value::Float((i % 97) as f64 * 0.01));
            if !matches!(tp.run(&mut tctx), Value::Null) {
                acc2 += 1;
            }
        }
        let typed = t0.elapsed();
        assert_eq!(acc, acc2);
        eprintln!(
            "interp {:.1}ns/eval  typed {:.1}ns/eval  speedup {:.2}x",
            interp.as_nanos() as f64 / n as f64,
            typed.as_nanos() as f64 / n as f64,
            interp.as_nanos() as f64 / typed.as_nanos() as f64
        );
    }
}

#[cfg(test)]
mod size_probe {
    use super::*;

    #[test]
    #[ignore]
    fn instr_size() {
        eprintln!("size_of Instr = {}", std::mem::size_of::<Instr>());
        eprintln!("size_of Value = {}", std::mem::size_of::<Value>());
        eprintln!("size_of Reg = {}", std::mem::size_of::<Reg>());
    }
}
