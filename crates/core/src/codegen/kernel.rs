//! Loop synthesis: one kernel per temporal expression (paper §6.1.3).
//!
//! A [`Kernel`] is the executable form of a temporal expression. Its `run`
//! method is the synthesized loop of Fig. 3d: starting from the (symbolic)
//! domain start, it repeatedly advances the clock to the next time any
//! referenced access can change value — input change points shifted by
//! access offsets, window enter/evict crossings for reductions — evaluates
//! the compiled expression once, and appends one snapshot to the output
//! buffer. Ticks at which no input changes are never visited.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use tilt_data::{SnapshotBuf, SsCursor, Time, TimeRange, Value};
use tilt_obs::Profiler;

use super::batch::{batchable, BatchCtx, MAX_BATCH};
use super::compiled::{compile_typed, type_lookup, Class, TypedCtx, TypedMap, TypedProgram};
use super::program::{compile, EvalCtx, PointSpec, Program};
use super::reduce::{typed_fold_class, typed_result_class, ReduceRunner};
use crate::error::Result;
use crate::ir::typeck::TypeInfo;
use crate::ir::{TObjId, TempExpr};

/// A compiled temporal expression: the unit of execution.
#[derive(Debug)]
pub struct Kernel {
    /// The temporal object this kernel materializes.
    pub out: TObjId,
    /// Human-readable name (the object's name in the source query).
    pub name: String,
    /// Output time-domain precision.
    pub precision: i64,
    /// Sampled (every tick) vs event-driven loop synthesis.
    pub sample: bool,
    /// Whether the body reads the clock (`Expr::Time`) outside reduce maps;
    /// such kernels can change value at every grid tick and therefore also
    /// step densely.
    pub uses_time: bool,
    /// The interpreted expression body (always present: the reference tier
    /// and the slot-layout authority).
    pub program: Program,
    /// The typed register-bytecode body, when the compiled tier lowered
    /// this kernel (see [`super::lower_typed`]).
    pub(crate) typed: Option<TypedProgram>,
    /// Per reduce slot: `(fold class, result class)` when the unboxed
    /// map→accumulator path applies — the typed map's output feeds the
    /// monomorphized accumulator directly, no `Value` round trip. Empty
    /// until typed lowering.
    reduce_modes: Vec<Option<(Class, Class)>>,
    /// Whether this kernel drives the batched tier: requested by the
    /// compiler *and* admitted by the batch gate (see `super::batch`).
    batched: bool,
    /// True when the compiled tier was requested but this body could not
    /// be lowered: every interpreted run then counts as one fallback op.
    interp_fallback: bool,
    /// Enum-touching (fallback) operations executed by the typed tier,
    /// accumulated across runs.
    pub(crate) fallback: AtomicU64,
    /// Fused window-map executions, accumulated across runs — the
    /// observable for the map-once-per-element invariant (Subtract-on-
    /// Evict must not re-run maps; see `super::reduce`).
    map_runs: AtomicU64,
    /// Whether [`Kernel::run_into`] reads the clock around each call.
    /// Off by default: the disabled cost is this one relaxed load.
    timed: AtomicBool,
    /// Timed invocations of this kernel (counted only while profiling).
    invocations: AtomicU64,
    /// Wall nanoseconds spent inside timed invocations.
    nanos: AtomicU64,
}

impl Kernel {
    /// Compiles a temporal expression into an interpreter-tier kernel.
    pub fn new(te: &TempExpr, name: &str) -> Result<Kernel> {
        let mut uses_time = false;
        te.body.walk(&mut |e| {
            if matches!(e, crate::ir::Expr::Time) {
                uses_time = true;
            }
        });
        Ok(Kernel {
            out: te.output,
            name: name.to_string(),
            precision: te.dom.precision,
            sample: te.sample,
            uses_time,
            program: compile(&te.body)?,
            typed: None,
            reduce_modes: Vec::new(),
            batched: false,
            interp_fallback: false,
            fallback: AtomicU64::new(0),
            map_runs: AtomicU64::new(0),
            timed: AtomicBool::new(false),
            invocations: AtomicU64::new(0),
            nanos: AtomicU64::new(0),
        })
    }

    /// Compiles a temporal expression with the interpreter body plus the
    /// typed register bytecode, using `types` for static types and
    /// `classes` for upstream objects' register classes. A body the typed
    /// compiler cannot lower stays interpreter-only — callers observe
    /// that through [`Kernel::is_compiled`]. With `batched` set, bodies
    /// admitted by the batch gate execute over runs of ticks.
    pub(crate) fn with_types(
        te: &TempExpr,
        name: &str,
        types: &TypeInfo,
        classes: &HashMap<TObjId, Class>,
        batched: bool,
    ) -> Result<Kernel> {
        let mut kernel = Kernel::new(te, name)?;
        let objs = type_lookup(types);
        kernel.typed = compile_typed(&te.body, &kernel.program, &objs, classes, batched).ok();
        kernel.interp_fallback = kernel.typed.is_none();
        if let Some(tp) = &kernel.typed {
            kernel.reduce_modes = kernel
                .program
                .reduces
                .iter()
                .zip(&tp.reduce_elem)
                .map(|(rs, elem)| {
                    typed_fold_class(&rs.op, *elem).zip(typed_result_class(&rs.op, *elem))
                })
                .collect();
            kernel.batched = batched && batchable(tp, &kernel.reduce_modes);
        }
        Ok(kernel)
    }

    /// Whether this kernel executes its typed body on the batched tier.
    pub fn is_batched(&self) -> bool {
        self.batched
    }

    /// Whether the typed (compiled) tier is present.
    pub fn is_compiled(&self) -> bool {
        self.typed.is_some()
    }

    /// Whether the typed tier exists and never touches the dynamic enum.
    pub fn is_fully_typed(&self) -> bool {
        self.typed.as_ref().is_some_and(TypedProgram::is_fully_typed)
    }

    /// Enum-touching operations the typed tier executed so far (0 for a
    /// fully typed kernel; every run counts for interpreter-only kernels
    /// living in a compiled query, since their whole body is a fallback).
    pub fn fallback_ops(&self) -> u64 {
        self.fallback.load(Ordering::Relaxed)
    }

    /// Fused window-map executions by the typed tiers so far. The map-once
    /// invariant bounds this by the number of elements ever *accumulated*
    /// into this kernel's windows — eviction must re-use cached mapped
    /// values, never re-run the map.
    pub fn map_runs(&self) -> u64 {
        self.map_runs.load(Ordering::Relaxed)
    }

    /// The register class of this kernel's output values (what downstream
    /// kernels assume when reading its buffer).
    pub(crate) fn output_class(&self) -> Class {
        self.typed.as_ref().map_or(Class::V, TypedProgram::output_class)
    }

    /// The objects this kernel reads, in slot order (points then reduces).
    pub fn dependencies(&self) -> Vec<TObjId> {
        let mut deps: Vec<TObjId> = self
            .program
            .points
            .iter()
            .map(|p| p.obj)
            .chain(self.program.reduces.iter().map(|r| r.obj))
            .collect();
        deps.sort();
        deps.dedup();
        deps
    }

    /// Executes the kernel over `(range.start, range.end]`.
    ///
    /// `bufs` is indexed by [`TObjId::index`]; every dependency must be
    /// present (times outside a buffer's coverage read as φ, which is how
    /// partition lookback edges degrade gracefully).
    ///
    /// # Panics
    ///
    /// Panics if a dependency buffer is missing.
    pub fn run(
        &self,
        bufs: &[Option<&SnapshotBuf<Value>>],
        range: TimeRange,
    ) -> SnapshotBuf<Value> {
        let mut out = SnapshotBuf::new(range.start);
        self.run_into(bufs, range, &mut out);
        out
    }

    /// Like [`Kernel::run`], but writes into `out` (reset to `range.start`
    /// first), reusing its span allocation. Hot emission paths recycle
    /// output buffers through a [`tilt_data::BufPool`] this way instead of
    /// reallocating one per kernel per advance.
    ///
    /// Dispatches to the typed (compiled) tier when it was lowered, the
    /// interpreter otherwise; both tiers share one loop skeleton, so
    /// stepping and output shape are identical.
    pub fn run_into(
        &self,
        bufs: &[Option<&SnapshotBuf<Value>>],
        range: TimeRange,
        out: &mut SnapshotBuf<Value>,
    ) {
        if Profiler::enabled(self) {
            let start = std::time::Instant::now();
            self.dispatch(bufs, range, out);
            Profiler::record(self, start.elapsed().as_nanos() as u64);
        } else {
            self.dispatch(bufs, range, out);
        }
    }

    fn dispatch(
        &self,
        bufs: &[Option<&SnapshotBuf<Value>>],
        range: TimeRange,
        out: &mut SnapshotBuf<Value>,
    ) {
        match &self.typed {
            Some(tp) if self.batched => self.run_batched(tp, bufs, range, out),
            Some(tp) => self.run_typed(tp, bufs, range, out),
            None => self.run_interp(bufs, range, out),
        }
    }

    /// Turns per-invocation wall timing on (or off). Profiling is
    /// per-kernel state shared by every clone of the owning
    /// `CompiledQuery`'s `Arc`, so enabling it on a live service takes
    /// effect on the next invocation.
    pub fn set_profiling(&self, on: bool) {
        self.timed.store(on, Ordering::Relaxed);
    }

    /// A frozen view of this kernel's profile counters.
    pub fn profile(&self) -> KernelProfile {
        KernelProfile {
            name: self.name.clone(),
            compiled: self.is_compiled(),
            batched: self.is_batched(),
            fully_typed: self.is_fully_typed(),
            invocations: self.invocations.load(Ordering::Relaxed),
            nanos: self.nanos.load(Ordering::Relaxed),
            fallback_ops: self.fallback_ops(),
            map_runs: self.map_runs(),
        }
    }

    /// The interpreted tier: per-tick closure-tree evaluation over
    /// [`Value`] slots.
    fn run_interp(
        &self,
        bufs: &[Option<&SnapshotBuf<Value>>],
        range: TimeRange,
        out: &mut SnapshotBuf<Value>,
    ) {
        if self.interp_fallback {
            self.fallback.fetch_add(1, Ordering::Relaxed);
        }
        let mut ctx = self.program.new_ctx();
        let program = &self.program;
        self.drive(bufs, range, out, &[], &mut |points, reduces, g| {
            eval_at(program, &mut ctx, points, reduces, g)
        });
    }

    /// The compiled tier: per-tick register-bytecode evaluation. Point
    /// accesses load through the typed [`SsCursor`] fast paths (no enum
    /// clones for `F`/`I`/`B` slots), reduce results unbox straight into
    /// their registers, and fused maps run as typed bytecode.
    fn run_typed(
        &self,
        tp: &TypedProgram,
        bufs: &[Option<&SnapshotBuf<Value>>],
        range: TimeRange,
        out: &mut SnapshotBuf<Value>,
    ) {
        let mut ctx = tp.new_ctx();
        let modes = &self.reduce_modes;
        self.drive(bufs, range, out, &tp.reduce_elem, &mut |points, reduces, g| {
            ctx.t = g.ticks();
            for (i, runner) in reduces.iter_mut().enumerate() {
                let reg = tp.reduce_regs[i];
                // Unboxed fold path: the typed map's `f64`/`i64` output
                // feeds the monomorphized accumulator directly and the
                // result lands in its register without a `Value` round
                // trip — `fallback_ops` stays 0 for numeric plans.
                if let Some((fold, res)) = modes[i] {
                    if reg.is_none_or(|r| r.class == res) {
                        slide_typed(runner, &mut ctx, &tp.typed_maps[i], fold, g);
                        if let Some(reg) = reg {
                            match res {
                                Class::F => ctx.store_f64(reg, runner.result_f()),
                                Class::I => ctx.store_i64(reg, runner.result_i()),
                                _ => unreachable!("typed result class is F or I"),
                            }
                        }
                        continue;
                    }
                }
                let v = match &tp.typed_maps[i] {
                    None => runner.eval_at_with(g, &mut |elem: &Value| elem.clone()),
                    Some(map) => {
                        let mut apply = |elem: &Value| map.run(&mut ctx, elem);
                        runner.eval_at_with(g, &mut apply)
                    }
                };
                if let Some(reg) = reg {
                    if reg.class == Class::V {
                        // Boxed reduce results (custom reducers, dynamic
                        // elements) are fallback traffic.
                        ctx.fallback_ops += 1;
                    }
                    ctx.store_value(reg, v);
                }
            }
            for (i, runner) in points.iter_mut().enumerate() {
                let t = g + runner.spec.offset;
                match tp.point_regs[i] {
                    Some(reg) => match reg.class {
                        Class::F => {
                            let (v, b) = runner.cursor.value_f64_and_boundary(t);
                            ctx.store_f64(reg, v);
                            runner.boundary = b;
                        }
                        Class::I => {
                            let (v, b) = runner.cursor.value_i64_and_boundary(t);
                            ctx.store_i64(reg, v);
                            runner.boundary = b;
                        }
                        Class::B => {
                            let (v, b) = runner.cursor.value_bool_and_boundary(t);
                            ctx.store_bool(reg, v);
                            runner.boundary = b;
                        }
                        Class::V => {
                            let (v, b) = runner.cursor.value_ref_and_boundary(t);
                            match v {
                                Some(v) => ctx.load_value(reg, v),
                                None => ctx.store_value(reg, Value::Null),
                            }
                            runner.boundary = b;
                        }
                    },
                    // The value is never read, but the cursor must still
                    // advance: `next_tick` steps on span boundaries.
                    None => {
                        let (_, b) = runner.cursor.value_ref_and_boundary(t);
                        runner.boundary = b;
                    }
                }
            }
            tp.run(&mut ctx)
        });
        if ctx.fallback_ops > 0 {
            self.fallback.fetch_add(ctx.fallback_ops, Ordering::Relaxed);
        }
        if ctx.map_runs > 0 {
            self.map_runs.fetch_add(ctx.map_runs, Ordering::Relaxed);
        }
    }

    /// The batched tier: the same change-point stepping as [`Kernel::drive`],
    /// but lanes accumulate while stepping stays dense (`next == g + p`) and
    /// the typed body then executes **once per run** over columnar registers
    /// (see [`super::batch`]) — one instruction dispatch per run instead of
    /// per tick, φ checks one branch per 64 lanes. Reduce slides and point
    /// cursor reads stay per-lane: they are already O(1) per tick through
    /// [`SsCursor`] (constant-span stretches never re-search the buffer) and
    /// they carry the per-lane change-point state `next_tick` steps on, so
    /// stepping — and therefore output — is byte-identical to the scalar
    /// tiers.
    fn run_batched(
        &self,
        tp: &TypedProgram,
        bufs: &[Option<&SnapshotBuf<Value>>],
        range: TimeRange,
        out: &mut SnapshotBuf<Value>,
    ) {
        let p = self.precision;
        out.reset(range.start);
        if range.is_empty() {
            return;
        }
        let g_first = Time::new(range.start.ticks() + 1).align_up(p);
        let g_last = range.end.align_down(p);
        if g_first > g_last {
            out.push_raw(range.end, Value::Null);
            return;
        }

        let buf_for = |obj: TObjId| -> &SnapshotBuf<Value> {
            bufs.get(obj.index())
                .and_then(|b| *b)
                .unwrap_or_else(|| panic!("kernel {}: missing buffer for {obj}", self.name))
        };
        let mut points: Vec<PointRunner<'_>> = self
            .program
            .points
            .iter()
            .map(|ps| PointRunner {
                cursor: SsCursor::new(buf_for(ps.obj)),
                spec: *ps,
                boundary: None,
            })
            .collect();
        let mut reduces: Vec<ReduceRunner<'_>> = self
            .program
            .reduces
            .iter()
            .enumerate()
            .map(|(i, rs)| {
                let class = tp.reduce_elem.get(i).copied().flatten();
                ReduceRunner::with_elem_class(rs, buf_for(rs.obj), class)
            })
            .collect();

        // The scalar file holds prelude constants and hosts typed map
        // execution; columns are broadcast from it once per drive.
        let mut ctx = tp.new_ctx();
        let mut bc = BatchCtx::new(tp);
        bc.broadcast(&ctx, tp);

        let mut g = g_first;
        loop {
            let span_cap = (((g_last.ticks() - g.ticks()) / p) as usize + 1).min(MAX_BATCH);
            let mut k = 0usize;
            // The grid tick after this run; `None` once stepping passed
            // `g_last` (the drive is over after this batch).
            let mut succ: Option<Time> = None;
            let mut stop = false;
            while k < span_cap {
                let gk = g + (k as i64) * p;
                ctx.t = gk.ticks();
                for (i, runner) in reduces.iter_mut().enumerate() {
                    match self.reduce_modes[i] {
                        Some((fold, _)) => {
                            slide_typed(runner, &mut ctx, &tp.typed_maps[i], fold, gk)
                        }
                        // Result provably φ (no register): the window still
                        // slides dynamically so `next_tick` sees its state.
                        None => {
                            let _ = match &tp.typed_maps[i] {
                                None => runner.eval_at_with(gk, &mut |e: &Value| e.clone()),
                                Some(map) => {
                                    let mut apply = |e: &Value| map.run(&mut ctx, e);
                                    runner.eval_at_with(gk, &mut apply)
                                }
                            };
                        }
                    }
                    if let Some(reg) = tp.reduce_regs[i] {
                        match reg.class {
                            Class::F => bc.store_f_lane(reg, k, runner.result_f()),
                            Class::I => bc.store_i_lane(reg, k, runner.result_i()),
                            _ => unreachable!("batch gate admits only typed reduce registers"),
                        }
                    }
                }
                for (i, runner) in points.iter_mut().enumerate() {
                    let t = gk + runner.spec.offset;
                    match tp.point_regs[i] {
                        Some(reg) => match reg.class {
                            Class::F => {
                                let (v, b) = runner.cursor.value_f64_and_boundary(t);
                                bc.store_f_lane(reg, k, v);
                                runner.boundary = b;
                            }
                            Class::I => {
                                let (v, b) = runner.cursor.value_i64_and_boundary(t);
                                bc.store_i_lane(reg, k, v);
                                runner.boundary = b;
                            }
                            Class::B => {
                                let (v, b) = runner.cursor.value_bool_and_boundary(t);
                                bc.store_b_lane(reg, k, v);
                                runner.boundary = b;
                            }
                            Class::V => {
                                unreachable!("batch gate admits only typed point registers")
                            }
                        },
                        None => {
                            let (_, b) = runner.cursor.value_ref_and_boundary(t);
                            runner.boundary = b;
                        }
                    }
                }
                k += 1;
                match self.next_tick(gk, g_last, &points, &reduces) {
                    Some(ng) if ng.ticks() == gk.ticks() + p => {
                        // Dense: extend the run (or hand the successor to
                        // the next batch when this one is full).
                        if k == span_cap {
                            succ = Some(ng);
                        }
                    }
                    Some(ng) => {
                        succ = Some(ng);
                        break;
                    }
                    None => {
                        stop = true;
                        break;
                    }
                }
            }
            bc.exec(&tp.instrs, g.ticks(), p, k);
            for j in 0..k {
                let v = match tp.root {
                    Some(r) => bc.read_lane(r, j),
                    None => Value::Null,
                };
                // Interior lanes are dense, so each value holds exactly at
                // its own tick; the last lane holds until the successor
                // (or `g_last`), same spans the scalar skeleton pushes.
                let end = if j + 1 < k {
                    g + (j as i64) * p
                } else if stop {
                    g_last
                } else {
                    succ.expect("a non-final batch has a successor tick") - p
                };
                out.push_raw(end, v);
            }
            if stop {
                break;
            }
            g = succ.expect("a non-final batch has a successor tick");
        }
        if g_last < range.end {
            out.push_raw(range.end, Value::Null);
        }
        if ctx.fallback_ops > 0 {
            self.fallback.fetch_add(ctx.fallback_ops, Ordering::Relaxed);
        }
        if ctx.map_runs > 0 {
            self.map_runs.fetch_add(ctx.map_runs, Ordering::Relaxed);
        }
    }

    /// The shared loop skeleton of both tiers: change-point-driven stepping
    /// over the grid, one `eval_tick` call per visited tick.
    #[allow(clippy::type_complexity)]
    fn drive(
        &self,
        bufs: &[Option<&SnapshotBuf<Value>>],
        range: TimeRange,
        out: &mut SnapshotBuf<Value>,
        reduce_classes: &[Option<Class>],
        eval_tick: &mut dyn FnMut(&mut [PointRunner<'_>], &mut [ReduceRunner<'_>], Time) -> Value,
    ) {
        let p = self.precision;
        out.reset(range.start);
        if range.is_empty() {
            return;
        }
        let g_first = Time::new(range.start.ticks() + 1).align_up(p);
        let g_last = range.end.align_down(p);
        if g_first > g_last {
            out.push_raw(range.end, Value::Null);
            return;
        }

        let buf_for = |obj: TObjId| -> &SnapshotBuf<Value> {
            bufs.get(obj.index())
                .and_then(|b| *b)
                .unwrap_or_else(|| panic!("kernel {}: missing buffer for {obj}", self.name))
        };
        let mut points: Vec<PointRunner<'_>> = self
            .program
            .points
            .iter()
            .map(|ps| PointRunner {
                cursor: SsCursor::new(buf_for(ps.obj)),
                spec: *ps,
                boundary: None,
            })
            .collect();
        let mut reduces: Vec<ReduceRunner<'_>> = self
            .program
            .reduces
            .iter()
            .enumerate()
            .map(|(i, rs)| {
                let class = reduce_classes.get(i).copied().flatten();
                ReduceRunner::with_elem_class(rs, buf_for(rs.obj), class)
            })
            .collect();

        let mut g = g_first;
        loop {
            let v = eval_tick(&mut points, &mut reduces, g);
            match self.next_tick(g, g_last, &points, &reduces) {
                Some(ng) => {
                    // `v` holds for every tick in [g, ng − p].
                    out.push_raw(ng - p, v);
                    g = ng;
                }
                None => {
                    out.push_raw(g_last, v);
                    break;
                }
            }
        }
        if g_last < range.end {
            out.push_raw(range.end, Value::Null);
        }
    }

    /// The next grid tick (≤ `g_last`) at which any access may change value.
    fn next_tick(
        &self,
        g: Time,
        g_last: Time,
        points: &[PointRunner<'_>],
        reduces: &[ReduceRunner<'_>],
    ) -> Option<Time> {
        let p = self.precision;
        if self.sample || self.uses_time {
            let ng = g + p;
            return if ng <= g_last { Some(ng) } else { None };
        }
        let mut best: Option<Time> = None;
        let mut consider = |t: Time| {
            best = Some(match best {
                Some(b) => b.min(t),
                None => t,
            });
        };
        for runner in points {
            // The value read at source time `g + offset` lasts until the end
            // of its span (cached by `eval_at`); the new value becomes
            // visible one tick later.
            if let Some(b) = runner.boundary {
                consider(Time::new(b.ticks() + 1 - runner.spec.offset));
            }
        }
        for runner in reduces {
            if runner.has_content() {
                // A non-empty reduction defines one snapshot per grid tick:
                // downstream consumers count window outputs per stride
                // (event identity), so equal-valued consecutive ticks must
                // not be skipped. φ gaps (below) still are.
                consider(g + p);
            } else if let Some(t) = runner.next_enter_time() {
                consider(t);
            }
        }
        let mut ng = if p == 1 { best? } else { best?.align_up(p) };
        if ng <= g {
            ng = g + p;
        }
        if ng <= g_last {
            Some(ng)
        } else {
            None
        }
    }
}

impl Profiler for Kernel {
    fn enabled(&self) -> bool {
        self.timed.load(Ordering::Relaxed)
    }

    fn record(&self, nanos: u64) {
        self.invocations.fetch_add(1, Ordering::Relaxed);
        self.nanos.fetch_add(nanos, Ordering::Relaxed);
    }
}

/// A frozen per-kernel profile: what `kernel_hot --json` and the service
/// exposition report per kernel instead of the old aggregate-only
/// fallback count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KernelProfile {
    /// The kernel's human-readable name (its object's query name).
    pub name: String,
    /// Whether the typed (compiled) tier was lowered.
    pub compiled: bool,
    /// Whether the typed body executes batched (runs of ticks per
    /// dispatch).
    pub batched: bool,
    /// Whether the typed tier never touches the dynamic enum.
    pub fully_typed: bool,
    /// Timed invocations (0 unless profiling was enabled).
    pub invocations: u64,
    /// Total wall nanoseconds across timed invocations.
    pub nanos: u64,
    /// Enum-touching fallback operations (counted even when untimed).
    pub fallback_ops: u64,
    /// Fused window-map executions (counted even when untimed); bounded by
    /// elements accumulated — the map-once-per-element invariant.
    pub map_runs: u64,
}

impl KernelProfile {
    /// Mean wall nanoseconds per timed invocation (0.0 when untimed).
    pub fn ns_per_invocation(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.nanos as f64 / self.invocations as f64
        }
    }

    /// Fallback operations per timed invocation (0.0 when untimed).
    pub fn fallback_rate(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.fallback_ops as f64 / self.invocations as f64
        }
    }
}

/// One point access during kernel execution: a cursor plus the cached end of
/// the span last read (the access's next possible change point).
struct PointRunner<'a> {
    cursor: SsCursor<'a, Value>,
    spec: PointSpec,
    boundary: Option<Time>,
}

/// Slides a reduce runner through the unboxed fold path: the fused window
/// map (or a typed identity read) feeds `f64`/`i64` straight into the
/// monomorphized accumulator — no `Value` boxing per element. `fold` is the
/// statically proven fold class; callers only reach here when
/// [`typed_fold_class`] returned it.
fn slide_typed(
    runner: &mut ReduceRunner<'_>,
    ctx: &mut TypedCtx,
    map: &Option<TypedMap>,
    fold: Class,
    g: Time,
) {
    match (fold, map) {
        (Class::F, Some(map)) => runner.slide_f(g, &mut |e: &Value| map.run_f64(ctx, e)),
        (Class::F, None) => runner.slide_f(g, &mut |e: &Value| e.as_f64()),
        (Class::I, Some(map)) => runner.slide_i(g, &mut |e: &Value| map.run_i64(ctx, e)),
        (Class::I, None) => runner.slide_i(g, &mut |e: &Value| e.as_i64()),
        _ => unreachable!("typed fold classes are F and I"),
    }
}

/// Evaluates the program at grid tick `g`: reduces first (their fused maps
/// use variable slots), then point accesses, then the compiled body.
fn eval_at(
    program: &Program,
    ctx: &mut EvalCtx,
    points: &mut [PointRunner<'_>],
    reduces: &mut [ReduceRunner<'_>],
    g: Time,
) -> Value {
    ctx.t = g.ticks();
    for (i, runner) in reduces.iter_mut().enumerate() {
        let v = runner.eval_at(g, ctx);
        ctx.reduces[i] = v;
    }
    for (i, runner) in points.iter_mut().enumerate() {
        let (v, b) = runner.cursor.value_and_boundary(g + runner.spec.offset);
        ctx.points[i] = v;
        runner.boundary = b;
    }
    program.run(ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{DataType, Expr, Query, ReduceOp, TDom};
    use tilt_data::Event;

    fn float_events(points: &[(i64, f64)]) -> Vec<Event<Value>> {
        points.iter().map(|&(t, v)| Event::point(Time::new(t), Value::Float(v))).collect()
    }

    fn run_single(
        body: Expr,
        dom: TDom,
        sample: bool,
        events: &[(i64, f64)],
        range: (i64, i64),
    ) -> SnapshotBuf<Value> {
        let mut b = Query::builder();
        let input = b.input("in", DataType::Float);
        // Tests write the input as TObjId(0), which is exactly what the
        // builder assigned: no rewrite needed.
        let _ = input;
        let out = if sample {
            b.temporal_sampled("out", dom, body)
        } else {
            b.temporal("out", dom, body)
        };
        let q = b.finish(out).unwrap();
        let te = q.exprs()[0].clone();
        let kernel = Kernel::new(&te, "out").unwrap();
        let range = TimeRange::new(Time::new(range.0), Time::new(range.1));
        let buf = SnapshotBuf::from_events(&float_events(events), range);
        let bufs = [Some(&buf), None];
        kernel.run(&bufs, range)
    }

    #[test]
    fn select_maps_every_event() {
        let body = Expr::at(TObjId(0)).add(Expr::c(1.0));
        let out =
            run_single(body, TDom::every_tick(), false, &[(1, 10.0), (2, 11.0), (3, 12.0)], (0, 4));
        let events = out.to_events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].payload, Value::Float(11.0));
        assert_eq!(events[2].payload, Value::Float(13.0));
        assert_eq!(out.value_at(Time::new(4)), Value::Null);
    }

    #[test]
    fn where_filters_via_phi() {
        let body =
            Expr::if_else(Expr::at(TObjId(0)).gt(Expr::c(10.5)), Expr::at(TObjId(0)), Expr::null());
        let out =
            run_single(body, TDom::every_tick(), false, &[(1, 10.0), (2, 11.0), (3, 12.0)], (0, 3));
        let events = out.to_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].payload, Value::Float(11.0));
    }

    #[test]
    fn window_sum_with_stride_matches_hand_computation() {
        // Events valued 1..=12 at ticks 1..=12; Window(10, 5): at t=5 sum(1..=5)=15,
        // t=10 sum(1..=10)=55, t=15 windows (5,15]: sum(6..=12)=63.
        let events: Vec<(i64, f64)> = (1..=12).map(|t| (t, t as f64)).collect();
        let body = Expr::reduce_window(ReduceOp::Sum, TObjId(0), 10);
        let out = run_single(body, TDom::unbounded(5), false, &events, (0, 15));
        assert_eq!(out.value_at(Time::new(5)), Value::Float(15.0));
        assert_eq!(out.value_at(Time::new(10)), Value::Float(55.0));
        assert_eq!(out.value_at(Time::new(15)), Value::Float(63.0));
        // Precision 5: value at non-grid t equals value at the next grid tick.
        assert_eq!(out.value_at(Time::new(7)), Value::Float(55.0));
    }

    #[test]
    fn event_driven_loop_skips_idle_gaps() {
        // Two bursts separated by a huge gap; the kernel output must stay
        // small (no per-tick φ spans inside the gap).
        let mut events = vec![(1, 1.0), (2, 2.0)];
        events.push((1_000_000, 3.0));
        let body = Expr::reduce_window(ReduceOp::Sum, TObjId(0), 10);
        let out = run_single(body, TDom::every_tick(), false, &events, (0, 1_000_010));
        assert!(out.len() < 32, "expected sparse output, got {} spans", out.len());
        assert_eq!(out.value_at(Time::new(2)), Value::Float(3.0));
        assert_eq!(out.value_at(Time::new(500_000)), Value::Null);
        assert_eq!(out.value_at(Time::new(1_000_000)), Value::Float(3.0));
        assert_eq!(out.value_at(Time::new(1_000_009)), Value::Float(3.0));
        assert_eq!(out.value_at(Time::new(1_000_010)), Value::Null);
    }

    #[test]
    fn shift_reads_the_past() {
        let body = Expr::at_off(TObjId(0), -2);
        let out = run_single(body, TDom::every_tick(), false, &[(1, 5.0)], (0, 5));
        assert_eq!(out.value_at(Time::new(3)), Value::Float(5.0));
        assert_eq!(out.value_at(Time::new(1)), Value::Null);
        assert_eq!(out.value_at(Time::new(4)), Value::Null);
    }

    #[test]
    fn sampled_kernel_emits_every_tick() {
        // Chop semantics: one long event resampled at precision 2.
        let mut b = Query::builder();
        let input = b.input("in", DataType::Float);
        let out = b.temporal_sampled("chop", TDom::unbounded(2), Expr::at(input));
        let q = b.finish(out).unwrap();
        let kernel = Kernel::new(&q.exprs()[0], "chop").unwrap();
        let range = TimeRange::new(Time::new(0), Time::new(10));
        let events = vec![Event::new(Time::new(0), Time::new(10), Value::Float(7.0))];
        let buf = SnapshotBuf::from_events(&events, range);
        let out = kernel.run(&[Some(&buf), None], range);
        // 5 snapshots of value 7.0, one per 2-tick step.
        assert_eq!(out.len(), 5);
        assert!(out.spans().iter().all(|s| s.value == Value::Float(7.0)));
    }

    #[test]
    fn join_shape_intersects_intervals() {
        // ~join[t] = (a[t] != φ && b[t] != φ) ? a[t] + b[t] : φ over two inputs.
        let mut b = Query::builder();
        let a_in = b.input("a", DataType::Float);
        let b_in = b.input("b", DataType::Float);
        let body = Expr::if_else(
            Expr::at(a_in).is_present().and(Expr::at(b_in).is_present()),
            Expr::at(a_in).add(Expr::at(b_in)),
            Expr::null(),
        );
        let out = b.temporal("join", TDom::every_tick(), body);
        let q = b.finish(out).unwrap();
        let kernel = Kernel::new(&q.exprs()[0], "join").unwrap();
        let range = TimeRange::new(Time::new(0), Time::new(20));
        let buf_a = SnapshotBuf::from_events(
            &[Event::new(Time::new(0), Time::new(10), Value::Float(1.0))],
            range,
        );
        let buf_b = SnapshotBuf::from_events(
            &[Event::new(Time::new(5), Time::new(15), Value::Float(2.0))],
            range,
        );
        let out = kernel.run(&[Some(&buf_a), Some(&buf_b), None], range);
        let events = out.to_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].interval(), TimeRange::new(Time::new(5), Time::new(10)));
        assert_eq!(events[0].payload, Value::Float(3.0));
    }

    #[test]
    fn empty_range_and_no_grid_ticks() {
        let body = Expr::at(TObjId(0));
        let out = run_single(body, TDom::unbounded(100), false, &[(1, 1.0)], (0, 50));
        // No grid tick inside (0, 50] for precision 100: all φ.
        assert_eq!(out.to_events().len(), 0);
        assert_eq!(out.range(), TimeRange::new(Time::new(0), Time::new(50)));
    }

    #[test]
    fn dependencies_listed_once() {
        let body = Expr::at(TObjId(0)).add(Expr::reduce_window(ReduceOp::Sum, TObjId(0), 5));
        let mut b = Query::builder();
        let _ = b.input("in", DataType::Float);
        let out = b.temporal("out", TDom::every_tick(), body);
        let q = b.finish(out).unwrap();
        let kernel = Kernel::new(&q.exprs()[0], "out").unwrap();
        assert_eq!(kernel.dependencies(), vec![TObjId(0)]);
    }
}
