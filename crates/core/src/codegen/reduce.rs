//! Incremental window-reduction state (paper §6.1.2).
//!
//! Each [`ReduceSpec`] in a kernel gets a [`ReduceRunner`] that maintains the
//! reduction over a sliding window `(t+lo, t+hi]` as `t` advances
//! monotonically. A snapshot (span) of the source object is folded *once*
//! while it overlaps the window — eq. 3 of the paper reduces the values the
//! object assumes, one per snapshot.
//!
//! Strategy per operation:
//!
//! * Sum / Count / Mean / StdDev / Product — invertible accumulators with
//!   Subtract-on-Evict \[16\];
//! * Min / Max — monotonic deques with expiry-based eviction (O(1) amortized,
//!   no inverse needed);
//! * Custom with `deacc` — Subtract-on-Evict through the user's template;
//! * Custom without `deacc` — full window recomputation per evaluation.
//!
//! Mapped windows fold the *mapped* value, and eviction must subtract the
//! same value that entered. The runner caches each span's fold outcome
//! ([`Folded`]) at accumulate time, so Subtract-on-Evict pops the cache
//! instead of re-executing the fused map — each element is mapped exactly
//! once over its lifetime in the window.

use std::collections::VecDeque;
use std::sync::Arc;

use tilt_data::{Payload, SnapshotBuf, Time, Value};

use super::compiled::Class;
use super::program::{EvalCtx, MapFn, ReduceSpec};
use crate::ir::{CustomReduce, ReduceOp};

/// The accumulator of one reduction.
///
/// The dynamic variants fold boxed [`Value`]s; the `*F`/`*I` variants are
/// the typed tier's unboxed counterparts, selected when the window's
/// element class is statically `f64`/`i64` ([`ReduceRunner::with_elem_class`]).
/// Each typed variant replays the exact operation sequence of its dynamic
/// twin (including int-wrapping and promotion order), so results are
/// bit-identical.
#[derive(Clone, Debug)]
enum State {
    Sum { acc: Value },
    SumF { acc: f64 },
    SumI { acc: i64 },
    Product { acc: Value, zeros: i64 },
    ProductF { acc: f64, zeros: i64 },
    ProductI { acc: i64, zeros: i64 },
    Count,
    Mean { sum: Value },
    MeanF { sum: f64 },
    MeanI { sum: i64 },
    StdDev { sum: f64, sumsq: f64 },
    MinMax { deque: VecDeque<(Value, Time)>, is_max: bool },
    MinMaxF { deque: VecDeque<(f64, Time)>, is_max: bool },
    MinMaxI { deque: VecDeque<(i64, Time)>, is_max: bool },
    Custom { state: Value, spec: Arc<CustomReduce> },
}

impl State {
    fn with_class(op: &ReduceOp, class: Option<Class>) -> State {
        match (op, class) {
            (ReduceOp::Sum, Some(Class::F)) => State::SumF { acc: 0.0 },
            (ReduceOp::Sum, Some(Class::I)) => State::SumI { acc: 0 },
            (ReduceOp::Sum, _) => State::Sum { acc: Value::Int(0) },
            (ReduceOp::Product, Some(Class::F)) => State::ProductF { acc: 1.0, zeros: 0 },
            (ReduceOp::Product, Some(Class::I)) => State::ProductI { acc: 1, zeros: 0 },
            (ReduceOp::Product, _) => State::Product { acc: Value::Int(1), zeros: 0 },
            (ReduceOp::Count, _) => State::Count,
            (ReduceOp::Mean, Some(Class::F)) => State::MeanF { sum: 0.0 },
            (ReduceOp::Mean, Some(Class::I)) => State::MeanI { sum: 0 },
            (ReduceOp::Mean, _) => State::Mean { sum: Value::Int(0) },
            (ReduceOp::StdDev, _) => State::StdDev { sum: 0.0, sumsq: 0.0 },
            (ReduceOp::Min, Some(Class::F)) => {
                State::MinMaxF { deque: VecDeque::new(), is_max: false }
            }
            (ReduceOp::Max, Some(Class::F)) => {
                State::MinMaxF { deque: VecDeque::new(), is_max: true }
            }
            (ReduceOp::Min, Some(Class::I)) => {
                State::MinMaxI { deque: VecDeque::new(), is_max: false }
            }
            (ReduceOp::Max, Some(Class::I)) => {
                State::MinMaxI { deque: VecDeque::new(), is_max: true }
            }
            (ReduceOp::Min, _) => State::MinMax { deque: VecDeque::new(), is_max: false },
            (ReduceOp::Max, _) => State::MinMax { deque: VecDeque::new(), is_max: true },
            (ReduceOp::Custom(c), _) => State::Custom { state: c.init.clone(), spec: c.clone() },
        }
    }

    /// Whether eviction is supported incrementally (otherwise the runner
    /// recomputes the window from scratch at each evaluation).
    fn invertible(&self) -> bool {
        match self {
            State::Custom { spec, .. } => spec.deacc.is_some(),
            _ => true,
        }
    }

    /// Folds one snapshot value in. `expire` is the snapshot's end time,
    /// used by deque-based states for eviction.
    fn add(&mut self, v: &Value, expire: Time) {
        match self {
            State::Sum { acc } | State::Mean { sum: acc } => *acc = acc.add(v),
            // Typed accumulators replay the dynamic promotion exactly: the
            // first `Int(0) + Float(x)` already computed in f64.
            State::SumF { acc } | State::MeanF { sum: acc } => {
                if let Some(x) = v.as_f64() {
                    *acc += x;
                }
            }
            State::SumI { acc } | State::MeanI { sum: acc } => {
                if let Some(x) = v.as_i64() {
                    *acc = acc.wrapping_add(x);
                }
            }
            State::Product { acc, zeros } => {
                if v.as_f64() == Some(0.0) || v.as_i64() == Some(0) {
                    *zeros += 1;
                } else {
                    *acc = acc.mul(v);
                }
            }
            State::ProductF { acc, zeros } => {
                if let Some(x) = v.as_f64() {
                    if x == 0.0 {
                        *zeros += 1;
                    } else {
                        *acc *= x;
                    }
                }
            }
            State::ProductI { acc, zeros } => {
                if let Some(x) = v.as_i64() {
                    if x == 0 {
                        *zeros += 1;
                    } else {
                        *acc = acc.wrapping_mul(x);
                    }
                }
            }
            State::Count => {}
            State::StdDev { sum, sumsq } => {
                let x = v.as_f64().unwrap_or(0.0);
                *sum += x;
                *sumsq += x * x;
            }
            State::MinMax { deque, is_max } => {
                let keep = |cand: &Value, v: &Value, is_max: bool| {
                    // Pop candidates dominated by the new value.
                    let cmp = if is_max { cand.le(v) } else { cand.ge(v) };
                    matches!(cmp, Value::Bool(true))
                };
                while let Some((cand, _)) = deque.back() {
                    if keep(cand, v, *is_max) {
                        deque.pop_back();
                    } else {
                        break;
                    }
                }
                deque.push_back((v.clone(), expire));
            }
            State::MinMaxF { deque, is_max } => {
                if let Some(x) = v.as_f64() {
                    while let Some((cand, _)) = deque.back() {
                        if if *is_max { *cand <= x } else { *cand >= x } {
                            deque.pop_back();
                        } else {
                            break;
                        }
                    }
                    deque.push_back((x, expire));
                }
            }
            State::MinMaxI { deque, is_max } => {
                if let Some(x) = v.as_i64() {
                    while let Some((cand, _)) = deque.back() {
                        if if *is_max { *cand <= x } else { *cand >= x } {
                            deque.pop_back();
                        } else {
                            break;
                        }
                    }
                    deque.push_back((x, expire));
                }
            }
            State::Custom { state, spec } => *state = (spec.acc)(state, v, 1),
        }
    }

    /// Unboxed `f64` fold — the typed tier's counterpart of [`State::add`]
    /// for element class `F`. Only reachable for states
    /// [`typed_fold_class`] maps to `Some(Class::F)`.
    #[inline]
    fn add_f(&mut self, x: f64, expire: Time) {
        match self {
            State::SumF { acc } | State::MeanF { sum: acc } => *acc += x,
            State::ProductF { acc, zeros } => {
                if x == 0.0 {
                    *zeros += 1;
                } else {
                    *acc *= x;
                }
            }
            State::StdDev { sum, sumsq } => {
                *sum += x;
                *sumsq += x * x;
            }
            State::MinMaxF { deque, is_max } => {
                while let Some((cand, _)) = deque.back() {
                    if if *is_max { *cand <= x } else { *cand >= x } {
                        deque.pop_back();
                    } else {
                        break;
                    }
                }
                deque.push_back((x, expire));
            }
            State::Count => {}
            _ => unreachable!("add_f on a non-f64 accumulator"),
        }
    }

    /// Unboxed `i64` fold for element class `I`. `StdDev` accumulates in
    /// `f64` exactly like the dynamic path's `as_f64` coercion.
    #[inline]
    fn add_i(&mut self, x: i64, expire: Time) {
        match self {
            State::SumI { acc } | State::MeanI { sum: acc } => *acc = acc.wrapping_add(x),
            State::ProductI { acc, zeros } => {
                if x == 0 {
                    *zeros += 1;
                } else {
                    *acc = acc.wrapping_mul(x);
                }
            }
            State::StdDev { sum, sumsq } => {
                let x = x as f64;
                *sum += x;
                *sumsq += x * x;
            }
            State::MinMaxI { deque, is_max } => {
                while let Some((cand, _)) = deque.back() {
                    if if *is_max { *cand <= x } else { *cand >= x } {
                        deque.pop_back();
                    } else {
                        break;
                    }
                }
                deque.push_back((x, expire));
            }
            State::Count => {}
            _ => unreachable!("add_i on a non-i64 accumulator"),
        }
    }

    /// Removes one snapshot value (Subtract-on-Evict path).
    fn remove(&mut self, v: &Value) {
        match self {
            State::Sum { acc } | State::Mean { sum: acc } => *acc = acc.sub(v),
            State::SumF { acc } | State::MeanF { sum: acc } => {
                if let Some(x) = v.as_f64() {
                    *acc -= x;
                }
            }
            State::SumI { acc } | State::MeanI { sum: acc } => {
                if let Some(x) = v.as_i64() {
                    *acc = acc.wrapping_sub(x);
                }
            }
            State::Product { acc, zeros } => {
                if v.as_f64() == Some(0.0) || v.as_i64() == Some(0) {
                    *zeros -= 1;
                } else {
                    *acc = acc.div(v);
                }
            }
            State::ProductF { acc, zeros } => {
                if let Some(x) = v.as_f64() {
                    if x == 0.0 {
                        *zeros -= 1;
                    } else {
                        *acc /= x;
                    }
                }
            }
            State::ProductI { acc, zeros } => {
                if let Some(x) = v.as_i64() {
                    if x == 0 {
                        *zeros -= 1;
                    } else {
                        *acc /= x;
                    }
                }
            }
            State::Count => {}
            State::StdDev { sum, sumsq } => {
                let x = v.as_f64().unwrap_or(0.0);
                *sum -= x;
                *sumsq -= x * x;
            }
            State::MinMax { .. } | State::MinMaxF { .. } | State::MinMaxI { .. } => {
                unreachable!("deque states evict by expiry")
            }
            State::Custom { state, spec } => {
                let deacc = spec.deacc.as_ref().expect("checked by invertible()");
                *state = (deacc)(state, v, 1);
            }
        }
    }

    /// Unboxed inverse of [`State::add_f`].
    #[inline]
    fn remove_f(&mut self, x: f64) {
        match self {
            State::SumF { acc } | State::MeanF { sum: acc } => *acc -= x,
            State::ProductF { acc, zeros } => {
                if x == 0.0 {
                    *zeros -= 1;
                } else {
                    *acc /= x;
                }
            }
            State::StdDev { sum, sumsq } => {
                *sum -= x;
                *sumsq -= x * x;
            }
            State::Count => {}
            _ => unreachable!("remove_f on a non-f64 accumulator"),
        }
    }

    /// Unboxed inverse of [`State::add_i`].
    #[inline]
    fn remove_i(&mut self, x: i64) {
        match self {
            State::SumI { acc } | State::MeanI { sum: acc } => *acc = acc.wrapping_sub(x),
            State::ProductI { acc, zeros } => {
                if x == 0 {
                    *zeros -= 1;
                } else {
                    *acc /= x;
                }
            }
            State::StdDev { sum, sumsq } => {
                let x = x as f64;
                *sum -= x;
                *sumsq -= x * x;
            }
            State::Count => {}
            _ => unreachable!("remove_i on a non-i64 accumulator"),
        }
    }

    /// Whether this accumulator evicts by expiry (monotonic deques) rather
    /// than subtraction.
    fn is_deque(&self) -> bool {
        matches!(self, State::MinMax { .. } | State::MinMaxF { .. } | State::MinMaxI { .. })
    }

    /// Expiry-based eviction for deque states: drops entries whose snapshot
    /// no longer overlaps a window starting (exclusively) at `new_lo`.
    fn evict_expired(&mut self, new_lo: Time) {
        fn drop_expired<T>(deque: &mut VecDeque<(T, Time)>, new_lo: Time) {
            while let Some((_, expire)) = deque.front() {
                if *expire <= new_lo {
                    deque.pop_front();
                } else {
                    break;
                }
            }
        }
        match self {
            State::MinMax { deque, .. } => drop_expired(deque, new_lo),
            State::MinMaxF { deque, .. } => drop_expired(deque, new_lo),
            State::MinMaxI { deque, .. } => drop_expired(deque, new_lo),
            _ => {}
        }
    }

    /// The reduction result given the number of folded snapshots.
    fn result(&self, count: i64) -> Value {
        if count == 0 {
            return Value::Null;
        }
        match self {
            State::Sum { acc } => acc.clone(),
            State::SumF { acc } => Value::Float(*acc),
            State::SumI { acc } => Value::Int(*acc),
            State::Product { acc, zeros } => {
                if *zeros > 0 {
                    Value::Int(0).mul(acc).add(&Value::Int(0)) // zero of acc's type
                } else {
                    acc.clone()
                }
            }
            State::ProductF { acc, zeros } => {
                if *zeros > 0 {
                    // The dynamic zero-of-type dance, replayed in f64.
                    Value::Float(0.0 * *acc + 0.0)
                } else {
                    Value::Float(*acc)
                }
            }
            State::ProductI { acc, zeros } => {
                if *zeros > 0 {
                    Value::Int(0)
                } else {
                    Value::Int(*acc)
                }
            }
            State::Count => Value::Int(count),
            State::Mean { sum } => sum.to_float().div(&Value::Int(count)),
            State::MeanF { sum } => Value::Float(sum / count as f64),
            State::MeanI { sum } => Value::Float(*sum as f64 / count as f64),
            State::StdDev { sum, sumsq } => {
                let n = count as f64;
                let mean = sum / n;
                let var = (sumsq / n - mean * mean).max(0.0);
                Value::Float(var.sqrt())
            }
            State::MinMax { deque, .. } => {
                deque.front().map(|(v, _)| v.clone()).unwrap_or(Value::Null)
            }
            State::MinMaxF { deque, .. } => {
                deque.front().map(|(v, _)| Value::Float(*v)).unwrap_or(Value::Null)
            }
            State::MinMaxI { deque, .. } => {
                deque.front().map(|(v, _)| Value::Int(*v)).unwrap_or(Value::Null)
            }
            State::Custom { state, spec } => (spec.result)(state, count),
        }
    }

    /// Unboxed `f64` result (`None` = φ) for states whose
    /// [`typed_result_class`] is `Some(Class::F)`. Replays the arithmetic
    /// of [`State::result`] exactly so `Some(x)` boxes to the same bits.
    #[inline]
    fn result_f(&self, count: i64) -> Option<f64> {
        if count == 0 {
            return None;
        }
        match self {
            State::SumF { acc } => Some(*acc),
            State::ProductF { acc, zeros } => {
                if *zeros > 0 {
                    // The dynamic zero-of-type dance, replayed in f64.
                    Some(0.0 * *acc + 0.0)
                } else {
                    Some(*acc)
                }
            }
            State::MeanF { sum } => Some(sum / count as f64),
            State::MeanI { sum } => Some(*sum as f64 / count as f64),
            State::StdDev { sum, sumsq } => {
                let n = count as f64;
                let mean = sum / n;
                let var = (sumsq / n - mean * mean).max(0.0);
                Some(var.sqrt())
            }
            State::MinMaxF { deque, .. } => deque.front().map(|(v, _)| *v),
            _ => unreachable!("result_f on a non-f64-result accumulator"),
        }
    }

    /// Unboxed `i64` result (`None` = φ) for states whose
    /// [`typed_result_class`] is `Some(Class::I)`.
    #[inline]
    fn result_i(&self, count: i64) -> Option<i64> {
        if count == 0 {
            return None;
        }
        match self {
            State::SumI { acc } => Some(*acc),
            State::ProductI { acc, zeros } => {
                if *zeros > 0 {
                    Some(0)
                } else {
                    Some(*acc)
                }
            }
            State::Count => Some(count),
            State::MinMaxI { deque, .. } => deque.front().map(|(v, _)| *v),
            _ => unreachable!("result_i on a non-i64-result accumulator"),
        }
    }

    fn reset(&mut self, op: &ReduceOp, class: Option<Class>) {
        *self = State::with_class(op, class);
    }
}

/// The unboxed class a typed runner folds elements as, or `None` when the
/// fold must stay dynamic (boxed `Value`). This is the static twin of the
/// accumulator variant [`State::with_class`] picks: `Some` exactly when
/// that variant has an `add_f`/`add_i` arm for the element class.
pub(crate) fn typed_fold_class(op: &ReduceOp, class: Option<Class>) -> Option<Class> {
    match (op, class) {
        (ReduceOp::Custom(_), _) => None,
        (_, Some(Class::F)) => Some(Class::F),
        (_, Some(Class::I)) => Some(Class::I),
        _ => None,
    }
}

/// The unboxed class a typed runner's *result* reads back as, or `None`
/// when the result must stay boxed. Mirrors [`State::result`]'s output
/// type per operation.
pub(crate) fn typed_result_class(op: &ReduceOp, class: Option<Class>) -> Option<Class> {
    match (op, typed_fold_class(op, class)?) {
        (ReduceOp::Count, _) => Some(Class::I),
        (ReduceOp::Mean | ReduceOp::StdDev, _) => Some(Class::F),
        (ReduceOp::Sum | ReduceOp::Product | ReduceOp::Min | ReduceOp::Max, c) => Some(c),
        (ReduceOp::Custom(_), _) => None,
    }
}

/// One span's fold outcome, cached at accumulate time so eviction can
/// subtract exactly what entered without re-executing the fused map.
#[derive(Clone, Debug)]
enum Folded {
    /// φ source span or φ map output — never folded, count untouched.
    Skip,
    /// Dynamic fold: the mapped boxed value.
    Boxed(Value),
    /// Typed `f64` fold.
    F(f64),
    /// Typed `i64` fold.
    I(i64),
}

/// The element transform of one slide, in the representation the
/// accumulator folds: boxed for dynamic runners, unboxed for typed ones.
/// `None`/φ outputs drop the element.
pub(crate) enum FoldKind<'m> {
    Dyn(&'m mut dyn FnMut(&Value) -> Value),
    F(&'m mut dyn FnMut(&Value) -> Option<f64>),
    I(&'m mut dyn FnMut(&Value) -> Option<i64>),
}

/// Incremental evaluation of one window reduction over one source buffer.
///
/// The runner tracks which source spans currently overlap the window
/// `(t+lo, t+hi]`: a span `(s, e]` overlaps iff `s < t+hi && e > t+lo`.
/// `advance_to` must be called with non-decreasing `t`.
pub struct ReduceRunner<'a> {
    spec: &'a ReduceSpec,
    src: &'a SnapshotBuf<Value>,
    state: State,
    /// The statically known element class, when the typed kernel tier
    /// picked an unboxed accumulator.
    class: Option<Class>,
    /// Number of snapshots currently folded in (non-φ, post-map non-φ).
    count: i64,
    /// Index of the next span to *enter* (first span with `start ≥ cur_hi`).
    enter_idx: usize,
    /// Index of the next span to *evict* (first span with `end > cur_lo`).
    evict_idx: usize,
    /// Fold outcomes of the spans in `[evict_idx, enter_idx)`, front =
    /// oldest. Pushed once per span at entry, popped at eviction — the
    /// fused map runs exactly once per element.
    cache: VecDeque<Folded>,
    /// Current window end edge.
    cur_hi: Time,
    initialized: bool,
}

impl<'a> ReduceRunner<'a> {
    /// Creates a runner for `spec` over `src` with dynamic accumulators.
    pub fn new(spec: &'a ReduceSpec, src: &'a SnapshotBuf<Value>) -> Self {
        Self::with_elem_class(spec, src, None)
    }

    /// Creates a runner whose accumulator is monomorphized to the window's
    /// element class when that class is unboxed (`F`/`I`) — the typed
    /// tier's reduce fast path. Typed accumulators replay the dynamic
    /// operation sequence exactly, so either constructor produces
    /// bit-identical results on well-typed data.
    pub(crate) fn with_elem_class(
        spec: &'a ReduceSpec,
        src: &'a SnapshotBuf<Value>,
        class: Option<Class>,
    ) -> Self {
        ReduceRunner {
            spec,
            src,
            state: State::with_class(&spec.op, class),
            class,
            count: 0,
            enter_idx: 0,
            evict_idx: 0,
            cache: VecDeque::new(),
            cur_hi: Time::MIN,
            initialized: false,
        }
    }

    /// The unboxed class this runner's typed slide folds elements as
    /// ([`ReduceRunner::slide_f`]/[`ReduceRunner::slide_i`]), or `None`
    /// when only the dynamic path applies.
    #[cfg(test)]
    pub(crate) fn fold_class(&self) -> Option<Class> {
        typed_fold_class(&self.spec.op, self.class)
    }

    /// Whether any snapshot is currently folded in.
    #[inline]
    pub fn has_content(&self) -> bool {
        self.count > 0
    }

    /// The time `t` at which the *next* source span would enter the window,
    /// or `None` when no further span exists. Used by the kernel to skip
    /// over φ gaps.
    pub fn next_enter_time(&self) -> Option<Time> {
        let spans = self.src.spans();
        let mut i = self.enter_idx;
        while i < spans.len() {
            let start = self.src.span_start(i);
            if start >= self.cur_hi {
                // First span not yet entered; skip φ spans (they never
                // produce content).
                if !spans[i].value.is_null() {
                    return Some(Time::new(start.ticks() - self.spec.hi + 1));
                }
                i += 1;
            } else {
                i += 1;
            }
        }
        None
    }

    /// The time `t` at which the oldest in-window *non-φ* span will be
    /// evicted, or `None` if no folded span remains (φ evictions cannot
    /// change the result and are skipped).
    pub fn next_evict_time(&self) -> Option<Time> {
        let spans = self.src.spans();
        let mut i = self.evict_idx;
        while i < self.enter_idx.min(spans.len()) {
            if !spans[i].value.is_null() {
                return Some(Time::new(spans[i].t_end.ticks() - self.spec.lo));
            }
            i += 1;
        }
        None
    }

    /// Slides the window to `(t+lo, t+hi]` and returns the reduction
    /// result, applying the spec's interpreted [`MapFn`] (if any) through
    /// `ctx`.
    pub fn eval_at(&mut self, t: Time, ctx: &mut EvalCtx) -> Value {
        // Copy the `&'a` spec reference out of `self` so the map closure
        // can borrow `ctx` while `eval_at_with` holds `&mut self`.
        let spec = self.spec;
        match &spec.map {
            None => self.eval_at_with(t, &mut |v| v.clone()),
            Some(MapFn { var_slot, eval }) => {
                let slot = *var_slot;
                self.eval_at_with(t, &mut |v| {
                    ctx.vars[slot] = v.clone();
                    eval(ctx)
                })
            }
        }
    }

    /// Slides the window to `(t+lo, t+hi]` and returns the reduction
    /// result, with the fused element transform supplied as a closure —
    /// identity for unmapped windows, the interpreted [`MapFn`] via
    /// [`ReduceRunner::eval_at`], or the typed tier's compiled map. A φ
    /// result from `map` drops the element, exactly like a φ source span.
    pub fn eval_at_with(&mut self, t: Time, map: &mut dyn FnMut(&Value) -> Value) -> Value {
        self.slide(t, &mut FoldKind::Dyn(map));
        self.state.result(self.count)
    }

    /// Typed slide with an unboxed `f64` element transform — the batched
    /// and per-tick typed tiers' path when [`ReduceRunner::fold_class`] is
    /// `Some(Class::F)`. Read the result afterwards with
    /// [`ReduceRunner::result_f`] or [`ReduceRunner::result_i`] per the
    /// operation's result class.
    pub(crate) fn slide_f(&mut self, t: Time, map: &mut dyn FnMut(&Value) -> Option<f64>) {
        self.slide(t, &mut FoldKind::F(map));
    }

    /// Typed slide with an unboxed `i64` element transform
    /// ([`ReduceRunner::fold_class`] `== Some(Class::I)`).
    pub(crate) fn slide_i(&mut self, t: Time, map: &mut dyn FnMut(&Value) -> Option<i64>) {
        self.slide(t, &mut FoldKind::I(map));
    }

    /// The unboxed `f64` result after a typed slide (`None` = φ).
    #[inline]
    pub(crate) fn result_f(&self) -> Option<f64> {
        self.state.result_f(self.count)
    }

    /// The unboxed `i64` result after a typed slide (`None` = φ).
    #[inline]
    pub(crate) fn result_i(&self) -> Option<i64> {
        self.state.result_i(self.count)
    }

    fn slide(&mut self, t: Time, fold: &mut FoldKind) {
        let new_lo = t + self.spec.lo;
        let new_hi = t + self.spec.hi;
        if !self.initialized {
            self.initialized = true;
            // Position the indices at the first span that could overlap.
            let spans = self.src.spans();
            self.evict_idx = spans.partition_point(|s| s.t_end <= new_lo);
            self.enter_idx = self.evict_idx;
            self.cur_hi = new_lo;
        }
        debug_assert!(new_hi >= self.cur_hi, "reduce window must advance monotonically");

        if self.state.invertible() {
            debug_assert_eq!(
                self.cache.len(),
                self.enter_idx - self.evict_idx,
                "fold cache must mirror the in-window span range"
            );
            self.enter_until(new_hi, fold);
            self.evict_until(new_lo);
        } else {
            // Recompute the window from scratch. (The cache is unused on
            // this path: map re-execution is inherent to recomputation.)
            self.state.reset(&self.spec.op, self.class);
            self.count = 0;
            let spans = self.src.spans();
            let first = spans.partition_point(|s| s.t_end <= new_lo);
            let mut i = first;
            while i < spans.len() && self.src.span_start(i) < new_hi {
                self.fold(&spans[i].value, spans[i].t_end, fold);
                i += 1;
            }
            // Keep indices roughly in sync for next_enter/evict queries.
            self.evict_idx = first;
            self.enter_idx = i;
        }
        self.cur_hi = new_hi;
    }

    fn enter_until(&mut self, new_hi: Time, fold: &mut FoldKind) {
        let spans = self.src.spans();
        while self.enter_idx < spans.len() && self.src.span_start(self.enter_idx) < new_hi {
            let span = &spans[self.enter_idx];
            let folded = self.fold(&span.value, span.t_end, fold);
            self.cache.push_back(folded);
            self.enter_idx += 1;
        }
    }

    /// Eviction never consults the map: each span's fold outcome was
    /// cached when it entered.
    fn evict_until(&mut self, new_lo: Time) {
        if self.state.is_deque() {
            self.state.evict_expired(new_lo);
            // Recount: expired entries were counted on entry; maintain count
            // by advancing evict_idx over fully expired spans.
            let spans = self.src.spans();
            while self.evict_idx < spans.len() && spans[self.evict_idx].t_end <= new_lo {
                if self.pop_folded() {
                    self.count -= 1;
                }
                self.evict_idx += 1;
            }
            return;
        }
        let spans = self.src.spans();
        while self.evict_idx < spans.len() && spans[self.evict_idx].t_end <= new_lo {
            if self.pop_folded() {
                self.count -= 1;
            }
            self.evict_idx += 1;
        }
    }

    /// Pops the oldest cached fold outcome, subtracting it from
    /// non-deque accumulators. Returns whether the span had been counted.
    fn pop_folded(&mut self) -> bool {
        // Only spans that actually entered have cache entries; spans the
        // initial partition_point skipped never did.
        if self.evict_idx >= self.enter_idx {
            return false;
        }
        match self.cache.pop_front().expect("cache aligned with [evict_idx, enter_idx)") {
            Folded::Skip => false,
            Folded::Boxed(v) => {
                if !self.state.is_deque() {
                    self.state.remove(&v);
                }
                true
            }
            Folded::F(x) => {
                if !self.state.is_deque() {
                    self.state.remove_f(x);
                }
                true
            }
            Folded::I(x) => {
                if !self.state.is_deque() {
                    self.state.remove_i(x);
                }
                true
            }
        }
    }

    fn fold(&mut self, value: &Value, expire: Time, fold: &mut FoldKind) -> Folded {
        if value.is_null() {
            return Folded::Skip;
        }
        match fold {
            FoldKind::Dyn(map) => {
                let mv = map(value);
                if mv.is_null() {
                    Folded::Skip
                } else {
                    self.state.add(&mv, expire);
                    self.count += 1;
                    Folded::Boxed(mv)
                }
            }
            FoldKind::F(map) => match map(value) {
                None => Folded::Skip,
                Some(x) => {
                    self.state.add_f(x, expire);
                    self.count += 1;
                    Folded::F(x)
                }
            },
            FoldKind::I(map) => match map(value) {
                None => Folded::Skip,
                Some(x) => {
                    self.state.add_i(x, expire);
                    self.count += 1;
                    Folded::I(x)
                }
            },
        }
    }
}

impl std::fmt::Debug for ReduceRunner<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReduceRunner")
            .field("op", &self.spec.op.name())
            .field("window", &(self.spec.lo, self.spec.hi))
            .field("count", &self.count)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::DataType;
    use tilt_data::{Event, TimeRange};

    fn buf(points: &[(i64, f64)]) -> SnapshotBuf<Value> {
        let events: Vec<Event<Value>> =
            points.iter().map(|&(t, v)| Event::point(Time::new(t), Value::Float(v))).collect();
        let hi = points.iter().map(|p| p.0).max().unwrap_or(0);
        SnapshotBuf::from_events(&events, TimeRange::new(Time::new(0), Time::new(hi)))
    }

    fn spec(op: ReduceOp, size: i64) -> ReduceSpec {
        ReduceSpec { op, obj: crate::ir::TObjId(0), lo: -size, hi: 0, map: None }
    }

    fn eval_series(spec: &ReduceSpec, src: &SnapshotBuf<Value>, ts: &[i64]) -> Vec<Value> {
        let mut runner = ReduceRunner::new(spec, src);
        let mut ctx = EvalCtx::default();
        ts.iter().map(|&t| runner.eval_at(Time::new(t), &mut ctx)).collect()
    }

    #[test]
    fn sliding_sum_subtract_on_evict() {
        let src = buf(&[(1, 1.0), (2, 2.0), (3, 3.0), (4, 4.0), (5, 5.0)]);
        let s = spec(ReduceOp::Sum, 3);
        let out = eval_series(&s, &src, &[1, 2, 3, 4, 5, 8, 9]);
        let expect = [1.0, 3.0, 6.0, 9.0, 12.0];
        for (i, e) in expect.iter().enumerate() {
            assert_eq!(out[i], Value::Float(*e), "t index {i}");
        }
        assert_eq!(out[5], Value::Null); // window (5,8] is empty
        assert_eq!(out[6], Value::Null); // window (6,9] is empty
    }

    #[test]
    fn mean_and_count() {
        let src = buf(&[(1, 2.0), (2, 4.0), (3, 6.0)]);
        let m = spec(ReduceOp::Mean, 2);
        assert_eq!(eval_series(&m, &src, &[2]), vec![Value::Float(3.0)]);
        let c = spec(ReduceOp::Count, 2);
        assert_eq!(eval_series(&c, &src, &[2, 3]), vec![Value::Int(2), Value::Int(2)]);
    }

    #[test]
    fn max_deque_evicts_correctly() {
        let src = buf(&[(1, 5.0), (2, 3.0), (3, 4.0), (4, 1.0), (5, 2.0)]);
        let s = spec(ReduceOp::Max, 2);
        let out = eval_series(&s, &src, &[1, 2, 3, 4, 5]);
        let expect = [5.0, 5.0, 4.0, 4.0, 2.0];
        for (i, e) in expect.iter().enumerate() {
            assert_eq!(out[i], Value::Float(*e), "t={}", i + 1);
        }
    }

    #[test]
    fn min_deque() {
        let src = buf(&[(1, 5.0), (2, 3.0), (3, 4.0), (4, 6.0)]);
        let s = spec(ReduceOp::Min, 2);
        let out = eval_series(&s, &src, &[2, 3, 4]);
        assert_eq!(out, vec![Value::Float(3.0), Value::Float(3.0), Value::Float(4.0)]);
    }

    #[test]
    fn stddev_population() {
        let src =
            buf(&[(1, 2.0), (2, 4.0), (3, 4.0), (4, 4.0), (5, 5.0), (6, 5.0), (7, 7.0), (8, 9.0)]);
        let s = spec(ReduceOp::StdDev, 8);
        let out = eval_series(&s, &src, &[8]);
        let Value::Float(x) = out[0] else { panic!("expected float") };
        assert!((x - 2.0).abs() < 1e-9); // classic σ=2 dataset
    }

    #[test]
    fn product_handles_zeros() {
        let src = buf(&[(1, 2.0), (2, 0.0), (3, 3.0), (4, 4.0)]);
        let s = spec(ReduceOp::Product, 2);
        let out = eval_series(&s, &src, &[2, 3, 4]);
        assert_eq!(out[0], Value::Float(0.0));
        assert_eq!(out[1], Value::Float(0.0));
        assert_eq!(out[2], Value::Float(12.0));
    }

    #[test]
    fn empty_window_is_null() {
        let src = buf(&[(5, 1.0)]);
        let s = spec(ReduceOp::Sum, 2);
        assert_eq!(eval_series(&s, &src, &[2]), vec![Value::Null]);
    }

    #[test]
    fn next_enter_and_evict_times() {
        let src = buf(&[(5, 1.0), (10, 2.0)]);
        let s = spec(ReduceOp::Sum, 3);
        let mut runner = ReduceRunner::new(&s, &src);
        let mut ctx = EvalCtx::default();
        let v = runner.eval_at(Time::new(1), &mut ctx);
        assert_eq!(v, Value::Null);
        // Event at 5 spans (4,5]; enters window (t-3, t] when t > 4.
        assert_eq!(runner.next_enter_time(), Some(Time::new(5)));
        runner.eval_at(Time::new(5), &mut ctx);
        assert!(runner.has_content());
        // Span (4,5] evicted when t-3 >= 5, i.e. t = 8.
        assert_eq!(runner.next_evict_time(), Some(Time::new(8)));
    }

    #[test]
    fn custom_reduce_with_deacc() {
        // Sum of squares via the user template.
        let custom = Arc::new(CustomReduce {
            name: "sumsq".into(),
            result_type: DataType::Float,
            init: Value::Float(0.0),
            acc: Arc::new(|s, v, _| s.add(&v.mul(v))),
            deacc: Some(Arc::new(|s, v, _| s.sub(&v.mul(v)))),
            result: Arc::new(|s, _| s.clone()),
        });
        let src = buf(&[(1, 1.0), (2, 2.0), (3, 3.0)]);
        let s = spec(ReduceOp::Custom(custom), 2);
        let out = eval_series(&s, &src, &[2, 3]);
        assert_eq!(out, vec![Value::Float(5.0), Value::Float(13.0)]);
    }

    #[test]
    fn custom_reduce_without_deacc_recomputes() {
        // "last value" aggregate: not invertible.
        let custom = Arc::new(CustomReduce {
            name: "last".into(),
            result_type: DataType::Float,
            init: Value::Null,
            acc: Arc::new(|_, v, _| v.clone()),
            deacc: None,
            result: Arc::new(|s, _| s.clone()),
        });
        let src = buf(&[(1, 1.0), (2, 2.0), (3, 3.0)]);
        let s = spec(ReduceOp::Custom(custom), 2);
        let out = eval_series(&s, &src, &[2, 3, 6]);
        assert_eq!(out, vec![Value::Float(2.0), Value::Float(3.0), Value::Null]);
    }

    #[test]
    fn evict_subtracts_cached_value_without_rerunning_map() {
        // Ten points sliding through a width-3 window: each element must be
        // mapped exactly once (at entry), never again at eviction.
        let pts: Vec<(i64, f64)> = (1..=10).map(|t| (t, t as f64)).collect();
        let src = buf(&pts);
        let s = spec(ReduceOp::Sum, 3);
        let mut runner = ReduceRunner::new(&s, &src);
        let mut runs = 0u64;
        let mut out = Vec::new();
        for t in 1..=13 {
            out.push(runner.eval_at_with(Time::new(t), &mut |v| {
                runs += 1;
                v.clone()
            }));
        }
        assert_eq!(runs, 10, "fused map must run once per element, not once per evict too");
        // And the results are still the correct sliding sums.
        assert_eq!(out[4], Value::Float(3.0 + 4.0 + 5.0));
        assert_eq!(out[12], Value::Null);
    }

    #[test]
    fn deque_recount_uses_cached_fold_outcome() {
        // The Max deque's evict-recount path historically re-applied the map
        // to decide whether an expired span had been counted.
        let pts: Vec<(i64, f64)> = (1..=10).map(|t| (t, (t % 4) as f64)).collect();
        let src = buf(&pts);
        let s = spec(ReduceOp::Max, 2);
        let mut runner = ReduceRunner::new(&s, &src);
        let mut runs = 0u64;
        for t in 1..=12 {
            runner.eval_at_with(Time::new(t), &mut |v| {
                runs += 1;
                v.clone()
            });
        }
        assert_eq!(runs, 10);
    }

    #[test]
    fn typed_slide_matches_dynamic_results() {
        let pts: Vec<(i64, f64)> = (1..=20).map(|t| (t, (t as f64) * 1.5 - 7.0)).collect();
        let src = buf(&pts);
        for op in [ReduceOp::Sum, ReduceOp::Mean, ReduceOp::Product, ReduceOp::StdDev] {
            let s = spec(op.clone(), 5);
            let mut dynr = ReduceRunner::new(&s, &src);
            let mut typr = ReduceRunner::with_elem_class(&s, &src, Some(Class::F));
            assert_eq!(typr.fold_class(), Some(Class::F));
            for t in 1..=25 {
                let d = dynr.eval_at_with(Time::new(t), &mut |v| v.clone());
                typr.slide_f(Time::new(t), &mut |v| v.as_f64());
                let ty = typr.result_f().map(Value::Float).unwrap_or(Value::Null);
                assert_eq!(d, ty, "op {} t={t}", s.op.name());
            }
        }
        // Count folds either class and results in i64.
        let s = spec(ReduceOp::Count, 5);
        let mut dynr = ReduceRunner::new(&s, &src);
        let mut typr = ReduceRunner::with_elem_class(&s, &src, Some(Class::F));
        for t in 1..=25 {
            let d = dynr.eval_at_with(Time::new(t), &mut |v| v.clone());
            typr.slide_f(Time::new(t), &mut |v| v.as_f64());
            let ty = typr.result_i().map(Value::Int).unwrap_or(Value::Null);
            assert_eq!(d, ty, "count t={t}");
        }
        // Min/Max through the typed deque.
        for op in [ReduceOp::Min, ReduceOp::Max] {
            let s = spec(op, 3);
            let mut dynr = ReduceRunner::new(&s, &src);
            let mut typr = ReduceRunner::with_elem_class(&s, &src, Some(Class::F));
            for t in 1..=25 {
                let d = dynr.eval_at_with(Time::new(t), &mut |v| v.clone());
                typr.slide_f(Time::new(t), &mut |v| v.as_f64());
                let ty = typr.result_f().map(Value::Float).unwrap_or(Value::Null);
                assert_eq!(d, ty, "op {} t={t}", s.op.name());
            }
        }
    }

    #[test]
    fn typed_i64_slide_matches_dynamic() {
        let events: Vec<Event<Value>> =
            (1..=15).map(|t| Event::point(Time::new(t), Value::Int(t * 3 - 20))).collect();
        let src = SnapshotBuf::from_events(&events, TimeRange::new(Time::new(0), Time::new(15)));
        for op in [ReduceOp::Sum, ReduceOp::Mean, ReduceOp::Min, ReduceOp::Max] {
            let s = spec(op.clone(), 4);
            let mut dynr = ReduceRunner::new(&s, &src);
            let mut typr = ReduceRunner::with_elem_class(&s, &src, Some(Class::I));
            assert_eq!(typr.fold_class(), Some(Class::I));
            let res_class = typed_result_class(&s.op, Some(Class::I)).unwrap();
            for t in 1..=20 {
                let d = dynr.eval_at_with(Time::new(t), &mut |v| v.clone());
                typr.slide_i(Time::new(t), &mut |v| v.as_i64());
                let ty = match res_class {
                    Class::F => typr.result_f().map(Value::Float).unwrap_or(Value::Null),
                    Class::I => typr.result_i().map(Value::Int).unwrap_or(Value::Null),
                    _ => unreachable!(),
                };
                assert_eq!(d, ty, "op {} t={t}", s.op.name());
            }
        }
    }

    #[test]
    fn mapped_window_filters_nulls() {
        // map: keep only values > 2 (others become φ and are skipped).
        use super::super::program::compile;
        let v = crate::ir::VarId(0);
        let body = Expr::Reduce {
            op: ReduceOp::Count,
            window: crate::ir::WindowRef {
                obj: crate::ir::TObjId(0),
                lo: -3,
                hi: 0,
                map: Some((
                    v,
                    Box::new(Expr::if_else(
                        Expr::Var(v).gt(Expr::c(2.0)),
                        Expr::Var(v),
                        Expr::null(),
                    )),
                )),
            },
        };
        use crate::ir::Expr;
        let p = compile(&body).unwrap();
        let src = buf(&[(1, 1.0), (2, 3.0), (3, 5.0)]);
        let mut ctx = p.new_ctx();
        let mut runner = ReduceRunner::new(&p.reduces[0], &src);
        let out = runner.eval_at(Time::new(3), &mut ctx);
        assert_eq!(out, Value::Int(2));
    }
}
