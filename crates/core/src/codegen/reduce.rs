//! Incremental window-reduction state (paper §6.1.2).
//!
//! Each [`ReduceSpec`] in a kernel gets a [`ReduceRunner`] that maintains the
//! reduction over a sliding window `(t+lo, t+hi]` as `t` advances
//! monotonically. A snapshot (span) of the source object is folded *once*
//! while it overlaps the window — eq. 3 of the paper reduces the values the
//! object assumes, one per snapshot.
//!
//! Strategy per operation:
//!
//! * Sum / Count / Mean / StdDev / Product — invertible accumulators with
//!   Subtract-on-Evict \[16\];
//! * Min / Max — monotonic deques with expiry-based eviction (O(1) amortized,
//!   no inverse needed);
//! * Custom with `deacc` — Subtract-on-Evict through the user's template;
//! * Custom without `deacc` — full window recomputation per evaluation.

use std::collections::VecDeque;
use std::sync::Arc;

use tilt_data::{Payload, SnapshotBuf, Time, Value};

use super::compiled::Class;
use super::program::{EvalCtx, MapFn, ReduceSpec};
use crate::ir::{CustomReduce, ReduceOp};

/// The accumulator of one reduction.
///
/// The dynamic variants fold boxed [`Value`]s; the `*F`/`*I` variants are
/// the typed tier's unboxed counterparts, selected when the window's
/// element class is statically `f64`/`i64` ([`ReduceRunner::with_elem_class`]).
/// Each typed variant replays the exact operation sequence of its dynamic
/// twin (including int-wrapping and promotion order), so results are
/// bit-identical.
#[derive(Clone, Debug)]
enum State {
    Sum { acc: Value },
    SumF { acc: f64 },
    SumI { acc: i64 },
    Product { acc: Value, zeros: i64 },
    ProductF { acc: f64, zeros: i64 },
    ProductI { acc: i64, zeros: i64 },
    Count,
    Mean { sum: Value },
    MeanF { sum: f64 },
    MeanI { sum: i64 },
    StdDev { sum: f64, sumsq: f64 },
    MinMax { deque: VecDeque<(Value, Time)>, is_max: bool },
    MinMaxF { deque: VecDeque<(f64, Time)>, is_max: bool },
    MinMaxI { deque: VecDeque<(i64, Time)>, is_max: bool },
    Custom { state: Value, spec: Arc<CustomReduce> },
}

impl State {
    fn with_class(op: &ReduceOp, class: Option<Class>) -> State {
        match (op, class) {
            (ReduceOp::Sum, Some(Class::F)) => State::SumF { acc: 0.0 },
            (ReduceOp::Sum, Some(Class::I)) => State::SumI { acc: 0 },
            (ReduceOp::Sum, _) => State::Sum { acc: Value::Int(0) },
            (ReduceOp::Product, Some(Class::F)) => State::ProductF { acc: 1.0, zeros: 0 },
            (ReduceOp::Product, Some(Class::I)) => State::ProductI { acc: 1, zeros: 0 },
            (ReduceOp::Product, _) => State::Product { acc: Value::Int(1), zeros: 0 },
            (ReduceOp::Count, _) => State::Count,
            (ReduceOp::Mean, Some(Class::F)) => State::MeanF { sum: 0.0 },
            (ReduceOp::Mean, Some(Class::I)) => State::MeanI { sum: 0 },
            (ReduceOp::Mean, _) => State::Mean { sum: Value::Int(0) },
            (ReduceOp::StdDev, _) => State::StdDev { sum: 0.0, sumsq: 0.0 },
            (ReduceOp::Min, Some(Class::F)) => {
                State::MinMaxF { deque: VecDeque::new(), is_max: false }
            }
            (ReduceOp::Max, Some(Class::F)) => {
                State::MinMaxF { deque: VecDeque::new(), is_max: true }
            }
            (ReduceOp::Min, Some(Class::I)) => {
                State::MinMaxI { deque: VecDeque::new(), is_max: false }
            }
            (ReduceOp::Max, Some(Class::I)) => {
                State::MinMaxI { deque: VecDeque::new(), is_max: true }
            }
            (ReduceOp::Min, _) => State::MinMax { deque: VecDeque::new(), is_max: false },
            (ReduceOp::Max, _) => State::MinMax { deque: VecDeque::new(), is_max: true },
            (ReduceOp::Custom(c), _) => State::Custom { state: c.init.clone(), spec: c.clone() },
        }
    }

    /// Whether eviction is supported incrementally (otherwise the runner
    /// recomputes the window from scratch at each evaluation).
    fn invertible(&self) -> bool {
        match self {
            State::Custom { spec, .. } => spec.deacc.is_some(),
            _ => true,
        }
    }

    /// Folds one snapshot value in. `expire` is the snapshot's end time,
    /// used by deque-based states for eviction.
    fn add(&mut self, v: &Value, expire: Time) {
        match self {
            State::Sum { acc } | State::Mean { sum: acc } => *acc = acc.add(v),
            // Typed accumulators replay the dynamic promotion exactly: the
            // first `Int(0) + Float(x)` already computed in f64.
            State::SumF { acc } | State::MeanF { sum: acc } => {
                if let Some(x) = v.as_f64() {
                    *acc += x;
                }
            }
            State::SumI { acc } | State::MeanI { sum: acc } => {
                if let Some(x) = v.as_i64() {
                    *acc = acc.wrapping_add(x);
                }
            }
            State::Product { acc, zeros } => {
                if v.as_f64() == Some(0.0) || v.as_i64() == Some(0) {
                    *zeros += 1;
                } else {
                    *acc = acc.mul(v);
                }
            }
            State::ProductF { acc, zeros } => {
                if let Some(x) = v.as_f64() {
                    if x == 0.0 {
                        *zeros += 1;
                    } else {
                        *acc *= x;
                    }
                }
            }
            State::ProductI { acc, zeros } => {
                if let Some(x) = v.as_i64() {
                    if x == 0 {
                        *zeros += 1;
                    } else {
                        *acc = acc.wrapping_mul(x);
                    }
                }
            }
            State::Count => {}
            State::StdDev { sum, sumsq } => {
                let x = v.as_f64().unwrap_or(0.0);
                *sum += x;
                *sumsq += x * x;
            }
            State::MinMax { deque, is_max } => {
                let keep = |cand: &Value, v: &Value, is_max: bool| {
                    // Pop candidates dominated by the new value.
                    let cmp = if is_max { cand.le(v) } else { cand.ge(v) };
                    matches!(cmp, Value::Bool(true))
                };
                while let Some((cand, _)) = deque.back() {
                    if keep(cand, v, *is_max) {
                        deque.pop_back();
                    } else {
                        break;
                    }
                }
                deque.push_back((v.clone(), expire));
            }
            State::MinMaxF { deque, is_max } => {
                if let Some(x) = v.as_f64() {
                    while let Some((cand, _)) = deque.back() {
                        if if *is_max { *cand <= x } else { *cand >= x } {
                            deque.pop_back();
                        } else {
                            break;
                        }
                    }
                    deque.push_back((x, expire));
                }
            }
            State::MinMaxI { deque, is_max } => {
                if let Some(x) = v.as_i64() {
                    while let Some((cand, _)) = deque.back() {
                        if if *is_max { *cand <= x } else { *cand >= x } {
                            deque.pop_back();
                        } else {
                            break;
                        }
                    }
                    deque.push_back((x, expire));
                }
            }
            State::Custom { state, spec } => *state = (spec.acc)(state, v, 1),
        }
    }

    /// Removes one snapshot value (Subtract-on-Evict path).
    fn remove(&mut self, v: &Value) {
        match self {
            State::Sum { acc } | State::Mean { sum: acc } => *acc = acc.sub(v),
            State::SumF { acc } | State::MeanF { sum: acc } => {
                if let Some(x) = v.as_f64() {
                    *acc -= x;
                }
            }
            State::SumI { acc } | State::MeanI { sum: acc } => {
                if let Some(x) = v.as_i64() {
                    *acc = acc.wrapping_sub(x);
                }
            }
            State::Product { acc, zeros } => {
                if v.as_f64() == Some(0.0) || v.as_i64() == Some(0) {
                    *zeros -= 1;
                } else {
                    *acc = acc.div(v);
                }
            }
            State::ProductF { acc, zeros } => {
                if let Some(x) = v.as_f64() {
                    if x == 0.0 {
                        *zeros -= 1;
                    } else {
                        *acc /= x;
                    }
                }
            }
            State::ProductI { acc, zeros } => {
                if let Some(x) = v.as_i64() {
                    if x == 0 {
                        *zeros -= 1;
                    } else {
                        *acc /= x;
                    }
                }
            }
            State::Count => {}
            State::StdDev { sum, sumsq } => {
                let x = v.as_f64().unwrap_or(0.0);
                *sum -= x;
                *sumsq -= x * x;
            }
            State::MinMax { .. } | State::MinMaxF { .. } | State::MinMaxI { .. } => {
                unreachable!("deque states evict by expiry")
            }
            State::Custom { state, spec } => {
                let deacc = spec.deacc.as_ref().expect("checked by invertible()");
                *state = (deacc)(state, v, 1);
            }
        }
    }

    /// Whether this accumulator evicts by expiry (monotonic deques) rather
    /// than subtraction.
    fn is_deque(&self) -> bool {
        matches!(self, State::MinMax { .. } | State::MinMaxF { .. } | State::MinMaxI { .. })
    }

    /// Expiry-based eviction for deque states: drops entries whose snapshot
    /// no longer overlaps a window starting (exclusively) at `new_lo`.
    fn evict_expired(&mut self, new_lo: Time) {
        fn drop_expired<T>(deque: &mut VecDeque<(T, Time)>, new_lo: Time) {
            while let Some((_, expire)) = deque.front() {
                if *expire <= new_lo {
                    deque.pop_front();
                } else {
                    break;
                }
            }
        }
        match self {
            State::MinMax { deque, .. } => drop_expired(deque, new_lo),
            State::MinMaxF { deque, .. } => drop_expired(deque, new_lo),
            State::MinMaxI { deque, .. } => drop_expired(deque, new_lo),
            _ => {}
        }
    }

    /// The reduction result given the number of folded snapshots.
    fn result(&self, count: i64) -> Value {
        if count == 0 {
            return Value::Null;
        }
        match self {
            State::Sum { acc } => acc.clone(),
            State::SumF { acc } => Value::Float(*acc),
            State::SumI { acc } => Value::Int(*acc),
            State::Product { acc, zeros } => {
                if *zeros > 0 {
                    Value::Int(0).mul(acc).add(&Value::Int(0)) // zero of acc's type
                } else {
                    acc.clone()
                }
            }
            State::ProductF { acc, zeros } => {
                if *zeros > 0 {
                    // The dynamic zero-of-type dance, replayed in f64.
                    Value::Float(0.0 * *acc + 0.0)
                } else {
                    Value::Float(*acc)
                }
            }
            State::ProductI { acc, zeros } => {
                if *zeros > 0 {
                    Value::Int(0)
                } else {
                    Value::Int(*acc)
                }
            }
            State::Count => Value::Int(count),
            State::Mean { sum } => sum.to_float().div(&Value::Int(count)),
            State::MeanF { sum } => Value::Float(sum / count as f64),
            State::MeanI { sum } => Value::Float(*sum as f64 / count as f64),
            State::StdDev { sum, sumsq } => {
                let n = count as f64;
                let mean = sum / n;
                let var = (sumsq / n - mean * mean).max(0.0);
                Value::Float(var.sqrt())
            }
            State::MinMax { deque, .. } => {
                deque.front().map(|(v, _)| v.clone()).unwrap_or(Value::Null)
            }
            State::MinMaxF { deque, .. } => {
                deque.front().map(|(v, _)| Value::Float(*v)).unwrap_or(Value::Null)
            }
            State::MinMaxI { deque, .. } => {
                deque.front().map(|(v, _)| Value::Int(*v)).unwrap_or(Value::Null)
            }
            State::Custom { state, spec } => (spec.result)(state, count),
        }
    }

    fn reset(&mut self, op: &ReduceOp, class: Option<Class>) {
        *self = State::with_class(op, class);
    }
}

/// Incremental evaluation of one window reduction over one source buffer.
///
/// The runner tracks which source spans currently overlap the window
/// `(t+lo, t+hi]`: a span `(s, e]` overlaps iff `s < t+hi && e > t+lo`.
/// `advance_to` must be called with non-decreasing `t`.
pub struct ReduceRunner<'a> {
    spec: &'a ReduceSpec,
    src: &'a SnapshotBuf<Value>,
    state: State,
    /// The statically known element class, when the typed kernel tier
    /// picked an unboxed accumulator.
    class: Option<Class>,
    /// Number of snapshots currently folded in (non-φ, post-map non-φ).
    count: i64,
    /// Index of the next span to *enter* (first span with `start ≥ cur_hi`).
    enter_idx: usize,
    /// Index of the next span to *evict* (first span with `end > cur_lo`).
    evict_idx: usize,
    /// Current window end edge.
    cur_hi: Time,
    initialized: bool,
}

impl<'a> ReduceRunner<'a> {
    /// Creates a runner for `spec` over `src` with dynamic accumulators.
    pub fn new(spec: &'a ReduceSpec, src: &'a SnapshotBuf<Value>) -> Self {
        Self::with_elem_class(spec, src, None)
    }

    /// Creates a runner whose accumulator is monomorphized to the window's
    /// element class when that class is unboxed (`F`/`I`) — the typed
    /// tier's reduce fast path. Typed accumulators replay the dynamic
    /// operation sequence exactly, so either constructor produces
    /// bit-identical results on well-typed data.
    pub(crate) fn with_elem_class(
        spec: &'a ReduceSpec,
        src: &'a SnapshotBuf<Value>,
        class: Option<Class>,
    ) -> Self {
        ReduceRunner {
            spec,
            src,
            state: State::with_class(&spec.op, class),
            class,
            count: 0,
            enter_idx: 0,
            evict_idx: 0,
            cur_hi: Time::MIN,
            initialized: false,
        }
    }

    /// Whether any snapshot is currently folded in.
    #[inline]
    pub fn has_content(&self) -> bool {
        self.count > 0
    }

    /// The time `t` at which the *next* source span would enter the window,
    /// or `None` when no further span exists. Used by the kernel to skip
    /// over φ gaps.
    pub fn next_enter_time(&self) -> Option<Time> {
        let spans = self.src.spans();
        let mut i = self.enter_idx;
        while i < spans.len() {
            let start = self.src.span_start(i);
            if start >= self.cur_hi {
                // First span not yet entered; skip φ spans (they never
                // produce content).
                if !spans[i].value.is_null() {
                    return Some(Time::new(start.ticks() - self.spec.hi + 1));
                }
                i += 1;
            } else {
                i += 1;
            }
        }
        None
    }

    /// The time `t` at which the oldest in-window *non-φ* span will be
    /// evicted, or `None` if no folded span remains (φ evictions cannot
    /// change the result and are skipped).
    pub fn next_evict_time(&self) -> Option<Time> {
        let spans = self.src.spans();
        let mut i = self.evict_idx;
        while i < self.enter_idx.min(spans.len()) {
            if !spans[i].value.is_null() {
                return Some(Time::new(spans[i].t_end.ticks() - self.spec.lo));
            }
            i += 1;
        }
        None
    }

    /// Slides the window to `(t+lo, t+hi]` and returns the reduction
    /// result, applying the spec's interpreted [`MapFn`] (if any) through
    /// `ctx`.
    pub fn eval_at(&mut self, t: Time, ctx: &mut EvalCtx) -> Value {
        // Copy the `&'a` spec reference out of `self` so the map closure
        // can borrow `ctx` while `eval_at_with` holds `&mut self`.
        let spec = self.spec;
        match &spec.map {
            None => self.eval_at_with(t, &mut |v| v.clone()),
            Some(MapFn { var_slot, eval }) => {
                let slot = *var_slot;
                self.eval_at_with(t, &mut |v| {
                    ctx.vars[slot] = v.clone();
                    eval(ctx)
                })
            }
        }
    }

    /// Slides the window to `(t+lo, t+hi]` and returns the reduction
    /// result, with the fused element transform supplied as a closure —
    /// identity for unmapped windows, the interpreted [`MapFn`] via
    /// [`ReduceRunner::eval_at`], or the typed tier's compiled map. A φ
    /// result from `map` drops the element, exactly like a φ source span.
    pub fn eval_at_with(&mut self, t: Time, map: &mut dyn FnMut(&Value) -> Value) -> Value {
        let new_lo = t + self.spec.lo;
        let new_hi = t + self.spec.hi;
        if !self.initialized {
            self.initialized = true;
            // Position the indices at the first span that could overlap.
            let spans = self.src.spans();
            self.evict_idx = spans.partition_point(|s| s.t_end <= new_lo);
            self.enter_idx = self.evict_idx;
            self.cur_hi = new_lo;
        }
        debug_assert!(new_hi >= self.cur_hi, "reduce window must advance monotonically");

        if self.state.invertible() {
            self.enter_until(new_hi, map);
            self.evict_until(new_lo, map);
        } else {
            // Recompute the window from scratch.
            self.state.reset(&self.spec.op, self.class);
            self.count = 0;
            let spans = self.src.spans();
            let first = spans.partition_point(|s| s.t_end <= new_lo);
            let mut i = first;
            while i < spans.len() && self.src.span_start(i) < new_hi {
                self.fold(&spans[i].value, spans[i].t_end, map);
                i += 1;
            }
            // Keep indices roughly in sync for next_enter/evict queries.
            self.evict_idx = first;
            self.enter_idx = i;
        }
        self.cur_hi = new_hi;
        self.state.result(self.count)
    }

    fn enter_until(&mut self, new_hi: Time, map: &mut dyn FnMut(&Value) -> Value) {
        let spans = self.src.spans();
        while self.enter_idx < spans.len() && self.src.span_start(self.enter_idx) < new_hi {
            let span = &spans[self.enter_idx];
            self.fold(&span.value, span.t_end, map);
            self.enter_idx += 1;
        }
    }

    fn evict_until(&mut self, new_lo: Time, map: &mut dyn FnMut(&Value) -> Value) {
        if self.state.is_deque() {
            self.state.evict_expired(new_lo);
            // Recount: expired entries were counted on entry; maintain count
            // by advancing evict_idx over fully expired spans.
            let spans = self.src.spans();
            while self.evict_idx < spans.len() && spans[self.evict_idx].t_end <= new_lo {
                if apply_map(map, &spans[self.evict_idx].value).is_some() {
                    self.count -= 1;
                }
                self.evict_idx += 1;
            }
            return;
        }
        let spans = self.src.spans();
        while self.evict_idx < spans.len() && spans[self.evict_idx].t_end <= new_lo {
            // Only spans that actually entered can be evicted.
            if self.evict_idx < self.enter_idx {
                if let Some(mv) = apply_map(map, &spans[self.evict_idx].value) {
                    self.state.remove(&mv);
                    self.count -= 1;
                }
            }
            self.evict_idx += 1;
        }
    }

    fn fold(&mut self, value: &Value, expire: Time, map: &mut dyn FnMut(&Value) -> Value) {
        if let Some(mv) = apply_map(map, value) {
            self.state.add(&mv, expire);
            self.count += 1;
        }
    }
}

/// Applies the fused map; returns `None` for φ inputs/outputs (skipped).
fn apply_map(map: &mut dyn FnMut(&Value) -> Value, value: &Value) -> Option<Value> {
    if value.is_null() {
        return None;
    }
    let mv = map(value);
    if mv.is_null() {
        None
    } else {
        Some(mv)
    }
}

impl std::fmt::Debug for ReduceRunner<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReduceRunner")
            .field("op", &self.spec.op.name())
            .field("window", &(self.spec.lo, self.spec.hi))
            .field("count", &self.count)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::DataType;
    use tilt_data::{Event, TimeRange};

    fn buf(points: &[(i64, f64)]) -> SnapshotBuf<Value> {
        let events: Vec<Event<Value>> =
            points.iter().map(|&(t, v)| Event::point(Time::new(t), Value::Float(v))).collect();
        let hi = points.iter().map(|p| p.0).max().unwrap_or(0);
        SnapshotBuf::from_events(&events, TimeRange::new(Time::new(0), Time::new(hi)))
    }

    fn spec(op: ReduceOp, size: i64) -> ReduceSpec {
        ReduceSpec { op, obj: crate::ir::TObjId(0), lo: -size, hi: 0, map: None }
    }

    fn eval_series(spec: &ReduceSpec, src: &SnapshotBuf<Value>, ts: &[i64]) -> Vec<Value> {
        let mut runner = ReduceRunner::new(spec, src);
        let mut ctx = EvalCtx::default();
        ts.iter().map(|&t| runner.eval_at(Time::new(t), &mut ctx)).collect()
    }

    #[test]
    fn sliding_sum_subtract_on_evict() {
        let src = buf(&[(1, 1.0), (2, 2.0), (3, 3.0), (4, 4.0), (5, 5.0)]);
        let s = spec(ReduceOp::Sum, 3);
        let out = eval_series(&s, &src, &[1, 2, 3, 4, 5, 8, 9]);
        let expect = [1.0, 3.0, 6.0, 9.0, 12.0];
        for (i, e) in expect.iter().enumerate() {
            assert_eq!(out[i], Value::Float(*e), "t index {i}");
        }
        assert_eq!(out[5], Value::Null); // window (5,8] is empty
        assert_eq!(out[6], Value::Null); // window (6,9] is empty
    }

    #[test]
    fn mean_and_count() {
        let src = buf(&[(1, 2.0), (2, 4.0), (3, 6.0)]);
        let m = spec(ReduceOp::Mean, 2);
        assert_eq!(eval_series(&m, &src, &[2]), vec![Value::Float(3.0)]);
        let c = spec(ReduceOp::Count, 2);
        assert_eq!(eval_series(&c, &src, &[2, 3]), vec![Value::Int(2), Value::Int(2)]);
    }

    #[test]
    fn max_deque_evicts_correctly() {
        let src = buf(&[(1, 5.0), (2, 3.0), (3, 4.0), (4, 1.0), (5, 2.0)]);
        let s = spec(ReduceOp::Max, 2);
        let out = eval_series(&s, &src, &[1, 2, 3, 4, 5]);
        let expect = [5.0, 5.0, 4.0, 4.0, 2.0];
        for (i, e) in expect.iter().enumerate() {
            assert_eq!(out[i], Value::Float(*e), "t={}", i + 1);
        }
    }

    #[test]
    fn min_deque() {
        let src = buf(&[(1, 5.0), (2, 3.0), (3, 4.0), (4, 6.0)]);
        let s = spec(ReduceOp::Min, 2);
        let out = eval_series(&s, &src, &[2, 3, 4]);
        assert_eq!(out, vec![Value::Float(3.0), Value::Float(3.0), Value::Float(4.0)]);
    }

    #[test]
    fn stddev_population() {
        let src =
            buf(&[(1, 2.0), (2, 4.0), (3, 4.0), (4, 4.0), (5, 5.0), (6, 5.0), (7, 7.0), (8, 9.0)]);
        let s = spec(ReduceOp::StdDev, 8);
        let out = eval_series(&s, &src, &[8]);
        let Value::Float(x) = out[0] else { panic!("expected float") };
        assert!((x - 2.0).abs() < 1e-9); // classic σ=2 dataset
    }

    #[test]
    fn product_handles_zeros() {
        let src = buf(&[(1, 2.0), (2, 0.0), (3, 3.0), (4, 4.0)]);
        let s = spec(ReduceOp::Product, 2);
        let out = eval_series(&s, &src, &[2, 3, 4]);
        assert_eq!(out[0], Value::Float(0.0));
        assert_eq!(out[1], Value::Float(0.0));
        assert_eq!(out[2], Value::Float(12.0));
    }

    #[test]
    fn empty_window_is_null() {
        let src = buf(&[(5, 1.0)]);
        let s = spec(ReduceOp::Sum, 2);
        assert_eq!(eval_series(&s, &src, &[2]), vec![Value::Null]);
    }

    #[test]
    fn next_enter_and_evict_times() {
        let src = buf(&[(5, 1.0), (10, 2.0)]);
        let s = spec(ReduceOp::Sum, 3);
        let mut runner = ReduceRunner::new(&s, &src);
        let mut ctx = EvalCtx::default();
        let v = runner.eval_at(Time::new(1), &mut ctx);
        assert_eq!(v, Value::Null);
        // Event at 5 spans (4,5]; enters window (t-3, t] when t > 4.
        assert_eq!(runner.next_enter_time(), Some(Time::new(5)));
        runner.eval_at(Time::new(5), &mut ctx);
        assert!(runner.has_content());
        // Span (4,5] evicted when t-3 >= 5, i.e. t = 8.
        assert_eq!(runner.next_evict_time(), Some(Time::new(8)));
    }

    #[test]
    fn custom_reduce_with_deacc() {
        // Sum of squares via the user template.
        let custom = Arc::new(CustomReduce {
            name: "sumsq".into(),
            result_type: DataType::Float,
            init: Value::Float(0.0),
            acc: Arc::new(|s, v, _| s.add(&v.mul(v))),
            deacc: Some(Arc::new(|s, v, _| s.sub(&v.mul(v)))),
            result: Arc::new(|s, _| s.clone()),
        });
        let src = buf(&[(1, 1.0), (2, 2.0), (3, 3.0)]);
        let s = spec(ReduceOp::Custom(custom), 2);
        let out = eval_series(&s, &src, &[2, 3]);
        assert_eq!(out, vec![Value::Float(5.0), Value::Float(13.0)]);
    }

    #[test]
    fn custom_reduce_without_deacc_recomputes() {
        // "last value" aggregate: not invertible.
        let custom = Arc::new(CustomReduce {
            name: "last".into(),
            result_type: DataType::Float,
            init: Value::Null,
            acc: Arc::new(|_, v, _| v.clone()),
            deacc: None,
            result: Arc::new(|s, _| s.clone()),
        });
        let src = buf(&[(1, 1.0), (2, 2.0), (3, 3.0)]);
        let s = spec(ReduceOp::Custom(custom), 2);
        let out = eval_series(&s, &src, &[2, 3, 6]);
        assert_eq!(out, vec![Value::Float(2.0), Value::Float(3.0), Value::Null]);
    }

    #[test]
    fn mapped_window_filters_nulls() {
        // map: keep only values > 2 (others become φ and are skipped).
        use super::super::program::compile;
        let v = crate::ir::VarId(0);
        let body = Expr::Reduce {
            op: ReduceOp::Count,
            window: crate::ir::WindowRef {
                obj: crate::ir::TObjId(0),
                lo: -3,
                hi: 0,
                map: Some((
                    v,
                    Box::new(Expr::if_else(
                        Expr::Var(v).gt(Expr::c(2.0)),
                        Expr::Var(v),
                        Expr::null(),
                    )),
                )),
            },
        };
        use crate::ir::Expr;
        let p = compile(&body).unwrap();
        let src = buf(&[(1, 1.0), (2, 3.0), (3, 5.0)]);
        let mut ctx = p.new_ctx();
        let mut runner = ReduceRunner::new(&p.reduces[0], &src);
        let out = runner.eval_at(Time::new(3), &mut ctx);
        assert_eq!(out, Value::Int(2));
    }
}
