//! Batched (third-tier) kernel bodies: each bytecode op runs over a *run*
//! of grid ticks at once.
//!
//! The per-tick typed tier already killed boxing, but it still pays one
//! dispatch (one `match` on [`Instr`]) per instruction per tick. Dense
//! stretches — sampled kernels, `every_tick` domains under steady input —
//! execute the same short straight-line body thousands of times in a row,
//! so the dispatch dominates. This module amortizes it: the kernel driver
//! collects up to [`MAX_BATCH`] consecutive ticks whose stepping is dense,
//! and [`BatchCtx::exec`] runs each instruction once over all lanes as a
//! plain `f64`/`i64` slice loop the compiler auto-vectorizes.
//!
//! φ handling is where the batch shape pays twice: per-register lane masks
//! are word-level [`NullMask`]s, so propagating φ through a binary op is a
//! couple of `u64` ORs ([`NullMask::set_or`]) and the "any φ in this run?"
//! test that guards the slow per-lane arms is one branch per 64 lanes
//! ([`NullMask::none_null`]).
//!
//! Lane-wise semantics are *identical* to the scalar [`exec`] loop — same
//! IEEE ops, same wrapping integer ops, same Kleene logic, same bitwise
//! float equality — so batched output is byte-identical to the per-tick
//! tier. Value slots of φ lanes may hold garbage (float ops compute on
//! them unconditionally, exactly like the scalar tier's branch-free float
//! arms); the mask makes that unobservable. Integer ops that can trap
//! (`Div`/`Rem`/`Pow`, `NegI`/`AbsI` overflow) skip φ lanes so garbage
//! never reaches an operation the scalar tier would not have executed.
//!
//! Not every typed body can batch: [`batchable`] admits only fully typed,
//! branch-free, def-before-use straight-line bodies whose reduce slots
//! take the unboxed accumulate path. Everything else transparently runs
//! the per-tick tier — the gate is a static property of the plan, checked
//! once at compile time.

use tilt_data::NullMask;

use super::compiled::{ArithOp, Class, CmpOp, Instr, Reg, TypedCtx, TypedProgram};

/// Maximum lanes per batch. 256 keeps all columns of a typical body
/// (tens of registers) inside L1 while amortizing dispatch ~256×.
pub(crate) const MAX_BATCH: usize = 256;

/// Whether the typed body can execute on the batched tier: fully typed
/// (no `V` registers), straight-line (no jumps or branches), every
/// register defined before use within a tick, every operand distinct from
/// its instruction's destination, and every live reduce slot on the
/// unboxed fold/result path described by `modes` (see
/// [`super::reduce::typed_fold_class`]).
pub(crate) fn batchable(tp: &TypedProgram, modes: &[Option<(Class, Class)>]) -> bool {
    if !tp.is_fully_typed() {
        return false;
    }
    for (i, reg) in tp.reduce_regs.iter().enumerate() {
        let Some(reg) = reg else { continue };
        let Some((fold, res)) = modes.get(i).copied().flatten() else {
            return false;
        };
        if reg.class != res {
            return false;
        }
        match tp.typed_maps.get(i).and_then(|m| m.as_ref()) {
            Some(map) => {
                if map.fold_class() != Some(fold) {
                    return false;
                }
            }
            None => {
                if tp.reduce_elem.get(i).copied().flatten() != Some(fold) {
                    return false;
                }
            }
        }
    }
    body_ok(tp)
}

/// Registers proven initialized at the current body position.
struct Init {
    f: Vec<bool>,
    i: Vec<bool>,
    b: Vec<bool>,
}

impl Init {
    fn slots(&mut self, c: Class) -> &mut Vec<bool> {
        match c {
            Class::F => &mut self.f,
            Class::I => &mut self.i,
            Class::B => &mut self.b,
            Class::V => unreachable!("V registers rejected before def tracking"),
        }
    }

    fn def(&mut self, c: Class, r: u16) {
        self.slots(c)[r as usize] = true;
    }

    fn live(&mut self, c: Class, r: u16) -> bool {
        self.slots(c)[r as usize]
    }
}

/// Walks the body in order, proving it straight-line, whitelisted, and
/// def-before-use with operands distinct from destinations.
fn body_ok(tp: &TypedProgram) -> bool {
    let mut init = Init {
        f: vec![false; tp.n_f as usize],
        i: vec![false; tp.n_i as usize],
        b: vec![false; tp.n_b as usize],
    };
    // The prelude (constants, φ seeds) and the driver-filled point/reduce
    // slots are the only registers live at body entry.
    for ins in &tp.prelude {
        match ins {
            Instr::ConstF { dst, .. } => init.def(Class::F, *dst),
            Instr::ConstI { dst, .. } => init.def(Class::I, *dst),
            Instr::ConstB { dst, .. } => init.def(Class::B, *dst),
            Instr::Null { dst } if dst.class != Class::V => init.def(dst.class, dst.idx),
            _ => return false,
        }
    }
    for r in tp.point_regs.iter().chain(&tp.reduce_regs).flatten() {
        if r.class == Class::V {
            return false;
        }
        init.def(r.class, r.idx);
    }
    for ins in &tp.instrs {
        if !step(ins, &mut init) {
            return false;
        }
    }
    true
}

/// Admits one instruction: reads must be initialized and distinct from the
/// destination (batch columns update in place, so an aliased destination
/// would clobber an operand mid-run).
fn step(ins: &Instr, init: &mut Init) -> bool {
    let mut chk = |reads: &[(Class, u16)], dst: (Class, u16)| -> bool {
        let ok = reads.iter().all(|&(c, r)| init.live(c, r) && (c, r) != dst);
        if ok {
            init.def(dst.0, dst.1);
        }
        ok
    };
    use Class::{B, F, I};
    match ins {
        Instr::ConstF { dst, .. } => chk(&[], (F, *dst)),
        Instr::ConstI { dst, .. } => chk(&[], (I, *dst)),
        Instr::ConstB { dst, .. } => chk(&[], (B, *dst)),
        Instr::Null { dst } => dst.class != Class::V && chk(&[], (dst.class, dst.idx)),
        Instr::Time { dst } => chk(&[], (I, *dst)),
        Instr::Mov { src, dst } => {
            src.class == dst.class
                && src.class != Class::V
                && chk(&[(src.class, src.idx)], (dst.class, dst.idx))
        }
        Instr::ArithF { a, b, dst, .. } => chk(&[(F, *a), (F, *b)], (F, *dst)),
        Instr::ArithI { a, b, dst, .. } => chk(&[(I, *a), (I, *b)], (I, *dst)),
        Instr::ArithFC { a, dst, .. } => chk(&[(F, *a)], (F, *dst)),
        Instr::ArithIC { a, dst, .. } => chk(&[(I, *a)], (I, *dst)),
        Instr::MulAddF { x, y, z, dst } => chk(&[(F, *x), (F, *y), (F, *z)], (F, *dst)),
        Instr::MulAddFC { x, y, dst, .. } => chk(&[(F, *x), (F, *y)], (F, *dst)),
        Instr::CmpF { a, b, dst, .. } => chk(&[(F, *a), (F, *b)], (B, *dst)),
        Instr::CmpI { a, b, dst, .. } => chk(&[(I, *a), (I, *b)], (B, *dst)),
        Instr::CmpB { a, b, dst, .. } => chk(&[(B, *a), (B, *b)], (B, *dst)),
        Instr::CmpFC { a, dst, .. } => chk(&[(F, *a)], (B, *dst)),
        Instr::CmpIC { a, dst, .. } => chk(&[(I, *a)], (B, *dst)),
        Instr::EqF { a, b, dst, .. } => chk(&[(F, *a), (F, *b)], (B, *dst)),
        Instr::EqI { a, b, dst, .. } => chk(&[(I, *a), (I, *b)], (B, *dst)),
        Instr::EqB { a, b, dst, .. } => chk(&[(B, *a), (B, *b)], (B, *dst)),
        Instr::AndB { a, b, dst } | Instr::OrB { a, b, dst } => chk(&[(B, *a), (B, *b)], (B, *dst)),
        Instr::NotB { a, dst } => chk(&[(B, *a)], (B, *dst)),
        Instr::NegF { a, dst } | Instr::AbsF { a, dst } | Instr::SqrtF { a, dst } => {
            chk(&[(F, *a)], (F, *dst))
        }
        Instr::NegI { a, dst } | Instr::AbsI { a, dst } => chk(&[(I, *a)], (I, *dst)),
        Instr::I2F { a, dst } => chk(&[(I, *a)], (F, *dst)),
        Instr::F2I { a, dst } => chk(&[(F, *a)], (I, *dst)),
        Instr::IsNull { a, dst } => a.class != Class::V && chk(&[(a.class, a.idx)], (B, *dst)),
        Instr::Select { cond, t, f, dst } => {
            if dst.class == Class::V {
                return false;
            }
            let mut reads = vec![(B, *cond)];
            for src in [t, f].into_iter().flatten() {
                if src.class != dst.class {
                    return false;
                }
                reads.push((src.class, src.idx));
            }
            chk(&reads, (dst.class, dst.idx))
        }
        // Boxed traffic and control flow stay per-tick.
        Instr::ConstV { .. }
        | Instr::Box { .. }
        | Instr::BinV { .. }
        | Instr::UnV { .. }
        | Instr::Field { .. }
        | Instr::MakeTuple { .. }
        | Instr::Jump { .. }
        | Instr::Branch { .. }
        | Instr::BranchV { .. } => false,
    }
}

/// Columnar register files: one `cap`-lane column per scalar register,
/// with a word-level [`NullMask`] per column. Lanes past the current
/// batch length hold garbage; every consumer bounds itself by `k`.
pub(crate) struct BatchCtx {
    cap: usize,
    f: Vec<f64>,
    i: Vec<i64>,
    b: Vec<bool>,
    nf: Vec<NullMask>,
    ni: Vec<NullMask>,
    nb: Vec<NullMask>,
    /// Staging mask for same-file mask writes (computed here, then swapped
    /// into the destination so operand masks are never aliased mutably).
    scratch: NullMask,
}

/// Splits `file` into the mutable destination column and the shared
/// remainder (`head` = columns before `dst`, `tail` = columns after).
#[inline]
fn split_dst<T>(file: &mut [T], cap: usize, dst: u16) -> (&mut [T], &[T], &[T]) {
    let (head, rest) = file.split_at_mut(dst as usize * cap);
    let (dcol, tail) = rest.split_at_mut(cap);
    (dcol, head, tail)
}

/// Resolves operand column `r` against a [`split_dst`] remainder.
#[inline]
fn pick<'t, T>(head: &'t [T], tail: &'t [T], cap: usize, dst: u16, r: u16) -> &'t [T] {
    debug_assert_ne!(r, dst, "operand aliases destination: rejected by the batch gate");
    if r < dst {
        &head[r as usize * cap..][..cap]
    } else {
        &tail[(r - dst - 1) as usize * cap..][..cap]
    }
}

/// `d[j] = f(a[j], b[j])` over pre-sliced lanes — the auto-vectorization
/// target shape (no bounds checks, closure monomorphized per op).
#[inline]
fn lanes2<T: Copy, U, F: Fn(T, T) -> U>(d: &mut [U], a: &[T], b: &[T], f: F) {
    for ((d, &x), &y) in d.iter_mut().zip(a).zip(b) {
        *d = f(x, y);
    }
}

/// `d[j] = f(a[j])` over pre-sliced lanes.
#[inline]
fn lanes1<T: Copy, U, F: Fn(T) -> U>(d: &mut [U], a: &[T], f: F) {
    for (d, &x) in d.iter_mut().zip(a) {
        *d = f(x);
    }
}

/// Binary float arithmetic with the op `match` hoisted out of the lane
/// loop so each arm vectorizes independently.
fn arith_f_lanes(op: ArithOp, d: &mut [f64], a: &[f64], b: &[f64]) {
    match op {
        ArithOp::Add => lanes2(d, a, b, |x, y| x + y),
        ArithOp::Sub => lanes2(d, a, b, |x, y| x - y),
        ArithOp::Mul => lanes2(d, a, b, |x, y| x * y),
        ArithOp::Div => lanes2(d, a, b, |x, y| x / y),
        ArithOp::Rem => lanes2(d, a, b, |x, y| x % y),
        ArithOp::Pow => lanes2(d, a, b, f64::powf),
        ArithOp::Min => lanes2(d, a, b, f64::min),
        ArithOp::Max => lanes2(d, a, b, f64::max),
    }
}

/// Comparison lanes with the op hoisted (shared by the `F`, `I`, and `B`
/// arms and their embedded-constant variants through slice reuse).
fn cmp_lanes<T: Copy + PartialOrd>(op: CmpOp, d: &mut [bool], a: &[T], b: &[T]) {
    match op {
        CmpOp::Lt => lanes2(d, a, b, |x, y| x < y),
        CmpOp::Le => lanes2(d, a, b, |x, y| x <= y),
        CmpOp::Gt => lanes2(d, a, b, |x, y| x > y),
        CmpOp::Ge => lanes2(d, a, b, |x, y| x >= y),
    }
}

fn cmp_lanes_c<T: Copy + PartialOrd>(op: CmpOp, d: &mut [bool], a: &[T], c: T) {
    match op {
        CmpOp::Lt => lanes1(d, a, |x| x < c),
        CmpOp::Le => lanes1(d, a, |x| x <= c),
        CmpOp::Gt => lanes1(d, a, |x| x > c),
        CmpOp::Ge => lanes1(d, a, |x| x >= c),
    }
}

/// The three-way conditional move, lane-wise: φ condition → φ, else copy
/// the selected branch's value and flag (`None` branch = φ), exactly like
/// the scalar `Select` arm.
fn select_lanes<T: Copy>(
    k: usize,
    cond: &[bool],
    cmask: &NullMask,
    t: Option<(&[T], &NullMask)>,
    f: Option<(&[T], &NullMask)>,
    d: &mut [T],
    dmask: &mut NullMask,
) {
    for j in 0..k {
        let src = if cmask.get(j) {
            None
        } else if cond[j] {
            t
        } else {
            f
        };
        match src {
            None => dmask.set(j, true),
            Some((scol, smask)) => {
                d[j] = scol[j];
                dmask.set(j, smask.get(j));
            }
        }
    }
}

impl BatchCtx {
    /// Columns sized for `tp`, all lanes φ, capacity [`MAX_BATCH`].
    pub(crate) fn new(tp: &TypedProgram) -> BatchCtx {
        let cap = MAX_BATCH;
        BatchCtx {
            cap,
            f: vec![0.0; tp.n_f as usize * cap],
            i: vec![0; tp.n_i as usize * cap],
            b: vec![false; tp.n_b as usize * cap],
            nf: (0..tp.n_f).map(|_| NullMask::new(cap)).collect(),
            ni: (0..tp.n_i).map(|_| NullMask::new(cap)).collect(),
            nb: (0..tp.n_b).map(|_| NullMask::new(cap)).collect(),
            scratch: NullMask::new(cap),
        }
    }

    /// Replicates a prepared scalar register file (prelude already run)
    /// across every lane: constants and φ seeds become whole columns.
    /// Called once per drive; per-lane slots are overwritten each batch.
    pub(crate) fn broadcast(&mut self, ctx: &TypedCtx, tp: &TypedProgram) {
        for r in 0..tp.n_f {
            let (x, n) = ctx.get_f(r);
            self.f[r as usize * self.cap..][..self.cap].fill(x);
            set_whole(&mut self.nf[r as usize], n);
        }
        for r in 0..tp.n_i {
            let (x, n) = ctx.get_i(r);
            self.i[r as usize * self.cap..][..self.cap].fill(x);
            set_whole(&mut self.ni[r as usize], n);
        }
        for r in 0..tp.n_b {
            let (x, n) = ctx.get_b(r);
            self.b[r as usize * self.cap..][..self.cap].fill(x);
            set_whole(&mut self.nb[r as usize], n);
        }
    }

    /// Writes one lane of a driver-filled slot (point access or reduce
    /// result), `None` = φ.
    pub(crate) fn store_f_lane(&mut self, reg: Reg, lane: usize, v: Option<f64>) {
        debug_assert_eq!(reg.class, Class::F);
        match v {
            Some(x) => {
                self.f[reg.idx as usize * self.cap + lane] = x;
                self.nf[reg.idx as usize].set(lane, false);
            }
            None => self.nf[reg.idx as usize].set(lane, true),
        }
    }

    pub(crate) fn store_i_lane(&mut self, reg: Reg, lane: usize, v: Option<i64>) {
        debug_assert_eq!(reg.class, Class::I);
        match v {
            Some(x) => {
                self.i[reg.idx as usize * self.cap + lane] = x;
                self.ni[reg.idx as usize].set(lane, false);
            }
            None => self.ni[reg.idx as usize].set(lane, true),
        }
    }

    pub(crate) fn store_b_lane(&mut self, reg: Reg, lane: usize, v: Option<bool>) {
        debug_assert_eq!(reg.class, Class::B);
        match v {
            Some(x) => {
                self.b[reg.idx as usize * self.cap + lane] = x;
                self.nb[reg.idx as usize].set(lane, false);
            }
            None => self.nb[reg.idx as usize].set(lane, true),
        }
    }

    /// Reads one lane of a typed register as a boxed [`tilt_data::Value`]
    /// (the root column, boxed once per visited tick at push time).
    pub(crate) fn read_lane(&self, reg: Reg, lane: usize) -> tilt_data::Value {
        use tilt_data::Value;
        match reg.class {
            Class::F if !self.nf[reg.idx as usize].get(lane) => {
                Value::Float(self.f[reg.idx as usize * self.cap + lane])
            }
            Class::I if !self.ni[reg.idx as usize].get(lane) => {
                Value::Int(self.i[reg.idx as usize * self.cap + lane])
            }
            Class::B if !self.nb[reg.idx as usize].get(lane) => {
                Value::Bool(self.b[reg.idx as usize * self.cap + lane])
            }
            _ => Value::Null,
        }
    }

    /// Executes a gated body over lanes `0..k`, where lane `j` is grid
    /// tick `t0 + j·p`. Semantics match the scalar [`exec`] loop lane for
    /// lane; see the module docs for the φ-lane garbage discipline.
    pub(crate) fn exec(&mut self, instrs: &[Instr], t0: i64, p: i64, k: usize) {
        let cap = self.cap;
        debug_assert!(k <= cap);
        for ins in instrs {
            match ins {
                Instr::ConstF { dst, v } => {
                    self.f[*dst as usize * cap..][..k].fill(*v);
                    self.nf[*dst as usize].set_range(0, k, false);
                }
                Instr::ConstI { dst, v } => {
                    self.i[*dst as usize * cap..][..k].fill(*v);
                    self.ni[*dst as usize].set_range(0, k, false);
                }
                Instr::ConstB { dst, v } => {
                    self.b[*dst as usize * cap..][..k].fill(*v);
                    self.nb[*dst as usize].set_range(0, k, false);
                }
                Instr::Null { dst } => match dst.class {
                    Class::F => self.nf[dst.idx as usize].set_range(0, k, true),
                    Class::I => self.ni[dst.idx as usize].set_range(0, k, true),
                    Class::B => self.nb[dst.idx as usize].set_range(0, k, true),
                    Class::V => unreachable!("V register in batched body"),
                },
                Instr::Time { dst } => {
                    let dcol = &mut self.i[*dst as usize * cap..][..k];
                    for (j, d) in dcol.iter_mut().enumerate() {
                        *d = t0 + j as i64 * p;
                    }
                    self.ni[*dst as usize].set_range(0, k, false);
                }
                Instr::Mov { src, dst } => match (src.class, dst.class) {
                    (Class::F, Class::F) => {
                        let (d, h, t_) = split_dst(&mut self.f, cap, dst.idx);
                        d[..k].copy_from_slice(&pick(h, t_, cap, dst.idx, src.idx)[..k]);
                        self.scratch.copy_from(&self.nf[src.idx as usize], k);
                        std::mem::swap(&mut self.nf[dst.idx as usize], &mut self.scratch);
                    }
                    (Class::I, Class::I) => {
                        let (d, h, t_) = split_dst(&mut self.i, cap, dst.idx);
                        d[..k].copy_from_slice(&pick(h, t_, cap, dst.idx, src.idx)[..k]);
                        self.scratch.copy_from(&self.ni[src.idx as usize], k);
                        std::mem::swap(&mut self.ni[dst.idx as usize], &mut self.scratch);
                    }
                    (Class::B, Class::B) => {
                        let (d, h, t_) = split_dst(&mut self.b, cap, dst.idx);
                        d[..k].copy_from_slice(&pick(h, t_, cap, dst.idx, src.idx)[..k]);
                        self.scratch.copy_from(&self.nb[src.idx as usize], k);
                        std::mem::swap(&mut self.nb[dst.idx as usize], &mut self.scratch);
                    }
                    _ => unreachable!("mixed-class Mov in batched body"),
                },
                Instr::ArithF { op, a, b, dst } => {
                    // Branch-free like the scalar float arm: compute on
                    // every lane (garbage included), φ rides the mask.
                    let (d, h, t_) = split_dst(&mut self.f, cap, *dst);
                    let x = pick(h, t_, cap, *dst, *a);
                    let y = pick(h, t_, cap, *dst, *b);
                    arith_f_lanes(*op, &mut d[..k], &x[..k], &y[..k]);
                    self.scratch.set_or(&self.nf[*a as usize], &self.nf[*b as usize], k);
                    std::mem::swap(&mut self.nf[*dst as usize], &mut self.scratch);
                }
                Instr::ArithFC { op, a, c, dst, rev } => {
                    let (d, h, t_) = split_dst(&mut self.f, cap, *dst);
                    let x = pick(h, t_, cap, *dst, *a);
                    let (d, x, c) = (&mut d[..k], &x[..k], *c);
                    match (op, rev) {
                        (ArithOp::Add, _) => lanes1(d, x, |v| v + c),
                        (ArithOp::Sub, false) => lanes1(d, x, |v| v - c),
                        (ArithOp::Sub, true) => lanes1(d, x, |v| c - v),
                        (ArithOp::Mul, _) => lanes1(d, x, |v| v * c),
                        (ArithOp::Div, false) => lanes1(d, x, |v| v / c),
                        (ArithOp::Div, true) => lanes1(d, x, |v| c / v),
                        (ArithOp::Rem, false) => lanes1(d, x, |v| v % c),
                        (ArithOp::Rem, true) => lanes1(d, x, |v| c % v),
                        (ArithOp::Pow, false) => lanes1(d, x, |v| v.powf(c)),
                        (ArithOp::Pow, true) => lanes1(d, x, |v| c.powf(v)),
                        (ArithOp::Min, _) => lanes1(d, x, |v| v.min(c)),
                        (ArithOp::Max, _) => lanes1(d, x, |v| v.max(c)),
                    }
                    self.scratch.copy_from(&self.nf[*a as usize], k);
                    std::mem::swap(&mut self.nf[*dst as usize], &mut self.scratch);
                }
                Instr::MulAddF { x, y, z, dst } => {
                    let (d, h, t_) = split_dst(&mut self.f, cap, *dst);
                    let (a, b, c) = (
                        pick(h, t_, cap, *dst, *x),
                        pick(h, t_, cap, *dst, *y),
                        pick(h, t_, cap, *dst, *z),
                    );
                    // Separate multiply-then-add, not FMA — rounding must
                    // match the scalar tier bit for bit.
                    for j in 0..k {
                        d[j] = a[j] * b[j] + c[j];
                    }
                    self.scratch.set_or(&self.nf[*x as usize], &self.nf[*y as usize], k);
                    self.scratch.or_with(&self.nf[*z as usize], k);
                    std::mem::swap(&mut self.nf[*dst as usize], &mut self.scratch);
                }
                Instr::MulAddFC { x, y, c, dst } => {
                    let (d, h, t_) = split_dst(&mut self.f, cap, *dst);
                    let (a, b) = (pick(h, t_, cap, *dst, *x), pick(h, t_, cap, *dst, *y));
                    let c = *c;
                    for j in 0..k {
                        d[j] = a[j] * b[j] + c;
                    }
                    self.scratch.set_or(&self.nf[*x as usize], &self.nf[*y as usize], k);
                    std::mem::swap(&mut self.nf[*dst as usize], &mut self.scratch);
                }
                Instr::ArithI { op, a, b, dst } => {
                    let (d, h, t_) = split_dst(&mut self.i, cap, *dst);
                    let x = pick(h, t_, cap, *dst, *a);
                    let y = pick(h, t_, cap, *dst, *b);
                    self.scratch.set_or(&self.ni[*a as usize], &self.ni[*b as usize], k);
                    match op {
                        // Wrapping ops cannot trap: compute on garbage
                        // lanes branch-free, mask rides.
                        ArithOp::Add => lanes2(&mut d[..k], &x[..k], &y[..k], i64::wrapping_add),
                        ArithOp::Sub => lanes2(&mut d[..k], &x[..k], &y[..k], i64::wrapping_sub),
                        ArithOp::Mul => lanes2(&mut d[..k], &x[..k], &y[..k], i64::wrapping_mul),
                        ArithOp::Min => lanes2(&mut d[..k], &x[..k], &y[..k], i64::min),
                        ArithOp::Max => lanes2(&mut d[..k], &x[..k], &y[..k], i64::max),
                        // Trapping ops run only on lanes the scalar tier
                        // would run them on (φ lanes hold garbage that
                        // could divide by zero or overflow).
                        ArithOp::Div | ArithOp::Rem | ArithOp::Pow => {
                            for j in 0..k {
                                if !self.scratch.get(j) {
                                    match op.apply_i(x[j], y[j]) {
                                        Some(r) => d[j] = r,
                                        None => self.scratch.set(j, true),
                                    }
                                }
                            }
                        }
                    }
                    std::mem::swap(&mut self.ni[*dst as usize], &mut self.scratch);
                }
                Instr::ArithIC { op, a, c, dst, rev } => {
                    let (d, h, t_) = split_dst(&mut self.i, cap, *dst);
                    let x = pick(h, t_, cap, *dst, *a);
                    self.scratch.copy_from(&self.ni[*a as usize], k);
                    let c = *c;
                    match (op, rev) {
                        (ArithOp::Add, _) => lanes1(&mut d[..k], &x[..k], |v| v.wrapping_add(c)),
                        (ArithOp::Sub, false) => {
                            lanes1(&mut d[..k], &x[..k], |v| v.wrapping_sub(c));
                        }
                        (ArithOp::Sub, true) => lanes1(&mut d[..k], &x[..k], |v| c.wrapping_sub(v)),
                        (ArithOp::Mul, _) => lanes1(&mut d[..k], &x[..k], |v| v.wrapping_mul(c)),
                        (ArithOp::Min, _) => lanes1(&mut d[..k], &x[..k], |v| v.min(c)),
                        (ArithOp::Max, _) => lanes1(&mut d[..k], &x[..k], |v| v.max(c)),
                        (ArithOp::Div | ArithOp::Rem | ArithOp::Pow, rev) => {
                            for j in 0..k {
                                if !self.scratch.get(j) {
                                    let r = if *rev {
                                        op.apply_i(c, x[j])
                                    } else {
                                        op.apply_i(x[j], c)
                                    };
                                    match r {
                                        Some(r) => d[j] = r,
                                        None => self.scratch.set(j, true),
                                    }
                                }
                            }
                        }
                    }
                    std::mem::swap(&mut self.ni[*dst as usize], &mut self.scratch);
                }
                Instr::CmpF { op, a, b, dst } => {
                    let d = &mut self.b[*dst as usize * cap..][..k];
                    let x = &self.f[*a as usize * cap..][..k];
                    let y = &self.f[*b as usize * cap..][..k];
                    cmp_lanes(*op, d, x, y);
                    self.nb[*dst as usize].set_or(&self.nf[*a as usize], &self.nf[*b as usize], k);
                }
                Instr::CmpI { op, a, b, dst } => {
                    let d = &mut self.b[*dst as usize * cap..][..k];
                    let x = &self.i[*a as usize * cap..][..k];
                    let y = &self.i[*b as usize * cap..][..k];
                    cmp_lanes(*op, d, x, y);
                    self.nb[*dst as usize].set_or(&self.ni[*a as usize], &self.ni[*b as usize], k);
                }
                Instr::CmpB { op, a, b, dst } => {
                    let (d, h, t_) = split_dst(&mut self.b, cap, *dst);
                    let x = pick(h, t_, cap, *dst, *a);
                    let y = pick(h, t_, cap, *dst, *b);
                    cmp_lanes(*op, &mut d[..k], &x[..k], &y[..k]);
                    self.scratch.set_or(&self.nb[*a as usize], &self.nb[*b as usize], k);
                    std::mem::swap(&mut self.nb[*dst as usize], &mut self.scratch);
                }
                Instr::CmpFC { op, a, c, dst } => {
                    let d = &mut self.b[*dst as usize * cap..][..k];
                    let x = &self.f[*a as usize * cap..][..k];
                    cmp_lanes_c(*op, d, x, *c);
                    self.nb[*dst as usize].copy_from(&self.nf[*a as usize], k);
                }
                Instr::CmpIC { op, a, c, dst } => {
                    let d = &mut self.b[*dst as usize * cap..][..k];
                    let x = &self.i[*a as usize * cap..][..k];
                    cmp_lanes_c(*op, d, x, *c);
                    self.nb[*dst as usize].copy_from(&self.ni[*a as usize], k);
                }
                Instr::EqF { neg, a, b, dst } => {
                    let d = &mut self.b[*dst as usize * cap..][..k];
                    let x = &self.f[*a as usize * cap..][..k];
                    let y = &self.f[*b as usize * cap..][..k];
                    let neg = *neg;
                    // Bitwise equality, like the scalar EqF / Value::same.
                    lanes2(d, x, y, |p: f64, q: f64| (p.to_bits() == q.to_bits()) != neg);
                    self.nb[*dst as usize].set_or(&self.nf[*a as usize], &self.nf[*b as usize], k);
                }
                Instr::EqI { neg, a, b, dst } => {
                    let d = &mut self.b[*dst as usize * cap..][..k];
                    let x = &self.i[*a as usize * cap..][..k];
                    let y = &self.i[*b as usize * cap..][..k];
                    let neg = *neg;
                    lanes2(d, x, y, |p: i64, q: i64| (p == q) != neg);
                    self.nb[*dst as usize].set_or(&self.ni[*a as usize], &self.ni[*b as usize], k);
                }
                Instr::EqB { neg, a, b, dst } => {
                    let (d, h, t_) = split_dst(&mut self.b, cap, *dst);
                    let x = pick(h, t_, cap, *dst, *a);
                    let y = pick(h, t_, cap, *dst, *b);
                    let neg = *neg;
                    lanes2(&mut d[..k], &x[..k], &y[..k], |p: bool, q: bool| (p == q) != neg);
                    self.scratch.set_or(&self.nb[*a as usize], &self.nb[*b as usize], k);
                    std::mem::swap(&mut self.nb[*dst as usize], &mut self.scratch);
                }
                Instr::AndB { a, b, dst } => {
                    let (d, h, t_) = split_dst(&mut self.b, cap, *dst);
                    let x = pick(h, t_, cap, *dst, *a);
                    let y = pick(h, t_, cap, *dst, *b);
                    let (ma, mb) = (&self.nb[*a as usize], &self.nb[*b as usize]);
                    if ma.none_null(k) && mb.none_null(k) {
                        // One branch per 64 lanes bought the branch-free arm.
                        lanes2(&mut d[..k], &x[..k], &y[..k], |p, q| p && q);
                        self.scratch.set_range(0, k, false);
                    } else {
                        for j in 0..k {
                            let (xn, yn) = (ma.get(j), mb.get(j));
                            // Kleene: false ∧ φ = false.
                            if (!xn && !x[j]) || (!yn && !y[j]) {
                                d[j] = false;
                                self.scratch.set(j, false);
                            } else if !xn && !yn {
                                d[j] = true;
                                self.scratch.set(j, false);
                            } else {
                                self.scratch.set(j, true);
                            }
                        }
                    }
                    std::mem::swap(&mut self.nb[*dst as usize], &mut self.scratch);
                }
                Instr::OrB { a, b, dst } => {
                    let (d, h, t_) = split_dst(&mut self.b, cap, *dst);
                    let x = pick(h, t_, cap, *dst, *a);
                    let y = pick(h, t_, cap, *dst, *b);
                    let (ma, mb) = (&self.nb[*a as usize], &self.nb[*b as usize]);
                    if ma.none_null(k) && mb.none_null(k) {
                        lanes2(&mut d[..k], &x[..k], &y[..k], |p, q| p || q);
                        self.scratch.set_range(0, k, false);
                    } else {
                        for j in 0..k {
                            let (xn, yn) = (ma.get(j), mb.get(j));
                            // Kleene: true ∨ φ = true.
                            if (!xn && x[j]) || (!yn && y[j]) {
                                d[j] = true;
                                self.scratch.set(j, false);
                            } else if !xn && !yn {
                                d[j] = false;
                                self.scratch.set(j, false);
                            } else {
                                self.scratch.set(j, true);
                            }
                        }
                    }
                    std::mem::swap(&mut self.nb[*dst as usize], &mut self.scratch);
                }
                Instr::NotB { a, dst } => {
                    let (d, h, t_) = split_dst(&mut self.b, cap, *dst);
                    let x = pick(h, t_, cap, *dst, *a);
                    lanes1(&mut d[..k], &x[..k], |p: bool| !p);
                    self.scratch.copy_from(&self.nb[*a as usize], k);
                    std::mem::swap(&mut self.nb[*dst as usize], &mut self.scratch);
                }
                Instr::NegF { a, dst } => {
                    let (d, h, t_) = split_dst(&mut self.f, cap, *dst);
                    let x = pick(h, t_, cap, *dst, *a);
                    lanes1(&mut d[..k], &x[..k], |v: f64| -v);
                    self.scratch.copy_from(&self.nf[*a as usize], k);
                    std::mem::swap(&mut self.nf[*dst as usize], &mut self.scratch);
                }
                Instr::AbsF { a, dst } => {
                    let (d, h, t_) = split_dst(&mut self.f, cap, *dst);
                    let x = pick(h, t_, cap, *dst, *a);
                    lanes1(&mut d[..k], &x[..k], f64::abs);
                    self.scratch.copy_from(&self.nf[*a as usize], k);
                    std::mem::swap(&mut self.nf[*dst as usize], &mut self.scratch);
                }
                Instr::SqrtF { a, dst } => {
                    let (d, h, t_) = split_dst(&mut self.f, cap, *dst);
                    let x = pick(h, t_, cap, *dst, *a);
                    lanes1(&mut d[..k], &x[..k], f64::sqrt);
                    self.scratch.copy_from(&self.nf[*a as usize], k);
                    std::mem::swap(&mut self.nf[*dst as usize], &mut self.scratch);
                }
                Instr::NegI { a, dst } => {
                    let (d, h, t_) = split_dst(&mut self.i, cap, *dst);
                    let x = pick(h, t_, cap, *dst, *a);
                    self.scratch.copy_from(&self.ni[*a as usize], k);
                    // `-i64::MIN` traps in debug: φ-lane garbage must not
                    // reach it, so negate only live lanes.
                    if self.scratch.none_null(k) {
                        lanes1(&mut d[..k], &x[..k], |v: i64| -v);
                    } else {
                        for j in 0..k {
                            if !self.scratch.get(j) {
                                d[j] = -x[j];
                            }
                        }
                    }
                    std::mem::swap(&mut self.ni[*dst as usize], &mut self.scratch);
                }
                Instr::AbsI { a, dst } => {
                    let (d, h, t_) = split_dst(&mut self.i, cap, *dst);
                    let x = pick(h, t_, cap, *dst, *a);
                    self.scratch.copy_from(&self.ni[*a as usize], k);
                    if self.scratch.none_null(k) {
                        lanes1(&mut d[..k], &x[..k], i64::abs);
                    } else {
                        for j in 0..k {
                            if !self.scratch.get(j) {
                                d[j] = x[j].abs();
                            }
                        }
                    }
                    std::mem::swap(&mut self.ni[*dst as usize], &mut self.scratch);
                }
                Instr::I2F { a, dst } => {
                    let d = &mut self.f[*dst as usize * cap..][..k];
                    let x = &self.i[*a as usize * cap..][..k];
                    lanes1(d, x, |v: i64| v as f64);
                    self.nf[*dst as usize].copy_from(&self.ni[*a as usize], k);
                }
                Instr::F2I { a, dst } => {
                    let d = &mut self.i[*dst as usize * cap..][..k];
                    let x = &self.f[*a as usize * cap..][..k];
                    // Saturating cast: safe on φ-lane garbage, mask rides.
                    lanes1(d, x, |v: f64| v as i64);
                    self.ni[*dst as usize].copy_from(&self.nf[*a as usize], k);
                }
                Instr::IsNull { a, dst } => {
                    let mask = match a.class {
                        Class::F => &self.nf[a.idx as usize],
                        Class::I => &self.ni[a.idx as usize],
                        Class::B => &self.nb[a.idx as usize],
                        Class::V => unreachable!("V register in batched body"),
                    };
                    let d = &mut self.b[*dst as usize * cap..][..k];
                    if mask.none_null(k) {
                        d.fill(false);
                    } else if mask.all_null(k) {
                        d.fill(true);
                    } else {
                        for (j, d) in d.iter_mut().enumerate() {
                            *d = mask.get(j);
                        }
                    }
                    self.nb[*dst as usize].set_range(0, k, false);
                }
                Instr::Select { cond, t, f, dst } => {
                    let ccol = &self.b[*cond as usize * cap..];
                    let cmask = &self.nb[*cond as usize];
                    match dst.class {
                        Class::F => {
                            let (d, h, t_) = split_dst(&mut self.f, cap, dst.idx);
                            let src = |r: Option<Reg>| {
                                r.map(|r| {
                                    (pick(h, t_, cap, dst.idx, r.idx), &self.nf[r.idx as usize])
                                })
                            };
                            select_lanes(k, ccol, cmask, src(*t), src(*f), d, &mut self.scratch);
                            std::mem::swap(&mut self.nf[dst.idx as usize], &mut self.scratch);
                        }
                        Class::I => {
                            let (d, h, t_) = split_dst(&mut self.i, cap, dst.idx);
                            let src = |r: Option<Reg>| {
                                r.map(|r| {
                                    (pick(h, t_, cap, dst.idx, r.idx), &self.ni[r.idx as usize])
                                })
                            };
                            select_lanes(k, ccol, cmask, src(*t), src(*f), d, &mut self.scratch);
                            std::mem::swap(&mut self.ni[dst.idx as usize], &mut self.scratch);
                        }
                        Class::B => {
                            let (d, h, t_) = split_dst(&mut self.b, cap, dst.idx);
                            let src = |r: Option<Reg>| {
                                r.map(|r| {
                                    (pick(h, t_, cap, dst.idx, r.idx), &self.nb[r.idx as usize])
                                })
                            };
                            // `cond` lives in the same file as the `B`
                            // destination; the gate proved them distinct.
                            let ccol = pick(h, t_, cap, dst.idx, *cond);
                            select_lanes(k, ccol, cmask, src(*t), src(*f), d, &mut self.scratch);
                            std::mem::swap(&mut self.nb[dst.idx as usize], &mut self.scratch);
                        }
                        Class::V => unreachable!("V register in batched body"),
                    }
                }
                Instr::ConstV { .. }
                | Instr::Box { .. }
                | Instr::BinV { .. }
                | Instr::UnV { .. }
                | Instr::Field { .. }
                | Instr::MakeTuple { .. }
                | Instr::Jump { .. }
                | Instr::Branch { .. }
                | Instr::BranchV { .. } => {
                    unreachable!("instruction rejected by the batch gate")
                }
            }
        }
    }
}

/// Sets a whole mask to one flag value.
fn set_whole(m: &mut NullMask, null: bool) {
    if null {
        m.set_all();
    } else {
        m.clear_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_lanes_three_way() {
        let cond = [true, false, true, false];
        let mut cmask = NullMask::new(4);
        cmask.clear_all();
        cmask.set(3, true); // φ condition → φ result
        let tcol = [1.0, 2.0, 3.0, 4.0];
        let mut tmask = NullMask::new(4);
        tmask.clear_all();
        tmask.set(2, true); // branch value itself φ
        let mut d = [0.0f64; 4];
        let mut dmask = NullMask::new(4);
        select_lanes(
            4,
            &cond,
            &cmask,
            Some((&tcol[..], &tmask)),
            None, // else-branch is φ
            &mut d,
            &mut dmask,
        );
        assert_eq!(d[0], 1.0);
        assert!(!dmask.get(0));
        assert!(dmask.get(1), "false cond with None else-branch is φ");
        assert!(dmask.get(2), "selected branch was φ");
        assert!(dmask.get(3), "φ cond is φ");
    }

    #[test]
    fn split_dst_resolves_columns() {
        let mut file: Vec<i64> = (0..12).collect(); // 3 columns × cap 4
        let (d, h, t) = split_dst(&mut file, 4, 1);
        assert_eq!(d, &[4, 5, 6, 7]);
        assert_eq!(pick(h, t, 4, 1, 0), &[0, 1, 2, 3]);
        assert_eq!(pick(h, t, 4, 1, 2), &[8, 9, 10, 11]);
    }

    #[test]
    fn arith_lanes_match_scalar_ops() {
        let a = [1.0, -2.0, 3.5, f64::NAN];
        let b = [0.5, 4.0, -1.0, 2.0];
        for op in [
            ArithOp::Add,
            ArithOp::Sub,
            ArithOp::Mul,
            ArithOp::Div,
            ArithOp::Rem,
            ArithOp::Pow,
            ArithOp::Min,
            ArithOp::Max,
        ] {
            let mut d = [0.0; 4];
            arith_f_lanes(op, &mut d, &a, &b);
            for j in 0..4 {
                let want = op.apply_f(a[j], b[j]);
                assert!(d[j].to_bits() == want.to_bits(), "{op:?} lane {j}: {} vs {want}", d[j]);
            }
        }
    }
}
