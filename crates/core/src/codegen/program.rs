//! Closure-compiled expression programs.
//!
//! This is the reproduction's stand-in for the paper's LLVM lowering (see
//! DESIGN.md, substitution 1): the expression tree of a fused temporal
//! expression is *compiled once* into a tree of composed Rust closures. At
//! run time there is no IR walking, matching, or environment lookup by name —
//! each node is a direct virtual call reading pre-resolved slots:
//!
//! * point-access slots, filled by the kernel from input cursors;
//! * reduce slots, filled from incremental reduction state;
//! * variable slots, written by compiled `let` nodes.

use std::collections::HashMap;
use std::sync::Arc;

use tilt_data::Value;

use crate::error::{CompileError, Result};
use crate::ir::{Expr, ReduceOp, TObjId, VarId};

/// The runtime register file of a compiled program.
#[derive(Clone, Debug, Default)]
pub struct EvalCtx {
    /// The current evaluation time in ticks (read by `Expr::Time`).
    pub t: i64,
    /// Values of point accesses, one per [`PointSpec`].
    pub points: Vec<Value>,
    /// Results of window reductions, one per [`ReduceSpec`].
    pub reduces: Vec<Value>,
    /// Let-bound (and map-element) variable slots.
    pub vars: Vec<Value>,
}

impl EvalCtx {
    fn for_program(p: &Program) -> EvalCtx {
        EvalCtx {
            t: 0,
            points: vec![Value::Null; p.points.len()],
            reduces: vec![Value::Null; p.reduces.len()],
            vars: vec![Value::Null; p.n_vars],
        }
    }
}

/// A compiled expression node: reads the context, returns a value.
pub type EvalFn = Arc<dyn Fn(&mut EvalCtx) -> Value + Send + Sync>;

/// A point access `~obj[t + offset]` resolved by the kernel each iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PointSpec {
    /// Source object.
    pub obj: TObjId,
    /// Offset from the evaluation time.
    pub offset: i64,
}

/// A compiled per-element map fused into a reduction.
#[derive(Clone)]
pub struct MapFn {
    /// Variable slot the element value is written to before evaluation.
    pub var_slot: usize,
    /// The compiled map body.
    pub eval: EvalFn,
}

impl std::fmt::Debug for MapFn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MapFn").field("var_slot", &self.var_slot).finish()
    }
}

/// A window reduction resolved by the kernel's incremental reduce state.
#[derive(Clone, Debug)]
pub struct ReduceSpec {
    /// The reduction operation.
    pub op: ReduceOp,
    /// Source object.
    pub obj: TObjId,
    /// Window start offset (exclusive, relative to evaluation time).
    pub lo: i64,
    /// Window end offset (inclusive, relative to evaluation time).
    pub hi: i64,
    /// Optional fused element transform.
    pub map: Option<MapFn>,
}

/// A fully compiled temporal-expression body.
#[derive(Clone)]
pub struct Program {
    /// The compiled root expression.
    pub eval: EvalFn,
    /// Point-access slots, in slot order.
    pub points: Vec<PointSpec>,
    /// Reduce slots, in slot order.
    pub reduces: Vec<ReduceSpec>,
    /// Number of variable slots.
    pub n_vars: usize,
}

impl Program {
    /// Creates a fresh register file sized for this program.
    pub fn new_ctx(&self) -> EvalCtx {
        EvalCtx::for_program(self)
    }

    /// Evaluates the program against a prepared context.
    #[inline]
    pub fn run(&self, ctx: &mut EvalCtx) -> Value {
        (self.eval)(ctx)
    }
}

impl std::fmt::Debug for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Program")
            .field("points", &self.points)
            .field("reduces", &self.reduces)
            .field("n_vars", &self.n_vars)
            .finish()
    }
}

/// Compiles an expression body into a [`Program`].
///
/// # Errors
///
/// Returns [`CompileError::UnboundVar`] for out-of-scope variables and
/// [`CompileError::Invalid`] if a fused map contains temporal accesses
/// (the fusion pass never produces such maps).
pub fn compile(body: &Expr) -> Result<Program> {
    let mut cc = Compiler::default();
    let eval = cc.compile(body)?;
    Ok(Program { eval, points: cc.points, reduces: cc.reduces, n_vars: cc.n_vars })
}

#[derive(Default)]
struct Compiler {
    points: Vec<PointSpec>,
    reduces: Vec<ReduceSpec>,
    var_slots: HashMap<VarId, usize>,
    n_vars: usize,
}

impl Compiler {
    fn point_slot(&mut self, obj: TObjId, offset: i64) -> usize {
        let spec = PointSpec { obj, offset };
        if let Some(i) = self.points.iter().position(|p| *p == spec) {
            return i;
        }
        self.points.push(spec);
        self.points.len() - 1
    }

    fn var_slot(&mut self, var: VarId) -> usize {
        if let Some(&s) = self.var_slots.get(&var) {
            return s;
        }
        let s = self.n_vars;
        self.n_vars += 1;
        self.var_slots.insert(var, s);
        s
    }

    fn compile(&mut self, e: &Expr) -> Result<EvalFn> {
        Ok(match e {
            Expr::Const(v) => {
                let v = v.clone();
                Arc::new(move |_| v.clone())
            }
            Expr::Var(v) => {
                let s = *self
                    .var_slots
                    .get(v)
                    .ok_or_else(|| CompileError::UnboundVar(v.to_string()))?;
                Arc::new(move |ctx| ctx.vars[s].clone())
            }
            Expr::Time => Arc::new(|ctx| Value::Int(ctx.t)),
            Expr::Unary(op, a) => {
                let op = *op;
                let fa = self.compile(a)?;
                Arc::new(move |ctx| op.apply(&fa(ctx)))
            }
            Expr::Binary(op, a, b) => {
                let op = *op;
                let fa = self.compile(a)?;
                let fb = self.compile(b)?;
                Arc::new(move |ctx| op.apply(&fa(ctx), &fb(ctx)))
            }
            Expr::If(c, t, f) => {
                let fc = self.compile(c)?;
                let ft = self.compile(t)?;
                let ff = self.compile(f)?;
                // Lazy branches: only the taken side is evaluated.
                Arc::new(move |ctx| match fc(ctx) {
                    Value::Bool(true) => ft(ctx),
                    Value::Bool(false) => ff(ctx),
                    _ => Value::Null,
                })
            }
            Expr::Let { var, value, body } => {
                let fv = self.compile(value)?;
                let s = self.var_slot(*var);
                let fb = self.compile(body)?;
                Arc::new(move |ctx| {
                    let v = fv(ctx);
                    ctx.vars[s] = v;
                    fb(ctx)
                })
            }
            Expr::Field(a, i) => {
                let fa = self.compile(a)?;
                let i = *i;
                Arc::new(move |ctx| fa(ctx).field(i))
            }
            Expr::Tuple(items) => {
                let fs: Result<Vec<EvalFn>> = items.iter().map(|it| self.compile(it)).collect();
                let fs = fs?;
                Arc::new(move |ctx| Value::tuple(fs.iter().map(|f| f(ctx))))
            }
            Expr::At { obj, offset } => {
                let s = self.point_slot(*obj, *offset);
                Arc::new(move |ctx| ctx.points[s].clone())
            }
            Expr::Reduce { op, window } => {
                let map = match &window.map {
                    Some((var, body)) => {
                        ensure_scalar_map(body)?;
                        let var_slot = self.var_slot(*var);
                        let eval = self.compile(body)?;
                        Some(MapFn { var_slot, eval })
                    }
                    None => None,
                };
                self.reduces.push(ReduceSpec {
                    op: op.clone(),
                    obj: window.obj,
                    lo: window.lo,
                    hi: window.hi,
                    map,
                });
                let s = self.reduces.len() - 1;
                Arc::new(move |ctx| ctx.reduces[s].clone())
            }
        })
    }
}

fn ensure_scalar_map(body: &Expr) -> Result<()> {
    let mut ok = true;
    body.walk(&mut |e| {
        if matches!(e, Expr::At { .. } | Expr::Reduce { .. }) {
            ok = false;
        }
    });
    if ok {
        Ok(())
    } else {
        Err(CompileError::Invalid("fused reduce map contains temporal accesses".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::WindowRef;

    fn obj(i: u32) -> TObjId {
        TObjId(i)
    }

    #[test]
    fn compiles_and_evaluates_scalar_expression() {
        // (p0 + 1) > 3 ? p0 : φ
        let e = Expr::if_else(
            Expr::at(obj(0)).add(Expr::c(1i64)).gt(Expr::c(3i64)),
            Expr::at(obj(0)),
            Expr::null(),
        );
        let p = compile(&e).unwrap();
        assert_eq!(p.points.len(), 1); // deduplicated access
        let mut ctx = p.new_ctx();
        ctx.points[0] = Value::Int(5);
        assert_eq!(p.run(&mut ctx), Value::Int(5));
        ctx.points[0] = Value::Int(2);
        assert_eq!(p.run(&mut ctx), Value::Null);
        ctx.points[0] = Value::Null;
        assert_eq!(p.run(&mut ctx), Value::Null); // φ condition yields φ
    }

    #[test]
    fn point_slots_deduplicate_by_offset() {
        let e = Expr::at(obj(0)).add(Expr::at_off(obj(0), -5)).add(Expr::at(obj(0)));
        let p = compile(&e).unwrap();
        assert_eq!(p.points.len(), 2);
    }

    #[test]
    fn let_bindings_use_slots() {
        let v = VarId(3);
        let e = Expr::Let {
            var: v,
            value: Box::new(Expr::at(obj(0)).mul(Expr::c(2i64))),
            body: Box::new(Expr::Var(v).add(Expr::Var(v))),
        };
        let p = compile(&e).unwrap();
        assert_eq!(p.n_vars, 1);
        let mut ctx = p.new_ctx();
        ctx.points[0] = Value::Int(4);
        assert_eq!(p.run(&mut ctx), Value::Int(16));
    }

    #[test]
    fn reduce_slots_and_maps() {
        let v = VarId(0);
        let e = Expr::Reduce {
            op: ReduceOp::Sum,
            window: WindowRef {
                obj: obj(1),
                lo: -10,
                hi: 0,
                map: Some((v, Box::new(Expr::Var(v).mul(Expr::Var(v))))),
            },
        };
        let p = compile(&e).unwrap();
        assert_eq!(p.reduces.len(), 1);
        let spec = &p.reduces[0];
        assert_eq!((spec.lo, spec.hi), (-10, 0));
        let map = spec.map.as_ref().unwrap();
        let mut ctx = p.new_ctx();
        ctx.vars[map.var_slot] = Value::Float(3.0);
        assert_eq!((map.eval)(&mut ctx), Value::Float(9.0));
    }

    #[test]
    fn unbound_var_is_an_error() {
        let e = Expr::Var(VarId(9));
        assert!(matches!(compile(&e), Err(CompileError::UnboundVar(_))));
    }

    #[test]
    fn lazy_if_avoids_untaken_branch_effects() {
        // Division by zero in the untaken branch must not be evaluated:
        // with eager branches Int(1)/Int(0) would still produce Null, so
        // instead prove laziness by counting evaluations through a var trick:
        // if(true) never reads the else branch's slot.
        let e = Expr::if_else(Expr::c(true), Expr::c(1i64), Expr::at(obj(0)));
        let p = compile(&e).unwrap();
        let mut ctx = p.new_ctx();
        // point slot left Null; result must still be 1.
        assert_eq!(p.run(&mut ctx), Value::Int(1));
    }
}
