//! Code generation: lowering temporal expressions to executable kernels
//! (paper §6.1).
//!
//! The pipeline is `TempExpr` → [`Program`] (closure-compiled expression
//! body, with point-access and reduce slots) → [`Kernel`] (the synthesized
//! change-point-driven loop). See DESIGN.md substitution 1 for how this
//! stands in for the paper's LLVM JIT.

mod kernel;
mod program;
mod reduce;

pub use kernel::Kernel;
pub use program::{compile, EvalCtx, EvalFn, MapFn, PointSpec, Program, ReduceSpec};
pub use reduce::ReduceRunner;

use crate::error::Result;
use crate::ir::Query;

/// Lowers every temporal expression of `query` into a kernel, in execution
/// (topological) order.
pub fn lower(query: &Query) -> Result<Vec<Kernel>> {
    query.exprs().iter().map(|te| Kernel::new(te, query.name(te.output))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{DataType, Expr, ReduceOp, TDom};

    #[test]
    fn lower_produces_one_kernel_per_expression() {
        let mut b = Query::builder();
        let input = b.input("in", DataType::Float);
        let avg =
            b.temporal("avg", TDom::every_tick(), Expr::reduce_window(ReduceOp::Mean, input, 10));
        let out = b.temporal("out", TDom::every_tick(), Expr::at(avg).mul(Expr::c(2.0)));
        let q = b.finish(out).unwrap();
        let kernels = lower(&q).unwrap();
        assert_eq!(kernels.len(), 2);
        assert_eq!(kernels[0].name, "avg");
        assert_eq!(kernels[1].dependencies(), vec![avg]);
    }
}
