//! Code generation: lowering temporal expressions to executable kernels
//! (paper §6.1).
//!
//! The pipeline is `TempExpr` → executable body → [`Kernel`] (the
//! synthesized change-point-driven loop). Kernel bodies exist in **three
//! tiers**:
//!
//! * the *interpreted* tier ([`Program`]) — a tree of composed closures
//!   matching on the dynamic [`tilt_data::Value`] enum at every node; the
//!   reference semantics;
//! * the *per-tick typed* tier (the `compiled` module, built by
//!   [`lower_typed`]) — the type checker assigns every sub-expression a
//!   static type and the body is monomorphized into register bytecode
//!   over unboxed `f64`/`i64`/`bool` files with an explicit null mask for
//!   φ, falling back to boxed `Value` registers only for `Str`/`Tuple`
//!   subtrees, custom reductions, and genuinely dynamic values;
//! * the *batched* tier (the `batch` module) — the same bytecode executed
//!   over a **run** of grid ticks at once: columnar registers, one
//!   dispatch per instruction per run instead of per tick, word-level
//!   φ masks (one branch per 64 lanes), and plain slice loops the
//!   compiler auto-vectorizes. Only fully typed straight-line bodies
//!   qualify (see `batch::batchable`); everything else transparently
//!   executes per-tick.
//!
//! All tiers share one loop skeleton, one slot layout, and one set of
//! incremental reduce runners, so their outputs are byte-identical; the
//! typed tiers simply replace per-tick enum interpretation with typed
//! register traffic, and the batched tier amortizes the remaining
//! dispatch. See DESIGN.md substitution 1 for how this stands in for the
//! paper's LLVM JIT.

mod batch;
pub(crate) mod compiled;
mod kernel;
mod program;
mod reduce;

pub use kernel::{Kernel, KernelProfile};
pub use program::{compile, EvalCtx, EvalFn, MapFn, PointSpec, Program, ReduceSpec};
pub use reduce::ReduceRunner;

use std::collections::HashMap;

use crate::error::Result;
use crate::ir::typeck::TypeInfo;
use crate::ir::Query;

/// Lowers every temporal expression of `query` into an interpreter-tier
/// kernel, in execution (topological) order.
pub fn lower(query: &Query) -> Result<Vec<Kernel>> {
    query.exprs().iter().map(|te| Kernel::new(te, query.name(te.output))).collect()
}

/// Lowers every temporal expression of `query` into a kernel carrying the
/// interpreter body plus the typed register bytecode, in execution
/// (topological) order. `types` must come from [`crate::ir::typecheck`]
/// over this exact query. When `batched` is set, kernels whose bodies pass
/// the batch gate drive the bytecode over runs of ticks; the rest execute
/// per-tick.
///
/// Object register classes thread through the kernel chain: a kernel whose
/// body stayed dynamic (or whose output type is genuinely runtime-varying)
/// produces a `V`-classed object, and downstream kernels read it through
/// boxed registers — so fallback is per-subtree, never whole-query.
pub fn lower_typed(query: &Query, types: &TypeInfo, batched: bool) -> Result<Vec<Kernel>> {
    let mut classes: HashMap<crate::ir::TObjId, compiled::Class> = HashMap::new();
    for &input in query.inputs() {
        let class = types.object_type(input).map_or(compiled::Class::V, compiled::Class::of_type);
        classes.insert(input, class);
    }
    let mut kernels = Vec::with_capacity(query.exprs().len());
    for te in query.exprs() {
        let kernel = Kernel::with_types(te, query.name(te.output), types, &classes, batched)?;
        classes.insert(te.output, kernel.output_class());
        kernels.push(kernel);
    }
    Ok(kernels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{DataType, Expr, ReduceOp, TDom};

    #[test]
    fn lower_produces_one_kernel_per_expression() {
        let mut b = Query::builder();
        let input = b.input("in", DataType::Float);
        let avg =
            b.temporal("avg", TDom::every_tick(), Expr::reduce_window(ReduceOp::Mean, input, 10));
        let out = b.temporal("out", TDom::every_tick(), Expr::at(avg).mul(Expr::c(2.0)));
        let q = b.finish(out).unwrap();
        let kernels = lower(&q).unwrap();
        assert_eq!(kernels.len(), 2);
        assert_eq!(kernels[0].name, "avg");
        assert_eq!(kernels[1].dependencies(), vec![avg]);
    }
}
