//! Query execution: serial, data-parallel, and batched streaming modes
//! (paper §6.2).
//!
//! The [`Compiler`] drives the full pipeline (type check → optimize →
//! boundary-resolve → lower) and produces a [`CompiledQuery`]. Execution is
//! synchronization-free data parallelism: the time range is cut at
//! grid-aligned boundaries, every worker runs the whole kernel chain on its
//! partition — re-reading the boundary-resolved lookback region of the
//! shared, read-only input buffers — and the partition outputs are
//! concatenated (Fig. 6).

use std::borrow::Borrow;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tilt_data::{BufPool, Event, SnapshotBuf, Time, TimeRange, Value};

use crate::analysis::{resolve_boundaries, Boundary};
use crate::codegen::{lower, lower_typed, Kernel, KernelProfile};
use crate::error::Result;
use crate::ir::{typecheck, Query};
use crate::opt::Optimizer;

/// Which kernel-body execution tier the compiler emits (see
/// [`crate::codegen`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecTier {
    /// Typed register bytecode executed over *runs* of grid ticks at once:
    /// columnar registers, word-level φ masks, one dispatch per instruction
    /// per run (the default). Kernels whose bodies don't pass the batch
    /// gate transparently execute per-tick, so this tier is always safe to
    /// select.
    #[default]
    Batched,
    /// Typed register bytecode over unboxed values, dispatched once per
    /// grid tick, with per-subtree fallback to boxed `Value` operations —
    /// the scalar reference for the batched tier.
    Compiled,
    /// The closure-tree interpreter over dynamic `Value`s only — the
    /// reference tier, kept selectable for differential testing and the
    /// `kernel_hot` tier-vs-tier bench.
    Interpreted,
}

/// Compiles TiLT IR queries into executable form.
///
/// ```
/// use tilt_core::{Compiler, ir::{Query, DataType, Expr, TDom}};
/// let mut b = Query::builder();
/// let input = b.input("in", DataType::Float);
/// let out = b.temporal("out", TDom::every_tick(), Expr::at(input).mul(Expr::c(2.0)));
/// let query = b.finish(out).unwrap();
/// let compiled = Compiler::new().compile(&query).unwrap();
/// assert_eq!(compiled.num_kernels(), 1);
/// assert!(compiled.fully_typed()); // numeric plan: no fallback surface
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Compiler {
    optimizer: Optimizer,
    tier: ExecTier,
}

impl Compiler {
    /// A compiler with the full optimization pipeline and the batched
    /// typed execution tier — the default configuration.
    pub fn new() -> Self {
        Compiler { optimizer: Optimizer::full(), tier: ExecTier::Batched }
    }

    /// A compiler with all optimizations disabled: one kernel per operator,
    /// intermediates materialized — the "TiLT UnOpt" configuration of the
    /// Fig. 10 ablation. (The execution tier is orthogonal and stays
    /// [`ExecTier::Batched`].)
    pub fn unoptimized() -> Self {
        Compiler { optimizer: Optimizer::none(), tier: ExecTier::Batched }
    }

    /// A fully optimized compiler pinned to the interpreter tier — the
    /// reference executor the differential suites compare the typed tier
    /// against.
    pub fn interpreted() -> Self {
        Compiler { optimizer: Optimizer::full(), tier: ExecTier::Interpreted }
    }

    /// A compiler with a custom pass configuration.
    pub fn with_optimizer(optimizer: Optimizer) -> Self {
        Compiler { optimizer, tier: ExecTier::Batched }
    }

    /// Selects the kernel-body execution tier.
    pub fn with_tier(mut self, tier: ExecTier) -> Self {
        self.tier = tier;
        self
    }

    /// Compiles `query` through the whole pipeline.
    ///
    /// # Errors
    ///
    /// Propagates type errors and structural errors from any stage.
    pub fn compile(&self, query: &Query) -> Result<CompiledQuery> {
        typecheck(query)?;
        let optimized = self.optimizer.optimize(query)?;
        let types = typecheck(&optimized)?;
        let boundary = resolve_boundaries(&optimized);
        let kernels = match self.tier {
            ExecTier::Batched => lower_typed(&optimized, &types, true)?,
            ExecTier::Compiled => lower_typed(&optimized, &types, false)?,
            ExecTier::Interpreted => lower(&optimized)?,
        };
        let n_slots = slot_count(&optimized);
        Ok(CompiledQuery { query: optimized, kernels, boundary, n_slots, tier: self.tier })
    }
}

fn slot_count(q: &Query) -> usize {
    let max_input = q.inputs().iter().map(|o| o.index()).max().unwrap_or(0);
    let max_expr = q.exprs().iter().map(|e| e.output.index()).max().unwrap_or(0);
    max_input.max(max_expr) + 1
}

/// Execution statistics returned by the timed entry points.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecStats {
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// Number of snapshots in the query output.
    pub output_spans: usize,
}

/// A fully compiled, executable query.
pub struct CompiledQuery {
    query: Query,
    kernels: Vec<Kernel>,
    boundary: Boundary,
    n_slots: usize,
    tier: ExecTier,
}

impl std::fmt::Debug for CompiledQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledQuery")
            .field("kernels", &self.kernels.iter().map(|k| &k.name).collect::<Vec<_>>())
            .finish()
    }
}

impl CompiledQuery {
    /// The optimized query this executable was lowered from.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The lowered kernels in execution (topological) order.
    pub(crate) fn kernels(&self) -> &[Kernel] {
        &self.kernels
    }

    /// Size of the object-indexed slot table used during execution.
    pub(crate) fn n_slots(&self) -> usize {
        self.n_slots
    }

    /// The resolved boundary conditions.
    pub fn boundary(&self) -> &Boundary {
        &self.boundary
    }

    /// Number of kernels (1 when the query fused completely).
    pub fn num_kernels(&self) -> usize {
        self.kernels.len()
    }

    /// The execution tier this query was compiled for.
    pub fn tier(&self) -> ExecTier {
        self.tier
    }

    /// Number of kernels carrying a typed (compiled-tier) body.
    pub fn compiled_kernels(&self) -> usize {
        self.kernels.iter().filter(|k| k.is_compiled()).count()
    }

    /// Whether every kernel lowered to the typed tier with *zero* fallback
    /// surface — no boxed registers, no dynamic operations, no custom
    /// reductions. Fully numeric plans satisfy this; the `kernel_hot`
    /// bench guardrail pins it.
    pub fn fully_typed(&self) -> bool {
        self.tier != ExecTier::Interpreted && self.kernels.iter().all(Kernel::is_fully_typed)
    }

    /// Number of kernels whose typed body executes batched (runs of ticks
    /// per dispatch). Zero unless compiled at [`ExecTier::Batched`]; on
    /// that tier, kernels rejected by the batch gate execute per-tick and
    /// don't count.
    pub fn batched_kernels(&self) -> usize {
        self.kernels.iter().filter(|k| k.is_batched()).count()
    }

    /// Total enum-touching (fallback) operations executed by the typed
    /// tier across every run of this query so far. Stays 0 for
    /// [`CompiledQuery::fully_typed`] plans; interpreter-only kernels
    /// inside a compiled query count one per run.
    pub fn fallback_ops(&self) -> u64 {
        self.kernels.iter().map(Kernel::fallback_ops).sum()
    }

    /// Total fused window-map executions across every run of this query so
    /// far. The map-once-per-element invariant bounds this by the number
    /// of elements accumulated into windows — Subtract-on-Evict re-uses
    /// cached mapped values instead of re-running maps, so this grows
    /// linearly with input, never with input × window size. The
    /// `kernel_hot` bench guardrail pins the ratio.
    pub fn map_runs(&self) -> u64 {
        self.kernels.iter().map(Kernel::map_runs).sum()
    }

    /// Turns per-invocation wall timing on (or off) for every kernel.
    /// Disabled profiling costs one relaxed bool load per kernel
    /// invocation; enabled, each invocation also pays two clock reads
    /// and two relaxed adds. The counters live in the kernels
    /// themselves, so shared-group execution and clones of this query's
    /// `Arc` all feed the same profile.
    pub fn set_profiling(&self, on: bool) {
        for k in &self.kernels {
            k.set_profiling(on);
        }
    }

    /// Frozen per-kernel profiles (invocations, nanos, fallback ops) in
    /// execution order. Invocation counts stay 0 until
    /// [`CompiledQuery::set_profiling`] turns timing on.
    pub fn kernel_profiles(&self) -> Vec<KernelProfile> {
        self.kernels.iter().map(Kernel::profile).collect()
    }

    /// The coarsest grid all kernels agree on: partition boundaries must be
    /// multiples of this to make parallel execution seam-free.
    pub fn grid(&self) -> i64 {
        self.kernels.iter().map(|k| k.precision).fold(1, lcm)
    }

    /// Executes serially over `(range.start, range.end]`.
    ///
    /// `inputs` must follow the declaration order of `query().inputs()`.
    /// Input data outside `range` (the boundary-resolved lookback) is read
    /// if present in the buffers; missing history reads as φ.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the declared input count.
    pub fn run(&self, inputs: &[&SnapshotBuf<Value>], range: TimeRange) -> SnapshotBuf<Value> {
        let mut pool = BufPool::new();
        self.run_pooled(inputs, range, &mut pool)
    }

    /// Like [`CompiledQuery::run`], drawing every intermediate kernel
    /// buffer (and the returned output buffer) from `pool` — intermediates
    /// go back before the call returns, and callers can
    /// [`BufPool::put`] the output back once consumed. Streaming sessions
    /// route every advance through one long-lived pool this way.
    pub fn run_pooled(
        &self,
        inputs: &[&SnapshotBuf<Value>],
        range: TimeRange,
        pool: &mut BufPool<Value>,
    ) -> SnapshotBuf<Value> {
        assert_eq!(
            inputs.len(),
            self.query.inputs().len(),
            "query expects {} inputs",
            self.query.inputs().len()
        );
        // The query output may simply be an input (identity query).
        if self.query.is_input(self.query.output()) {
            let idx = self
                .query
                .inputs()
                .iter()
                .position(|o| *o == self.query.output())
                .expect("output is an input");
            let mut out = pool.take(range.start);
            inputs[idx].slice_into(range, &mut out);
            return out;
        }

        let mut store: Vec<Option<SnapshotBuf<Value>>> = (0..self.n_slots).map(|_| None).collect();
        let mut slots: Vec<Option<&SnapshotBuf<Value>>> = vec![None; self.n_slots];
        for (i, obj) in self.query.inputs().iter().enumerate() {
            slots[obj.index()] = Some(inputs[i]);
        }
        let mut result = None;
        for kernel in &self.kernels {
            let ext = self.boundary.extent(kernel.out);
            // Intermediates must cover every grid tick a consumer may read
            // through (`ceil_p` of the latest lookahead access); the output
            // kernel covers exactly the requested range.
            let kend = if kernel.out == self.query.output() {
                range.end
            } else {
                range.end.saturating_add(ext.lookahead()).align_up(kernel.precision)
            };
            let krange = TimeRange::new(range.start.saturating_add(-ext.lookback()), kend);
            let mut out = pool.take(krange.start);
            {
                let mut view = slots.clone();
                for (slot, owned) in view.iter_mut().zip(store.iter()) {
                    if slot.is_none() {
                        *slot = owned.as_ref();
                    }
                }
                kernel.run_into(&view, krange, &mut out);
            }
            if kernel.out == self.query.output() {
                result = Some(out);
                break;
            }
            store[kernel.out.index()] = Some(out);
        }
        // Intermediates are dead once the output kernel ran: recycle them.
        for buf in store.into_iter().flatten() {
            pool.put(buf);
        }
        result.expect("toposort guarantees the output kernel runs last")
    }

    /// Executes with `threads` synchronization-free workers over partitions
    /// of roughly `interval` ticks (snapped up to the kernel grid), then
    /// concatenates the partition outputs (Fig. 6).
    pub fn run_parallel(
        &self,
        inputs: &[&SnapshotBuf<Value>],
        range: TimeRange,
        threads: usize,
        interval: i64,
    ) -> SnapshotBuf<Value> {
        let grid = self.grid();
        let interval = {
            let i = interval.max(1).max(grid);
            (i + grid - 1) / grid * grid
        };
        let mut cuts: Vec<TimeRange> = Vec::new();
        let mut t = range.start;
        while t < range.end {
            let end = (t + interval).min(range.end);
            cuts.push(TimeRange::new(t, end));
            t = end;
        }
        if threads <= 1 || cuts.len() <= 1 {
            return self.run(inputs, range);
        }

        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<SnapshotBuf<Value>>>> =
            Mutex::new((0..cuts.len()).map(|_| None).collect());
        crossbeam::thread::scope(|s| {
            for _ in 0..threads.min(cuts.len()) {
                s.spawn(|_| {
                    let mut local: Vec<(usize, SnapshotBuf<Value>)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= cuts.len() {
                            break;
                        }
                        local.push((i, self.run(inputs, cuts[i])));
                    }
                    let mut guard = results.lock().expect("no poisoned workers");
                    for (i, buf) in local {
                        guard[i] = Some(buf);
                    }
                });
            }
        })
        .expect("worker panicked");

        let parts: Vec<SnapshotBuf<Value>> = results
            .into_inner()
            .expect("all workers joined")
            .into_iter()
            .map(|p| p.expect("every partition computed"))
            .collect();
        SnapshotBuf::concat(parts)
    }

    /// Runs serially and reports wall-clock statistics.
    pub fn run_timed(
        &self,
        inputs: &[&SnapshotBuf<Value>],
        range: TimeRange,
    ) -> (SnapshotBuf<Value>, ExecStats) {
        let t0 = Instant::now();
        let out = self.run(inputs, range);
        let stats = ExecStats { elapsed: t0.elapsed(), output_spans: out.len() };
        (out, stats)
    }

    /// The *state horizon* of this query, in ticks: once a stream has been
    /// quiet for at least this long past an aligned emission point, a fresh
    /// session opened at that point is observationally identical to the
    /// session that lived through the quiet stretch — every access window
    /// reaching back from any future output tick lands in the φ gap, never
    /// on the pre-gap history.
    ///
    /// This is what makes per-key session *eviction* safe in a long-running
    /// service (`tilt-runtime`): a key idle past its state horizon can be
    /// torn down and transparently re-created on revival. The bound is
    /// `max input lookback + max input lookahead + 2 × grid` — lookback for
    /// window reach, lookahead plus a grid step for how far emission trails
    /// the quiet point, and one more grid step for alignment slack.
    pub fn state_horizon(&self) -> i64 {
        self.boundary.max_input_lookback(&self.query)
            + self.boundary.max_input_lookahead(&self.query)
            + 2 * self.grid()
    }

    /// Opens a batched streaming session starting at `start` (used by the
    /// latency-bounded-throughput experiment, Fig. 9).
    pub fn stream_session(&self, start: Time) -> StreamSession<'_> {
        StreamSessionIn::new(self, start)
    }

    /// Opens a streaming session that *owns* its handle on the compiled
    /// query. Worker threads (e.g. the shards of `tilt-runtime`) hold many
    /// such sessions over one shared compilation, amortizing compile-once
    /// across millions of independent key streams.
    pub fn shared_stream_session(self: &Arc<Self>, start: Time) -> SharedStreamSession {
        StreamSessionIn::new(Arc::clone(self), start)
    }
}

/// Incremental batched execution: events arrive in batches, each
/// [`StreamSessionIn::advance_to`] call processes one batch interval.
///
/// The session keeps just enough input history (the boundary-resolved
/// lookback) to evaluate windows that straddle batch boundaries — the
/// streaming analogue of the duplicated partition edges of Fig. 6.
///
/// The type is generic over how it holds the compiled query: borrowed
/// ([`StreamSession`], the original single-query API) or shared
/// ([`SharedStreamSession`], an `Arc` handle that lets long-lived worker
/// threads own sessions without borrowing).
#[derive(Debug)]
pub struct StreamSessionIn<C: Borrow<CompiledQuery>> {
    cq: C,
    histories: Vec<SnapshotBuf<Value>>,
    watermark: Time,
    keep: i64,
    /// Recycles intermediate kernel buffers across advances (the
    /// single-query analogue of the pool group sessions thread through
    /// `advance_to_with`).
    pool: BufPool<Value>,
}

/// A streaming session borrowing its compiled query.
pub type StreamSession<'a> = StreamSessionIn<&'a CompiledQuery>;

/// A streaming session sharing ownership of its compiled query.
pub type SharedStreamSession = StreamSessionIn<Arc<CompiledQuery>>;

impl<C: Borrow<CompiledQuery>> StreamSessionIn<C> {
    fn new(cq: C, start: Time) -> Self {
        let q = cq.borrow();
        let keep = q.boundary.max_input_lookback(&q.query) + q.grid();
        let histories = q.query.inputs().iter().map(|_| SnapshotBuf::new(start)).collect();
        StreamSessionIn { cq, histories, watermark: start, keep, pool: BufPool::new() }
    }

    /// The current watermark (everything up to it has been emitted).
    pub fn watermark(&self) -> Time {
        self.watermark
    }

    /// Appends events to input `idx`. Events must be in order and start at
    /// or after the previous end of that input's history.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or events regress in time.
    pub fn push_events(&mut self, idx: usize, events: &[Event<Value>]) {
        push_history(&mut self.histories[idx], events);
    }

    /// Advances the input watermark to `upto` and returns the *finalized*
    /// output prefix.
    ///
    /// An output at time `t` is final only once (i) every kernel's grid tick
    /// covering `t` lies at or before the emission horizon and (ii) all
    /// lookahead input for it has arrived — so emission stops at
    /// `align_down(upto − lookahead, grid)`. The returned buffer may be
    /// empty when the horizon has not advanced; call
    /// [`StreamSession::flush_to`] at end-of-stream to force the tail out.
    pub fn advance_to(&mut self, upto: Time) -> SnapshotBuf<Value> {
        assert!(upto > self.watermark, "advance_to must move forward");
        let cq = self.cq.borrow();
        let la = cq.boundary.max_input_lookahead(&cq.query);
        let target = Time::new(upto.ticks() - la).align_down(cq.grid());
        if target <= self.watermark {
            return SnapshotBuf::new(self.watermark);
        }
        self.emit_range(target)
    }

    /// Emits everything up to `end` unconditionally (end-of-stream flush:
    /// missing future input reads as φ, exactly like the tail of a one-shot
    /// run).
    pub fn flush_to(&mut self, end: Time) -> SnapshotBuf<Value> {
        if end <= self.watermark {
            return SnapshotBuf::new(self.watermark);
        }
        self.emit_range(end)
    }

    /// Hands a consumed output buffer's allocation back for the next
    /// advance to reuse.
    pub fn recycle(&mut self, buf: SnapshotBuf<Value>) {
        self.pool.put(buf);
    }

    fn emit_range(&mut self, target: Time) -> SnapshotBuf<Value> {
        for hist in &mut self.histories {
            if hist.end() < target {
                hist.push_raw(target, Value::Null);
            }
        }
        let refs: Vec<&SnapshotBuf<Value>> = self.histories.iter().collect();
        let out = self.cq.borrow().run_pooled(
            &refs,
            TimeRange::new(self.watermark, target),
            &mut self.pool,
        );
        self.watermark = target;
        for hist in &mut self.histories {
            trim_history(hist, self.watermark, self.keep);
        }
        out
    }
}

/// Appends in-order events to a session input history, φ-filling gaps.
///
/// Single-query sessions ([`StreamSessionIn`]) and multi-query group
/// sessions (`sharing::GroupSessionIn`) must encode histories identically —
/// the group's correctness guarantee is observational identity with a
/// standalone session — so both call this one function.
pub(crate) fn push_history(hist: &mut SnapshotBuf<Value>, events: &[Event<Value>]) {
    for e in events {
        if e.start > hist.end() {
            hist.push_raw(e.start, Value::Null);
        }
        hist.push_raw(e.end, e.payload.clone());
    }
}

/// Amortized history trim shared by single- and multi-query sessions:
/// keeps `keep` ticks of lookback behind `watermark`, rebuilding the
/// buffer only once the dead prefix grows past `4 × max(keep, 16)` ticks.
pub(crate) fn trim_history(hist: &mut SnapshotBuf<Value>, watermark: Time, keep: i64) {
    let cutoff = watermark.saturating_add(-keep);
    if cutoff - hist.start() > 4 * keep.max(16) {
        *hist = hist.slice(TimeRange::new(cutoff, hist.end()));
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

pub(crate) fn lcm(a: i64, b: i64) -> i64 {
    (a / gcd(a, b)).saturating_mul(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{DataType, Expr, ReduceOp, TDom};
    use tilt_data::streams_equivalent;

    fn trend_query() -> Query {
        let mut b = Query::builder();
        let stock = b.input("stock", DataType::Float);
        let sum10 =
            b.temporal("sum10", TDom::every_tick(), Expr::reduce_window(ReduceOp::Sum, stock, 10));
        let sum20 =
            b.temporal("sum20", TDom::every_tick(), Expr::reduce_window(ReduceOp::Sum, stock, 20));
        let avg10 = b.temporal("avg10", TDom::every_tick(), Expr::at(sum10).div(Expr::c(10.0)));
        let avg20 = b.temporal("avg20", TDom::every_tick(), Expr::at(sum20).div(Expr::c(20.0)));
        let join = b.temporal(
            "join",
            TDom::every_tick(),
            Expr::if_else(
                Expr::at(avg10).is_present().and(Expr::at(avg20).is_present()),
                Expr::at(avg10).sub(Expr::at(avg20)),
                Expr::null(),
            ),
        );
        let filter = b.temporal(
            "filter",
            TDom::every_tick(),
            Expr::if_else(Expr::at(join).gt(Expr::c(0.0)), Expr::at(join), Expr::null()),
        );
        b.finish(filter).unwrap()
    }

    fn price_events(n: i64) -> Vec<Event<Value>> {
        // Deterministic pseudo-random walk.
        let mut x = 100.0f64;
        let mut state = 0x9E3779B97F4A7C15u64;
        (1..=n)
            .map(|t| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let step = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
                x += step;
                Event::point(Time::new(t), Value::Float(x))
            })
            .collect()
    }

    #[test]
    fn fused_and_unfused_agree_on_trend_query() {
        let q = trend_query();
        let n = 500;
        let range = TimeRange::new(Time::new(0), Time::new(n));
        let input = SnapshotBuf::from_events(&price_events(n), range);
        let fused = Compiler::new().compile(&q).unwrap();
        let unfused = Compiler::unoptimized().compile(&q).unwrap();
        assert_eq!(fused.num_kernels(), 1);
        assert_eq!(unfused.num_kernels(), 6);
        let a = fused.run(&[&input], range);
        let b = unfused.run(&[&input], range);
        assert!(
            streams_equivalent(&a.to_events(), &b.to_events()),
            "fused vs unfused disagree: {} vs {} events",
            a.to_events().len(),
            b.to_events().len()
        );
    }

    #[test]
    fn parallel_matches_serial() {
        let q = trend_query();
        let n = 2000;
        let range = TimeRange::new(Time::new(0), Time::new(n));
        let input = SnapshotBuf::from_events(&price_events(n), range);
        let cq = Compiler::new().compile(&q).unwrap();
        let serial = cq.run(&[&input], range);
        for threads in [2, 4] {
            for interval in [97, 250, 1000] {
                let par = cq.run_parallel(&[&input], range, threads, interval);
                assert!(
                    streams_equivalent(&serial.to_events(), &par.to_events()),
                    "threads={threads} interval={interval}"
                );
            }
        }
    }

    #[test]
    fn batched_streaming_matches_one_shot() {
        let q = trend_query();
        let n = 600;
        let range = TimeRange::new(Time::new(0), Time::new(n));
        let events = price_events(n);
        let input = SnapshotBuf::from_events(&events, range);
        let cq = Compiler::new().compile(&q).unwrap();
        let oneshot = cq.run(&[&input], range);

        let mut session = cq.stream_session(Time::new(0));
        let mut out_events = Vec::new();
        let batch = 50usize;
        for chunk in events.chunks(batch) {
            session.push_events(0, chunk);
            let upto = chunk.last().unwrap().end;
            let out = session.advance_to(upto);
            out_events.extend(out.to_events());
        }
        assert!(
            streams_equivalent(&oneshot.to_events(), &out_events),
            "streaming {} vs one-shot {}",
            out_events.len(),
            oneshot.to_events().len()
        );
    }

    #[test]
    fn identity_query_slices_input() {
        let mut b = Query::builder();
        let input = b.input("in", DataType::Float);
        let q = b.finish(input).unwrap();
        let cq = Compiler::new().compile(&q).unwrap();
        let range = TimeRange::new(Time::new(0), Time::new(10));
        let buf = SnapshotBuf::from_events(&[Event::point(Time::new(5), Value::Float(1.0))], range);
        let out = cq.run(&[&buf], range);
        assert_eq!(out.to_events().len(), 1);
    }

    #[test]
    fn grid_is_lcm_of_precisions() {
        let mut b = Query::builder();
        let input = b.input("in", DataType::Float);
        let w1 = b.temporal("w1", TDom::unbounded(4), Expr::reduce_window(ReduceOp::Sum, input, 4));
        let w2 = b.temporal("w2", TDom::unbounded(6), Expr::reduce_window(ReduceOp::Sum, input, 6));
        let out = b.temporal("out", TDom::unbounded(12), Expr::at(w1).add(Expr::at(w2)));
        let q = b.finish(out).unwrap();
        let cq = Compiler::unoptimized().compile(&q).unwrap();
        assert_eq!(cq.grid(), 12);
    }

    #[test]
    fn shared_session_matches_borrowed_session_and_is_send() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompiledQuery>();
        fn assert_send<T: Send>() {}
        assert_send::<SharedStreamSession>();

        let q = trend_query();
        let events = price_events(300);
        let cq = Arc::new(Compiler::new().compile(&q).unwrap());
        let mut shared = cq.shared_stream_session(Time::new(0));
        let mut borrowed = cq.stream_session(Time::new(0));
        let mut a = Vec::new();
        let mut b = Vec::new();
        for chunk in events.chunks(64) {
            let upto = chunk.last().unwrap().end;
            shared.push_events(0, chunk);
            borrowed.push_events(0, chunk);
            if upto > shared.watermark() {
                a.extend(shared.advance_to(upto).to_events());
                b.extend(borrowed.advance_to(upto).to_events());
            }
        }
        // A shared session can outlive the `Arc` binding it was made from
        // and move to another thread.
        drop(borrowed);
        drop(cq);
        let tail = std::thread::spawn(move || {
            let out = shared.flush_to(Time::new(330)).to_events();
            (shared, out)
        });
        let (_shared, tail_events) = tail.join().unwrap();
        a.extend(tail_events);
        assert!(!a.is_empty());
        assert!(streams_equivalent(&a[..b.len()], &b));
    }

    #[test]
    fn fresh_session_after_state_horizon_matches_surviving_session() {
        // The eviction contract behind `state_horizon`: a session that lived
        // through a quiet stretch and a fresh session opened at an aligned
        // point past the horizon agree on everything after the gap.
        let q = trend_query();
        let cq = Arc::new(Compiler::new().compile(&q).unwrap());
        let horizon = cq.state_horizon();
        assert!(horizon >= 20, "trend query looks back 20 ticks");

        let old_events = price_events(50);
        let mut survivor = cq.shared_stream_session(Time::ZERO);
        survivor.push_events(0, &old_events);
        // Advance past the old data, then let the stream go quiet for more
        // than the state horizon.
        let quiet_point = Time::new(50 + horizon + 6).align_down(cq.grid());
        let mut a = survivor.advance_to(quiet_point).to_events();
        // The evicted replacement starts cold at the same aligned point.
        let mut fresh = cq.shared_stream_session(quiet_point);

        // Revival: identical new traffic into both sessions.
        let new_events: Vec<Event<Value>> = (1..=60)
            .map(|i| Event::point(quiet_point.saturating_add(i), Value::Float(i as f64 * 0.5)))
            .collect();
        survivor.push_events(0, &new_events);
        fresh.push_events(0, &new_events);
        let end = quiet_point.saturating_add(80);
        a.extend(survivor.flush_to(end).to_events());
        let b = fresh.flush_to(end).to_events();
        // Outputs after the quiet point are identical; the survivor's extra
        // prefix covers only the pre-gap region.
        let a_tail: Vec<Event<Value>> = a.into_iter().filter(|e| e.start >= quiet_point).collect();
        assert!(!b.is_empty());
        assert!(
            streams_equivalent(&a_tail, &b),
            "fresh session diverged after the state horizon: {a_tail:?} vs {b:?}"
        );
    }

    #[test]
    fn run_timed_reports_stats() {
        let q = trend_query();
        let range = TimeRange::new(Time::new(0), Time::new(100));
        let input = SnapshotBuf::from_events(&price_events(100), range);
        let cq = Compiler::new().compile(&q).unwrap();
        let (_, stats) = cq.run_timed(&[&input], range);
        assert!(stats.output_spans > 0);
    }
}
