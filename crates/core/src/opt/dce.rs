//! Dead temporal-expression elimination.

use std::collections::HashSet;

use crate::ir::{Query, TObjId};

/// Removes temporal expressions not reachable from the query output.
pub fn eliminate_dead(query: &Query) -> Query {
    let mut live: HashSet<TObjId> = HashSet::new();
    let mut stack = vec![query.output()];
    while let Some(obj) = stack.pop() {
        if !live.insert(obj) {
            continue;
        }
        if let Some(def) = query.definition(obj) {
            stack.extend(def.dependencies());
        }
    }
    let exprs = query.exprs().iter().filter(|te| live.contains(&te.output)).cloned().collect();
    query.with_exprs(exprs).expect("removing dead expressions preserves query structure")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{DataType, Expr, ReduceOp, TDom};

    #[test]
    fn drops_unreachable_expressions() {
        let mut b = Query::builder();
        let input = b.input("in", DataType::Float);
        let _dead =
            b.temporal("dead", TDom::every_tick(), Expr::reduce_window(ReduceOp::Sum, input, 100));
        let live = b.temporal("live", TDom::every_tick(), Expr::at(input).add(Expr::c(1.0)));
        let q = b.finish(live).unwrap();
        assert_eq!(q.exprs().len(), 2);
        let pruned = eliminate_dead(&q);
        assert_eq!(pruned.exprs().len(), 1);
        assert_eq!(pruned.exprs()[0].output, live);
    }

    #[test]
    fn keeps_transitive_dependencies() {
        let mut b = Query::builder();
        let input = b.input("in", DataType::Float);
        let mid = b.temporal("mid", TDom::every_tick(), Expr::at(input).mul(Expr::c(2.0)));
        let out = b.temporal("out", TDom::every_tick(), Expr::at(mid).add(Expr::c(1.0)));
        let q = b.finish(out).unwrap();
        let pruned = eliminate_dead(&q);
        assert_eq!(pruned.exprs().len(), 2);
    }
}
