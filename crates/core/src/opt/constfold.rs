//! Constant folding over TiLT IR expressions.
//!
//! Because the scalar language's runtime semantics (including φ propagation)
//! live on `tilt_data::Value`, folding is a direct partial evaluation: any
//! operator whose operands are literals is applied at compile time.

use tilt_data::Value;

use crate::ir::{BinOp, Expr, Query, TempExpr};

/// Folds constants in every temporal expression of the query.
pub fn fold_query(query: &Query) -> Query {
    let exprs: Vec<TempExpr> = query
        .exprs()
        .iter()
        .map(|te| TempExpr { body: fold_expr(te.body.clone()), ..te.clone() })
        .collect();
    query.with_exprs(exprs).expect("constant folding preserves query structure")
}

/// Folds constants in one expression.
pub fn fold_expr(e: Expr) -> Expr {
    e.rewrite(&mut |node| match node {
        Expr::Unary(op, a) => match &*a {
            Expr::Const(v) => Expr::Const(op.apply(v)),
            _ => Expr::Unary(op, a),
        },
        Expr::Binary(op, a, b) => match (&*a, &*b) {
            (Expr::Const(x), Expr::Const(y)) => Expr::Const(op.apply(x, y)),
            // Kleene short circuits are sound with a single constant operand.
            (Expr::Const(Value::Bool(false)), _) | (_, Expr::Const(Value::Bool(false)))
                if op == BinOp::And =>
            {
                Expr::Const(Value::Bool(false))
            }
            (Expr::Const(Value::Bool(true)), _) | (_, Expr::Const(Value::Bool(true)))
                if op == BinOp::Or =>
            {
                Expr::Const(Value::Bool(true))
            }
            (Expr::Const(Value::Bool(true)), _) if op == BinOp::And => *b,
            (_, Expr::Const(Value::Bool(true))) if op == BinOp::And => *a,
            (Expr::Const(Value::Bool(false)), _) if op == BinOp::Or => *b,
            (_, Expr::Const(Value::Bool(false))) if op == BinOp::Or => *a,
            _ => Expr::Binary(op, a, b),
        },
        Expr::If(c, t, e2) => match &*c {
            Expr::Const(Value::Bool(true)) => *t,
            Expr::Const(Value::Bool(false)) => *e2,
            Expr::Const(Value::Null) => Expr::Const(Value::Null),
            _ => Expr::If(c, t, e2),
        },
        // Substituting a constant can create new foldable nodes in the body,
        // so fold the result again.
        Expr::Let { var, value, body } => match &*value {
            Expr::Const(_) | Expr::Var(_) => fold_expr(body.subst_var(var, &value)),
            _ => Expr::Let { var, value, body },
        },
        Expr::Field(a, i) => match &*a {
            Expr::Tuple(items) => items[i].clone(),
            Expr::Const(v) => Expr::Const(v.field(i)),
            _ => Expr::Field(a, i),
        },
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::VarId;

    #[test]
    fn folds_arithmetic() {
        let e = Expr::c(2i64).add(Expr::c(3i64)).mul(Expr::c(4i64));
        assert_eq!(fold_expr(e), Expr::c(20i64));
    }

    #[test]
    fn folds_conditionals() {
        let e = Expr::if_else(Expr::c(1i64).lt(Expr::c(2i64)), Expr::c(10i64), Expr::c(20i64));
        assert_eq!(fold_expr(e), Expr::c(10i64));
        let nulled = Expr::if_else(Expr::null(), Expr::c(10i64), Expr::c(20i64));
        assert_eq!(fold_expr(nulled), Expr::null());
    }

    #[test]
    fn kleene_short_circuit_preserves_phi_semantics() {
        let x = Expr::at(crate::ir::TObjId(0)).is_null();
        let e = Expr::c(false).and(x.clone());
        assert_eq!(fold_expr(e), Expr::c(false));
        let e2 = Expr::c(true).or(x.clone());
        assert_eq!(fold_expr(e2), Expr::c(true));
        let e3 = Expr::c(true).and(x.clone());
        assert_eq!(fold_expr(e3), x);
    }

    #[test]
    fn propagates_lets_and_fields() {
        let v = VarId(0);
        let e = Expr::Let {
            var: v,
            value: Box::new(Expr::c(5i64)),
            body: Box::new(Expr::Var(v).add(Expr::Var(v))),
        };
        assert_eq!(fold_expr(e), Expr::c(10i64));
        let f = Expr::Tuple(vec![Expr::c(1i64), Expr::c(2i64)]).get(1);
        assert_eq!(fold_expr(f), Expr::c(2i64));
    }

    #[test]
    fn null_arithmetic_folds_to_null() {
        let e = Expr::null().add(Expr::c(3i64));
        assert_eq!(fold_expr(e), Expr::null());
    }
}
