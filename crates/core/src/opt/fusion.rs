//! Operator fusion across pipeline breakers (paper §5.2).
//!
//! In TiLT, fusing two operators is a *textual* IR transformation: every
//! access `~producer[t+d]` in a consumer is replaced by the producer's
//! defining expression with its time axis shifted by `d`. Because window
//! reductions are ordinary sub-expressions, the transformation applies
//! equally to soft pipeline breakers (window aggregations, temporal joins) —
//! the cases where event-centric optimizers give up.
//!
//! Two rewrite rules are applied to a fixpoint:
//!
//! * **point inlining** — `~c[t] = F(~p[t+d])` with `~p[t] = B(t)` becomes
//!   `~c[t] = let v = B(t+d) in F(v)`, sharing multiple accesses at the same
//!   offset through the let binding (this is exactly the fused form shown in
//!   §5.2 of the paper);
//! * **window-map fusion** — `⊕(op, ~p[t+lo : t+hi])` where `~p` is a
//!   pointwise transform of a single source `~s` becomes
//!   `⊕(op, ~s[t+lo+d : t+hi+d], elem ⇒ B[~s[t+d] := elem])`, pushing maps
//!   (Select/Where-style stages) inside the reduction.
//!
//! Inlining is unconditional for single-consumer producers and limited by a
//! size heuristic otherwise; sampled (Chop) producers and incompatible time
//! domains are never fused.

use std::cell::Cell;
use std::collections::HashMap;

use crate::error::Result;
use crate::ir::{Expr, Query, TDom, TObjId, TempExpr, VarId, WindowRef};
use crate::opt::dce::eliminate_dead;

/// Maximum body size (in nodes) for inlining a producer that has multiple
/// consumers or would be duplicated.
const INLINE_SIZE_LIMIT: usize = 24;

/// Maximum fuse/DCE rounds before declaring fixpoint.
const MAX_ROUNDS: usize = 8;

/// Runs fusion to a fixpoint, interleaved with dead-expression elimination.
pub fn fuse(query: &Query) -> Result<Query> {
    let mut q = query.clone();
    for _ in 0..MAX_ROUNDS {
        let (next, changed) = fuse_once(&q)?;
        q = eliminate_dead(&next);
        if !changed {
            break;
        }
    }
    Ok(q)
}

/// One fusion sweep over all temporal expressions (in topological order, so
/// producers are already in fused form when consumers inline them).
fn fuse_once(query: &Query) -> Result<(Query, bool)> {
    let mut q = query.clone();
    let uses = q.use_counts();
    let mut exprs: Vec<TempExpr> = q.exprs().to_vec();
    let defs: HashMap<TObjId, usize> =
        exprs.iter().enumerate().map(|(i, te)| (te.output, i)).collect();
    let var_counter = Cell::new(q.var_counter());
    let fresh = || {
        let v = VarId(var_counter.get());
        var_counter.set(var_counter.get() + 1);
        v
    };
    let mut changed = false;

    for i in 0..exprs.len() {
        let te = exprs[i].clone();
        let mut body = te.body.clone();

        // Rule 2: push pointwise producers inside window reductions.
        body = body.rewrite(&mut |node| {
            let Expr::Reduce { op, window } = node else { return node };
            let Some(&pi) = defs.get(&window.obj) else {
                return Expr::Reduce { op, window };
            };
            let producer = &exprs[pi];
            if !window_fusible(producer, &te, &uses) {
                return Expr::Reduce { op, window };
            }
            let Some((src, d)) = pointwise_source(&producer.body) else {
                return Expr::Reduce { op, window };
            };
            let elem = fresh();
            let elem_body = producer.body.clone().rewrite(&mut |n| match n {
                Expr::At { obj, offset } if obj == src && offset == d => Expr::Var(elem),
                other => other,
            });
            let map = match window.map {
                None => (elem, Box::new(elem_body)),
                // The existing map transformed *producer* elements; compose.
                Some((old_var, m)) => (elem, Box::new(m.subst_var(old_var, &elem_body))),
            };
            Expr::Reduce {
                op,
                window: WindowRef {
                    obj: src,
                    lo: window.lo + d,
                    hi: window.hi + d,
                    map: Some(map),
                },
            }
        });

        // Rule 1: inline point accesses to fusible producers via lets.
        let mut sites: Vec<(TObjId, i64)> = Vec::new();
        body.walk(&mut |n| {
            if let Expr::At { obj, offset } = n {
                if let Some(&pi) = defs.get(obj) {
                    if point_fusible(&exprs[pi], *offset, &te, &uses)
                        && !sites.contains(&(*obj, *offset))
                    {
                        sites.push((*obj, *offset));
                    }
                }
            }
        });
        let mut lets: Vec<(VarId, Expr)> = Vec::new();
        for (obj, offset) in sites {
            let producer_body = exprs[defs[&obj]].body.clone();
            let v = fresh();
            body = body.rewrite(&mut |n| match n {
                Expr::At { obj: o, offset: d } if o == obj && d == offset => Expr::Var(v),
                other => other,
            });
            lets.push((v, producer_body.shift_time(offset)));
        }
        for (v, value) in lets.into_iter().rev() {
            body = Expr::Let { var: v, value: Box::new(value), body: Box::new(body) };
        }

        if body != te.body {
            changed = true;
            exprs[i].body = body;
        }
    }

    q.reserve_vars(var_counter.get());
    let q = q.with_exprs(exprs)?;
    Ok((q, changed))
}

/// Whether the time domains allow `producer` values read at consumer grid
/// ticks (+`offset`) to be recomputed in place of being looked up.
fn domains_compatible(producer: &TempExpr, consumer: &TempExpr, offset: i64) -> bool {
    let p = producer.dom.precision;
    domain_covers(&producer.dom, &consumer.dom)
        && consumer.dom.precision % p == 0
        && offset % p == 0
}

fn domain_covers(producer: &TDom, consumer: &TDom) -> bool {
    producer.start <= consumer.start && producer.end >= consumer.end
}

fn inline_profitable(producer: &TempExpr, uses: &HashMap<TObjId, usize>) -> bool {
    let n = uses.get(&producer.output).copied().unwrap_or(0);
    n <= 1 || (!producer.body.has_reduce() && producer.body.size() <= INLINE_SIZE_LIMIT)
}

fn point_fusible(
    producer: &TempExpr,
    offset: i64,
    consumer: &TempExpr,
    uses: &HashMap<TObjId, usize>,
) -> bool {
    !producer.sample
        && domains_compatible(producer, consumer, offset)
        && inline_profitable(producer, uses)
}

fn window_fusible(producer: &TempExpr, consumer: &TempExpr, uses: &HashMap<TObjId, usize>) -> bool {
    // Window elements are read at every tick, so the producer must be
    // defined at every tick (precision 1) and event-driven.
    !producer.sample
        && producer.dom.precision == 1
        && domain_covers(&producer.dom, &consumer.dom)
        && inline_profitable(producer, uses)
}

/// If `body` is a pointwise transform of a single source — every temporal
/// access is `~src[t+d]` for one fixed `(src, d)` and there is no nested
/// reduction — returns `(src, d)`.
fn pointwise_source(body: &Expr) -> Option<(TObjId, i64)> {
    let mut src: Option<(TObjId, i64)> = None;
    let mut ok = true;
    body.walk(&mut |e| match e {
        Expr::At { obj, offset } => match src {
            None => src = Some((*obj, *offset)),
            Some(s) if s == (*obj, *offset) => {}
            _ => ok = false,
        },
        Expr::Reduce { .. } => ok = false,
        // A map is evaluated at the consumer's clock, but each window
        // element was produced at its own time — fusing `t` would be wrong.
        Expr::Time => ok = false,
        _ => {}
    });
    if ok {
        src
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{print_query, DataType, ReduceOp};

    /// The running example of the paper: after fusion the trend query is a
    /// single temporal expression reading only `~stock`.
    #[test]
    fn trend_query_fuses_to_single_expression() {
        let mut b = Query::builder();
        let stock = b.input("stock", DataType::Float);
        let sum10 =
            b.temporal("sum10", TDom::every_tick(), Expr::reduce_window(ReduceOp::Sum, stock, 10));
        let sum20 =
            b.temporal("sum20", TDom::every_tick(), Expr::reduce_window(ReduceOp::Sum, stock, 20));
        let avg10 = b.temporal("avg10", TDom::every_tick(), Expr::at(sum10).div(Expr::c(10.0)));
        let avg20 = b.temporal("avg20", TDom::every_tick(), Expr::at(sum20).div(Expr::c(20.0)));
        let join = b.temporal(
            "join",
            TDom::every_tick(),
            Expr::if_else(
                Expr::at(avg10).is_present().and(Expr::at(avg20).is_present()),
                Expr::at(avg10).sub(Expr::at(avg20)),
                Expr::null(),
            ),
        );
        let filter = b.temporal(
            "filter",
            TDom::every_tick(),
            Expr::if_else(Expr::at(join).gt(Expr::c(0.0)), Expr::at(join), Expr::null()),
        );
        let q = b.finish(filter).unwrap();
        assert_eq!(q.exprs().len(), 6);

        let fused = fuse(&q).unwrap();
        assert_eq!(fused.exprs().len(), 1, "query:\n{}", print_query(&fused));
        let only = &fused.exprs()[0];
        assert_eq!(only.output, filter);
        // The fused body reads only the input stream.
        assert_eq!(only.body.referenced_objects(), vec![stock]);
        // Reductions survived inside the fused expression.
        assert!(only.body.has_reduce());
    }

    #[test]
    fn select_fuses_into_window_sum_as_map() {
        let mut b = Query::builder();
        let input = b.input("in", DataType::Float);
        let doubled = b.temporal("sel", TDom::every_tick(), Expr::at(input).mul(Expr::c(2.0)));
        let wsum =
            b.temporal("wsum", TDom::unbounded(5), Expr::reduce_window(ReduceOp::Sum, doubled, 10));
        let q = b.finish(wsum).unwrap();
        let fused = fuse(&q).unwrap();
        assert_eq!(fused.exprs().len(), 1);
        let Expr::Reduce { window, .. } = &fused.exprs()[0].body else {
            panic!("expected a reduce at the top: {}", print_query(&fused));
        };
        assert_eq!(window.obj, input);
        assert!(window.map.is_some(), "map-fused select expected");
        assert_eq!((window.lo, window.hi), (-10, 0));
    }

    #[test]
    fn shifted_producer_inlines_with_shifted_windows() {
        let mut b = Query::builder();
        let input = b.input("in", DataType::Float);
        let avg =
            b.temporal("avg", TDom::every_tick(), Expr::reduce_window(ReduceOp::Mean, input, 10));
        // out[t] = avg[t-5] - avg[t]
        let out = b.temporal("out", TDom::every_tick(), Expr::at_off(avg, -5).sub(Expr::at(avg)));
        let q = b.finish(out).unwrap();
        let fused = fuse(&q).unwrap();
        assert_eq!(fused.exprs().len(), 1);
        // Both accesses inline; the shifted one gets a shifted window.
        let mut windows = Vec::new();
        fused.exprs()[0].body.walk(&mut |e| {
            if let Expr::Reduce { window, .. } = e {
                windows.push((window.lo, window.hi));
            }
        });
        windows.sort();
        assert_eq!(windows, vec![(-15, -5), (-10, 0)]);
    }

    #[test]
    fn sampled_producers_are_not_fused() {
        let mut b = Query::builder();
        let input = b.input("in", DataType::Float);
        let chopped = b.temporal_sampled("chop", TDom::unbounded(2), Expr::at(input));
        let out = b.temporal("out", TDom::unbounded(2), Expr::at(chopped).add(Expr::c(1.0)));
        let q = b.finish(out).unwrap();
        let fused = fuse(&q).unwrap();
        assert_eq!(fused.exprs().len(), 2, "sampled producer must stay materialized");
    }

    #[test]
    fn incompatible_precisions_are_not_fused() {
        let mut b = Query::builder();
        let input = b.input("in", DataType::Float);
        // Producer changes every 5 ticks; consumer wants values every 3.
        let win =
            b.temporal("win", TDom::unbounded(5), Expr::reduce_window(ReduceOp::Sum, input, 5));
        let out = b.temporal("out", TDom::unbounded(3), Expr::at(win).add(Expr::c(1.0)));
        let q = b.finish(out).unwrap();
        let fused = fuse(&q).unwrap();
        assert_eq!(fused.exprs().len(), 2);
    }

    #[test]
    fn compatible_precision_multiple_fuses() {
        let mut b = Query::builder();
        let input = b.input("in", DataType::Float);
        let win =
            b.temporal("win", TDom::unbounded(5), Expr::reduce_window(ReduceOp::Sum, input, 5));
        let out = b.temporal("out", TDom::unbounded(10), Expr::at(win).add(Expr::c(1.0)));
        let q = b.finish(out).unwrap();
        let fused = fuse(&q).unwrap();
        assert_eq!(fused.exprs().len(), 1);
    }

    #[test]
    fn multi_use_reduce_producer_duplicates_only_when_cheap() {
        let mut b = Query::builder();
        let input = b.input("in", DataType::Float);
        let avg =
            b.temporal("avg", TDom::every_tick(), Expr::reduce_window(ReduceOp::Mean, input, 10));
        let c1 = b.temporal("c1", TDom::every_tick(), Expr::at(avg).add(Expr::c(1.0)));
        let c2 = b.temporal("c2", TDom::every_tick(), Expr::at(avg).sub(Expr::c(1.0)));
        let out = b.temporal("out", TDom::every_tick(), Expr::at(c1).add(Expr::at(c2)));
        let q = b.finish(out).unwrap();
        let fused = fuse(&q).unwrap();
        // Round 1: c1/c2 (single-use) inline into out, leaving avg with one
        // consumer. Round 2: avg inlines with a *shared* let binding — the
        // expensive reduce appears exactly once in the fused body.
        assert_eq!(fused.exprs().len(), 1, "{}", print_query(&fused));
        assert_eq!(fused.exprs()[0].output, out);
        let _ = avg;
        let mut reduce_count = 0;
        fused.exprs()[0].body.walk(&mut |e| {
            if matches!(e, Expr::Reduce { .. }) {
                reduce_count += 1;
            }
        });
        assert_eq!(reduce_count, 1, "reduce must be shared via a let binding");
    }

    #[test]
    fn where_fuses_into_count_window() {
        // The YSB shape: filter → tumbling count. The filter becomes a map
        // producing φ for non-matching elements, which Count then skips.
        let mut b = Query::builder();
        let input = b.input("in", DataType::Float);
        let filtered = b.temporal(
            "where",
            TDom::every_tick(),
            Expr::if_else(Expr::at(input).gt(Expr::c(0.5)), Expr::at(input), Expr::null()),
        );
        let count = b.temporal(
            "count",
            TDom::unbounded(10),
            Expr::reduce_window(ReduceOp::Count, filtered, 10),
        );
        let q = b.finish(count).unwrap();
        let fused = fuse(&q).unwrap();
        assert_eq!(fused.exprs().len(), 1);
        let Expr::Reduce { window, .. } = &fused.exprs()[0].body else {
            panic!("expected top-level reduce");
        };
        assert_eq!(window.obj, input);
        assert!(window.map.is_some());
    }
}
