//! IR-to-IR optimization passes (paper §5.2).
//!
//! The pass pipeline is deliberately small — the paper focuses on the
//! "most bang-for-the-buck" optimization, operator fusion — but each pass is
//! independently togglable so the Fig. 10 ablation can run the compiler with
//! fusion disabled.

mod constfold;
mod dce;
mod fusion;

pub use constfold::{fold_expr, fold_query};
pub use dce::eliminate_dead;
pub use fusion::fuse;

use crate::error::Result;
use crate::ir::Query;

/// Configuration of the optimization pipeline.
#[derive(Clone, Copy, Debug)]
pub struct Optimizer {
    /// Operator fusion across pipeline breakers (§5.2).
    pub fusion: bool,
    /// Constant folding / partial evaluation.
    pub constfold: bool,
    /// Dead temporal-expression elimination.
    pub dce: bool,
}

impl Default for Optimizer {
    fn default() -> Self {
        Optimizer { fusion: true, constfold: true, dce: true }
    }
}

impl Optimizer {
    /// All passes enabled (the default).
    pub fn full() -> Self {
        Self::default()
    }

    /// No optimization at all — every temporal expression becomes its own
    /// kernel, mimicking the per-operator execution of an interpreted SPE
    /// (the "TiLT UnOpt" configuration of Fig. 10).
    pub fn none() -> Self {
        Optimizer { fusion: false, constfold: false, dce: false }
    }

    /// Runs the enabled passes over `query`.
    pub fn optimize(&self, query: &Query) -> Result<Query> {
        let mut q = query.clone();
        if self.constfold {
            q = fold_query(&q);
        }
        if self.fusion {
            q = fuse(&q)?;
        }
        if self.dce {
            q = eliminate_dead(&q);
        }
        if self.constfold {
            q = fold_query(&q);
        }
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{DataType, Expr, ReduceOp, TDom};

    fn sample_query() -> Query {
        let mut b = Query::builder();
        let input = b.input("in", DataType::Float);
        let sum =
            b.temporal("sum", TDom::every_tick(), Expr::reduce_window(ReduceOp::Sum, input, 10));
        let avg = b.temporal(
            "avg",
            TDom::every_tick(),
            Expr::at(sum).div(Expr::c(2.0).mul(Expr::c(5.0))),
        );
        b.finish(avg).unwrap()
    }

    #[test]
    fn full_pipeline_fuses_and_folds() {
        let q = sample_query();
        let opt = Optimizer::full().optimize(&q).unwrap();
        assert_eq!(opt.exprs().len(), 1);
        // 2.0 * 5.0 folded to 10.0
        let mut found_ten = false;
        opt.exprs()[0].body.walk(&mut |e| {
            if let Expr::Const(v) = e {
                if v.as_f64() == Some(10.0) {
                    found_ten = true;
                }
            }
        });
        assert!(found_ten);
    }

    #[test]
    fn none_pipeline_is_identity_on_structure() {
        let q = sample_query();
        let opt = Optimizer::none().optimize(&q).unwrap();
        assert_eq!(opt.exprs().len(), q.exprs().len());
    }
}
