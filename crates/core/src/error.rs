//! Compiler and runtime error types.

use std::error::Error;
use std::fmt;

/// An error raised while building, checking, optimizing, or compiling a TiLT
/// query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// An expression referenced a temporal object that is not defined by any
    /// temporal expression or input declaration.
    UnboundObject(String),
    /// An expression referenced a scalar variable outside its binding scope.
    UnboundVar(String),
    /// The query's temporal expressions contain a dependency cycle.
    Cycle(String),
    /// A type error in an expression.
    Type(String),
    /// A structurally invalid construct (bad window bounds, non-positive
    /// precision, duplicate definitions, …).
    Invalid(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnboundObject(name) => write!(f, "unbound temporal object {name}"),
            CompileError::UnboundVar(name) => write!(f, "unbound variable {name}"),
            CompileError::Cycle(name) => write!(f, "temporal dependency cycle through {name}"),
            CompileError::Type(msg) => write!(f, "type error: {msg}"),
            CompileError::Invalid(msg) => write!(f, "invalid query: {msg}"),
        }
    }
}

impl Error for CompileError {}

/// Convenience alias for compiler results.
pub type Result<T> = std::result::Result<T, CompileError>;
