//! The scalar + temporal expression language of the TiLT IR (paper §4.1).
//!
//! Expressions are ordinary functional-language terms (constants, arithmetic,
//! conditionals, lets, structs) extended with the two temporal constructs:
//!
//! * [`Expr::At`] — `~obj[t + offset]`, the value of a temporal object at an
//!   offset from the current time;
//! * [`Expr::Reduce`] — `⊕(op, ~obj[t+lo : t+hi])`, a reduction function
//!   applied to a derived window of a temporal object.

use std::fmt;
use std::sync::Arc;

use tilt_data::Value;

use super::types::DataType;

/// Identifier of a temporal object (an input stream or the output of a
/// temporal expression).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TObjId(pub(crate) u32);

impl TObjId {
    /// The raw index (stable within one [`super::Query`]).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "~t{}", self.0)
    }
}

/// Identifier of a let-bound (or reduce-element) scalar variable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// Constructs a variable id from a raw index.
    ///
    /// Intended for frontends that synthesize expression fragments with
    /// placeholder ("hole") variables before handing them to a
    /// [`super::QueryBuilder`]; within a built query, allocate variables with
    /// `QueryBuilder::var` instead so ids never collide.
    pub const fn from_raw(raw: u32) -> VarId {
        VarId(raw)
    }

    /// The raw index of this variable.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Binary operators with φ-propagating semantics (see `tilt_data::Value`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (integer division by zero yields φ).
    Div,
    /// Remainder.
    Rem,
    /// Exponentiation.
    Pow,
    /// Binary minimum.
    Min,
    /// Binary maximum.
    Max,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Equality (φ-propagating, unlike `is_null`).
    Eq,
    /// Inequality.
    Ne,
    /// Kleene conjunction.
    And,
    /// Kleene disjunction.
    Or,
}

impl BinOp {
    /// Applies the operator to runtime values.
    #[inline]
    pub fn apply(self, a: &Value, b: &Value) -> Value {
        match self {
            BinOp::Add => a.add(b),
            BinOp::Sub => a.sub(b),
            BinOp::Mul => a.mul(b),
            BinOp::Div => a.div(b),
            BinOp::Rem => a.rem(b),
            BinOp::Pow => a.pow(b),
            BinOp::Min => a.min_v(b),
            BinOp::Max => a.max_v(b),
            BinOp::Lt => a.lt(b),
            BinOp::Le => a.le(b),
            BinOp::Gt => a.gt(b),
            BinOp::Ge => a.ge(b),
            BinOp::Eq => a.eq_v(b),
            BinOp::Ne => a.ne_v(b),
            BinOp::And => a.and(b),
            BinOp::Or => a.or(b),
        }
    }

    /// Whether the operator is an ordering/equality comparison.
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne)
    }

    /// Whether the operator is a Kleene connective.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Pow => "^",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        };
        write!(f, "{s}")
    }
}

/// Unary operators with φ-propagating semantics.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical negation.
    Not,
    /// Absolute value.
    Abs,
    /// Square root (promotes to float).
    Sqrt,
    /// The `e != φ` test of the paper; never yields φ. True when φ.
    IsNull,
    /// Cast to float.
    ToFloat,
    /// Cast to int (truncating).
    ToInt,
}

impl UnOp {
    /// Applies the operator to a runtime value.
    #[inline]
    pub fn apply(self, v: &Value) -> Value {
        match self {
            UnOp::Neg => v.neg(),
            UnOp::Not => v.not(),
            UnOp::Abs => v.abs(),
            UnOp::Sqrt => v.sqrt(),
            UnOp::IsNull => v.is_null_v(),
            UnOp::ToFloat => v.to_float(),
            UnOp::ToInt => v.to_int(),
        }
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
            UnOp::Abs => "abs",
            UnOp::Sqrt => "sqrt",
            UnOp::IsNull => "is_null",
            UnOp::ToFloat => "float",
            UnOp::ToInt => "int",
        };
        write!(f, "{s}")
    }
}

/// A user-defined reduction function (paper §6.1.2).
///
/// The template mirrors the paper's four lambdas: `init`, `acc`, optional
/// `deacc` (for invertible aggregates, enabling Subtract-on-Evict), and
/// `result`. The accumulator receives the tick-weight of each snapshot so a
/// span of length `w` is accumulated once with multiplicity `w` rather than
/// `w` times.
pub struct CustomReduce {
    /// Display name (used by the printer and Debug output).
    pub name: String,
    /// Result type of the reduction.
    pub result_type: DataType,
    /// Initial accumulator state.
    pub init: Value,
    /// Folds one snapshot value with tick-weight `w` into the state.
    pub acc: ReduceFold,
    /// Inverse of `acc`, when the aggregate is invertible.
    pub deacc: Option<ReduceFold>,
    /// Extracts the reduction result from the state; receives the number of
    /// non-φ ticks accumulated. Never called with zero ticks (an all-φ window
    /// reduces to φ before `result` is consulted).
    pub result: ReduceFinish,
}

/// Fold step of a [`CustomReduce`]: `(state, value, tick_weight) → state`.
pub type ReduceFold = Arc<dyn Fn(&Value, &Value, i64) -> Value + Send + Sync>;

/// Result extraction of a [`CustomReduce`]: `(state, non_phi_ticks) → value`.
pub type ReduceFinish = Arc<dyn Fn(&Value, i64) -> Value + Send + Sync>;

impl fmt::Debug for CustomReduce {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CustomReduce")
            .field("name", &self.name)
            .field("result_type", &self.result_type)
            .field("invertible", &self.deacc.is_some())
            .finish()
    }
}

/// A reduction operation usable in [`Expr::Reduce`].
#[derive(Clone, Debug)]
pub enum ReduceOp {
    /// Tick-weighted sum.
    Sum,
    /// Tick-weighted product.
    Product,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Number of non-φ ticks in the window.
    Count,
    /// Tick-weighted mean (`Sum / Count`, fused for efficiency).
    Mean,
    /// Tick-weighted population standard deviation.
    StdDev,
    /// A user-defined reduction.
    Custom(Arc<CustomReduce>),
}

impl ReduceOp {
    /// The result type given the element type.
    pub fn result_type(&self, elem: &DataType) -> DataType {
        match self {
            ReduceOp::Sum | ReduceOp::Product | ReduceOp::Min | ReduceOp::Max => elem.clone(),
            ReduceOp::Count => DataType::Int,
            ReduceOp::Mean | ReduceOp::StdDev => DataType::Float,
            ReduceOp::Custom(c) => c.result_type.clone(),
        }
    }

    /// Display name.
    pub fn name(&self) -> &str {
        match self {
            ReduceOp::Sum => "sum",
            ReduceOp::Product => "prod",
            ReduceOp::Min => "min",
            ReduceOp::Max => "max",
            ReduceOp::Count => "count",
            ReduceOp::Mean => "mean",
            ReduceOp::StdDev => "stddev",
            ReduceOp::Custom(c) => &c.name,
        }
    }
}

impl PartialEq for ReduceOp {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (ReduceOp::Custom(a), ReduceOp::Custom(b)) => Arc::ptr_eq(a, b),
            _ => std::mem::discriminant(self) == std::mem::discriminant(other),
        }
    }
}

/// A window access `~obj[t+lo : t+hi]` with an optional fused element map.
///
/// The `map` field is produced by the fusion pass when a pointwise producer
/// is inlined *into* a reduction: each element of the window is transformed
/// by `map` (with `elem` bound to the raw element) before accumulation.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowRef {
    /// The source temporal object.
    pub obj: TObjId,
    /// Window start offset relative to `t` (exclusive bound `t + lo`).
    pub lo: i64,
    /// Window end offset relative to `t` (inclusive bound `t + hi`).
    pub hi: i64,
    /// Optional fused pointwise transform applied to each element.
    pub map: Option<(VarId, Box<Expr>)>,
}

/// A TiLT IR expression.
///
/// Expressions are evaluated at a time point `t` of the enclosing temporal
/// expression's time domain; the temporal constructs [`Expr::At`] and
/// [`Expr::Reduce`] read input temporal objects relative to `t`.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A literal value (φ literals give the paper's `: φ` arms).
    Const(Value),
    /// A let-bound variable reference.
    Var(VarId),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `cond ? then : else`; a φ condition yields φ.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `let var = value in body`.
    Let {
        /// The bound variable.
        var: VarId,
        /// The bound value.
        value: Box<Expr>,
        /// The body in which `var` is visible.
        body: Box<Expr>,
    },
    /// Struct field projection.
    Field(Box<Expr>, usize),
    /// Struct construction.
    Tuple(Vec<Expr>),
    /// The current evaluation time `t` as an integer tick count. Needed by
    /// queries whose payload math references time itself (e.g. the linear
    /// interpolation of the resampling application).
    Time,
    /// `~obj[t + offset]` — point access to a temporal object.
    At {
        /// The accessed object.
        obj: TObjId,
        /// Offset in ticks relative to the evaluation time.
        offset: i64,
    },
    /// `⊕(op, ~obj[t+lo : t+hi])` — reduction over a derived window.
    Reduce {
        /// The reduction operation.
        op: ReduceOp,
        /// The window being reduced.
        window: WindowRef,
    },
}

impl Expr {
    /// Constant constructor.
    pub fn c<V: Into<Value>>(v: V) -> Expr {
        Expr::Const(v.into())
    }

    /// The φ literal.
    pub fn null() -> Expr {
        Expr::Const(Value::Null)
    }

    /// `~obj[t]`.
    pub fn at(obj: TObjId) -> Expr {
        Expr::At { obj, offset: 0 }
    }

    /// `~obj[t + offset]`.
    pub fn at_off(obj: TObjId, offset: i64) -> Expr {
        Expr::At { obj, offset }
    }

    /// `⊕(op, ~obj[t - size : t])` — the common trailing window.
    pub fn reduce_window(op: ReduceOp, obj: TObjId, size: i64) -> Expr {
        Expr::Reduce { op, window: WindowRef { obj, lo: -size, hi: 0, map: None } }
    }

    /// `⊕(op, ~obj[t + lo : t + hi])`.
    pub fn reduce(op: ReduceOp, obj: TObjId, lo: i64, hi: i64) -> Expr {
        Expr::Reduce { op, window: WindowRef { obj, lo, hi, map: None } }
    }

    /// Binary op builder.
    pub fn bin(self, op: BinOp, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(self), Box::new(rhs))
    }

    /// `self + rhs`.
    #[allow(clippy::should_implement_trait)] // builder DSL, consumes `self` by design
    pub fn add(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Add, rhs)
    }

    /// `self - rhs`.
    #[allow(clippy::should_implement_trait)] // builder DSL, consumes `self` by design
    pub fn sub(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Sub, rhs)
    }

    /// `self * rhs`.
    #[allow(clippy::should_implement_trait)] // builder DSL, consumes `self` by design
    pub fn mul(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Mul, rhs)
    }

    /// `self / rhs`.
    #[allow(clippy::should_implement_trait)] // builder DSL, consumes `self` by design
    pub fn div(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Div, rhs)
    }

    /// `self % rhs`.
    #[allow(clippy::should_implement_trait)] // builder DSL, consumes `self` by design
    pub fn rem(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Rem, rhs)
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Lt, rhs)
    }

    /// `self <= rhs`.
    pub fn le(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Le, rhs)
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Gt, rhs)
    }

    /// `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Ge, rhs)
    }

    /// `self == rhs` (φ-propagating).
    pub fn eq(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Eq, rhs)
    }

    /// `self != rhs` (φ-propagating).
    pub fn ne(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Ne, rhs)
    }

    /// `self && rhs` (Kleene).
    pub fn and(self, rhs: Expr) -> Expr {
        self.bin(BinOp::And, rhs)
    }

    /// `self || rhs` (Kleene).
    pub fn or(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Or, rhs)
    }

    /// `-self`.
    #[allow(clippy::should_implement_trait)] // builder DSL, consumes `self` by design
    pub fn neg(self) -> Expr {
        Expr::Unary(UnOp::Neg, Box::new(self))
    }

    /// `abs(self)`.
    pub fn abs(self) -> Expr {
        Expr::Unary(UnOp::Abs, Box::new(self))
    }

    /// `sqrt(self)`.
    pub fn sqrt(self) -> Expr {
        Expr::Unary(UnOp::Sqrt, Box::new(self))
    }

    /// The paper's `self != φ` test (never φ). Note the *polarity*: this is
    /// `is_null`, so "has a value" is `is_null().not()`.
    pub fn is_null(self) -> Expr {
        Expr::Unary(UnOp::IsNull, Box::new(self))
    }

    /// "Has a value" — `!(self is φ)`; never φ.
    pub fn is_present(self) -> Expr {
        Expr::Unary(UnOp::Not, Box::new(Expr::Unary(UnOp::IsNull, Box::new(self))))
    }

    /// `cond ? self : else_`.
    pub fn if_else(cond: Expr, then: Expr, else_: Expr) -> Expr {
        Expr::If(Box::new(cond), Box::new(then), Box::new(else_))
    }

    /// Struct field access.
    pub fn get(self, field: usize) -> Expr {
        Expr::Field(Box::new(self), field)
    }

    /// Visits every node of the expression tree (pre-order).
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Const(_) | Expr::Var(_) | Expr::Time | Expr::At { .. } => {}
            Expr::Unary(_, a) | Expr::Field(a, _) => a.walk(f),
            Expr::Binary(_, a, b) => {
                a.walk(f);
                b.walk(f);
            }
            Expr::If(c, t, e) => {
                c.walk(f);
                t.walk(f);
                e.walk(f);
            }
            Expr::Let { value, body, .. } => {
                value.walk(f);
                body.walk(f);
            }
            Expr::Tuple(items) => {
                for it in items {
                    it.walk(f);
                }
            }
            Expr::Reduce { window, .. } => {
                if let Some((_, m)) = &window.map {
                    m.walk(f);
                }
            }
        }
    }

    /// Rewrites the tree bottom-up with `f` applied to every rebuilt node.
    pub fn rewrite(self, f: &mut impl FnMut(Expr) -> Expr) -> Expr {
        let rebuilt = match self {
            Expr::Const(_) | Expr::Var(_) | Expr::Time | Expr::At { .. } => self,
            Expr::Unary(op, a) => Expr::Unary(op, Box::new(a.rewrite(f))),
            Expr::Binary(op, a, b) => {
                Expr::Binary(op, Box::new(a.rewrite(f)), Box::new(b.rewrite(f)))
            }
            Expr::If(c, t, e) => {
                Expr::If(Box::new(c.rewrite(f)), Box::new(t.rewrite(f)), Box::new(e.rewrite(f)))
            }
            Expr::Let { var, value, body } => Expr::Let {
                var,
                value: Box::new(value.rewrite(f)),
                body: Box::new(body.rewrite(f)),
            },
            Expr::Field(a, i) => Expr::Field(Box::new(a.rewrite(f)), i),
            Expr::Tuple(items) => Expr::Tuple(items.into_iter().map(|e| e.rewrite(f)).collect()),
            Expr::Reduce { op, window } => {
                let map = window.map.map(|(v, m)| (v, Box::new(m.rewrite(f))));
                Expr::Reduce { op, window: WindowRef { map, ..window } }
            }
        };
        f(rebuilt)
    }

    /// Collects the temporal objects this expression reads.
    pub fn referenced_objects(&self) -> Vec<TObjId> {
        let mut out = Vec::new();
        self.walk(&mut |e| match e {
            Expr::At { obj, .. } => out.push(*obj),
            Expr::Reduce { window, .. } => out.push(window.obj),
            _ => {}
        });
        out.sort();
        out.dedup();
        out
    }

    /// Shifts every temporal access by `delta` ticks (`t → t + delta`),
    /// used when inlining a producer accessed at an offset.
    pub fn shift_time(self, delta: i64) -> Expr {
        if delta == 0 {
            return self;
        }
        self.rewrite(&mut |e| match e {
            // `t` inlined at offset d reads the producer's clock: t + d.
            Expr::Time => Expr::Time.add(Expr::c(delta)),
            Expr::At { obj, offset } => Expr::At { obj, offset: offset + delta },
            Expr::Reduce { op, window } => Expr::Reduce {
                op,
                window: WindowRef { lo: window.lo + delta, hi: window.hi + delta, ..window },
            },
            other => other,
        })
    }

    /// Substitutes `replacement` for every occurrence of `Var(var)`.
    pub fn subst_var(self, var: VarId, replacement: &Expr) -> Expr {
        self.rewrite(&mut |e| match e {
            Expr::Var(v) if v == var => replacement.clone(),
            other => other,
        })
    }

    /// Whether the expression contains any reduction.
    pub fn has_reduce(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(e, Expr::Reduce { .. }) {
                found = true;
            }
        });
        found
    }

    /// Number of nodes in the tree (used by inlining cost heuristics).
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |_| n += 1);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(i: u32) -> TObjId {
        TObjId(i)
    }

    #[test]
    fn builders_compose() {
        let e = Expr::at(obj(0)).add(Expr::c(1i64)).gt(Expr::c(0i64));
        assert_eq!(e.size(), 5);
        assert_eq!(e.referenced_objects(), vec![obj(0)]);
    }

    #[test]
    fn shift_time_adjusts_all_accesses() {
        let e = Expr::at_off(obj(0), -2).add(Expr::reduce(ReduceOp::Sum, obj(1), -10, 0));
        let shifted = e.shift_time(-5);
        let mut offsets = Vec::new();
        shifted.walk(&mut |n| match n {
            Expr::At { offset, .. } => offsets.push(*offset),
            Expr::Reduce { window, .. } => offsets.extend([window.lo, window.hi]),
            _ => {}
        });
        offsets.sort();
        assert_eq!(offsets, vec![-15, -7, -5]);
    }

    #[test]
    fn subst_var_replaces_only_target() {
        let v0 = VarId(0);
        let v1 = VarId(1);
        let e = Expr::Var(v0).add(Expr::Var(v1));
        let s = e.subst_var(v0, &Expr::c(7i64));
        assert_eq!(s, Expr::c(7i64).add(Expr::Var(v1)));
    }

    #[test]
    fn reduce_detection_and_object_collection() {
        let e = Expr::reduce_window(ReduceOp::Mean, obj(3), 10).sub(Expr::at(obj(2)));
        assert!(e.has_reduce());
        assert_eq!(e.referenced_objects(), vec![obj(2), obj(3)]);
        assert!(!Expr::c(1i64).has_reduce());
    }

    #[test]
    fn ops_apply_matches_value_semantics() {
        assert_eq!(BinOp::Add.apply(&Value::Int(1), &Value::Int(2)), Value::Int(3));
        assert_eq!(BinOp::And.apply(&Value::Bool(false), &Value::Null), Value::Bool(false));
        assert_eq!(UnOp::IsNull.apply(&Value::Null), Value::Bool(true));
        assert_eq!(UnOp::Sqrt.apply(&Value::Int(4)), Value::Float(2.0));
    }

    #[test]
    fn reduce_op_result_types() {
        assert_eq!(ReduceOp::Sum.result_type(&DataType::Int), DataType::Int);
        assert_eq!(ReduceOp::Count.result_type(&DataType::Float), DataType::Int);
        assert_eq!(ReduceOp::Mean.result_type(&DataType::Int), DataType::Float);
    }

    #[test]
    fn rewrite_is_bottom_up() {
        // Fold (1 + 2) by rewriting constants' additions.
        let e = Expr::c(1i64).add(Expr::c(2i64)).mul(Expr::c(3i64));
        let folded = e.rewrite(&mut |n| match n {
            Expr::Binary(BinOp::Add, a, b) => match (&*a, &*b) {
                (Expr::Const(x), Expr::Const(y)) => Expr::Const(x.add(y)),
                _ => Expr::Binary(BinOp::Add, a, b),
            },
            other => other,
        });
        assert_eq!(folded, Expr::c(3i64).mul(Expr::c(3i64)));
    }
}
