//! Pretty-printer rendering TiLT IR in the paper's notation.

use std::fmt::Write as _;

use super::expr::{Expr, TObjId};
use super::query::Query;

/// Renders a query in (approximately) the notation of Fig. 3 of the paper:
///
/// ```text
/// t = TDom(-inf, +inf, 1)
/// ~filter[t] = (~join[t] > 0) ? ~join[t] : φ
/// ```
pub fn print_query(q: &Query) -> String {
    let mut out = String::new();
    for input in q.inputs() {
        let _ = writeln!(out, "input ~{}", q.name(*input));
    }
    for te in q.exprs() {
        let _ = writeln!(
            out,
            "~{}[t] @ {}{} = {}",
            q.name(te.output),
            te.dom,
            if te.sample { " sampled" } else { "" },
            print_expr(&te.body, q)
        );
    }
    let _ = writeln!(out, "return ~{}", q.name(q.output()));
    out
}

/// Renders one expression.
pub fn print_expr(e: &Expr, q: &Query) -> String {
    let mut s = String::new();
    emit(e, q, &mut s);
    s
}

fn obj_name(obj: TObjId, q: &Query) -> String {
    format!("~{}", q.name(obj))
}

fn off(offset: i64) -> String {
    if offset == 0 {
        "t".to_string()
    } else if offset > 0 {
        format!("t+{offset}")
    } else {
        format!("t{offset}")
    }
}

fn emit(e: &Expr, q: &Query, s: &mut String) {
    match e {
        Expr::Const(v) => {
            let _ = write!(s, "{v}");
        }
        Expr::Var(v) => {
            let _ = write!(s, "{v}");
        }
        Expr::Time => {
            let _ = write!(s, "t");
        }
        Expr::Unary(op, a) => {
            let _ = write!(s, "{op}(");
            emit(a, q, s);
            let _ = write!(s, ")");
        }
        Expr::Binary(op, a, b) => {
            let _ = write!(s, "(");
            emit(a, q, s);
            let _ = write!(s, " {op} ");
            emit(b, q, s);
            let _ = write!(s, ")");
        }
        Expr::If(c, t, f) => {
            let _ = write!(s, "(");
            emit(c, q, s);
            let _ = write!(s, " ? ");
            emit(t, q, s);
            let _ = write!(s, " : ");
            emit(f, q, s);
            let _ = write!(s, ")");
        }
        Expr::Let { var, value, body } => {
            let _ = write!(s, "{{ {var} = ");
            emit(value, q, s);
            let _ = write!(s, "; ");
            emit(body, q, s);
            let _ = write!(s, " }}");
        }
        Expr::Field(a, i) => {
            emit(a, q, s);
            let _ = write!(s, ".{i}");
        }
        Expr::Tuple(items) => {
            let _ = write!(s, "{{");
            for (i, it) in items.iter().enumerate() {
                if i > 0 {
                    let _ = write!(s, ", ");
                }
                emit(it, q, s);
            }
            let _ = write!(s, "}}");
        }
        Expr::At { obj, offset } => {
            let _ = write!(s, "{}[{}]", obj_name(*obj, q), off(*offset));
        }
        Expr::Reduce { op, window } => {
            let _ = write!(
                s,
                "⊕({}, {}[{} : {}]",
                op.name(),
                obj_name(window.obj, q),
                off(window.lo),
                off(window.hi)
            );
            if let Some((var, m)) = &window.map {
                let _ = write!(s, ", {var} => ");
                emit(m, q, s);
            }
            let _ = write!(s, ")");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{DataType, Expr, ReduceOp, TDom};

    #[test]
    fn prints_trend_like_query() {
        let mut b = Query::builder();
        let stock = b.input("stock", DataType::Float);
        let sum10 =
            b.temporal("sum10", TDom::every_tick(), Expr::reduce_window(ReduceOp::Sum, stock, 10));
        let avg = b.temporal("avg10", TDom::every_tick(), Expr::at(sum10).div(Expr::c(10.0)));
        let q = b.finish(avg).unwrap();
        let text = print_query(&q);
        assert!(text.contains("input ~stock"));
        assert!(text.contains("~sum10[t]"));
        assert!(text.contains("⊕(sum, ~stock[t-10 : t])"));
        assert!(text.contains("(~sum10[t] / 10)"));
        assert!(text.contains("return ~avg10"));
    }

    #[test]
    fn prints_phi_and_conditionals() {
        let mut b = Query::builder();
        let input = b.input("m", DataType::Float);
        let body = Expr::if_else(Expr::at(input).gt(Expr::c(0.0)), Expr::at(input), Expr::null());
        let out = b.temporal("where", TDom::every_tick(), body);
        let q = b.finish(out).unwrap();
        let text = print_query(&q);
        assert!(text.contains("((~m[t] > 0) ? ~m[t] : φ)"));
    }

    #[test]
    fn prints_offsets_both_directions() {
        let mut b = Query::builder();
        let input = b.input("m", DataType::Float);
        let body = Expr::at_off(input, -3).add(Expr::at_off(input, 2));
        let out = b.temporal("o", TDom::every_tick(), body);
        let q = b.finish(out).unwrap();
        let text = print_expr(&q.exprs()[0].body, &q);
        assert_eq!(text, "(~m[t-3] + ~m[t+2])");
    }
}
