//! Type checking and inference for TiLT IR queries.

use std::collections::HashMap;

use super::expr::{BinOp, Expr, TObjId, UnOp, VarId};
use super::query::Query;
use super::types::DataType;
use crate::error::{CompileError, Result};

/// The result of type checking: the payload type of every temporal object.
#[derive(Clone, Debug, Default)]
pub struct TypeInfo {
    object_types: HashMap<TObjId, DataType>,
}

impl TypeInfo {
    /// The inferred payload type of `obj`.
    pub fn object_type(&self, obj: TObjId) -> Option<&DataType> {
        self.object_types.get(&obj)
    }
}

/// Type checks `query`, inferring the payload type of each temporal object.
///
/// # Errors
///
/// Returns [`CompileError::Type`] when an operator is applied to operands of
/// incompatible types, and [`CompileError::UnboundVar`] for out-of-scope
/// variable references.
pub fn typecheck(query: &Query) -> Result<TypeInfo> {
    let mut info = TypeInfo::default();
    for &input in query.inputs() {
        let ty = query
            .input_type(input)
            .cloned()
            .ok_or_else(|| CompileError::Type(format!("input {input} has no declared type")))?;
        info.object_types.insert(input, ty);
    }
    for te in query.exprs() {
        let mut env: HashMap<VarId, DataType> = HashMap::new();
        let objs = |obj: TObjId| obj_type(obj, &info, query);
        let ty = infer_expr(&te.body, &objs, &mut env)?;
        info.object_types.insert(te.output, ty);
    }
    Ok(info)
}

fn obj_type(obj: TObjId, info: &TypeInfo, query: &Query) -> Result<DataType> {
    info.object_types
        .get(&obj)
        .cloned()
        .ok_or_else(|| CompileError::UnboundObject(query.name(obj).to_string()))
}

/// Infers the type of one expression, resolving temporal-object types
/// through `objs`. Shared by whole-query [`typecheck`] and the typed kernel
/// compiler (`codegen::compiled`), which re-derives sub-expression types
/// while lowering to typed registers.
pub(crate) fn infer_expr(
    e: &Expr,
    objs: &dyn Fn(TObjId) -> Result<DataType>,
    env: &mut HashMap<VarId, DataType>,
) -> Result<DataType> {
    match e {
        Expr::Const(v) => Ok(DataType::of_value(v)),
        Expr::Time => Ok(DataType::Int),
        Expr::Var(v) => env.get(v).cloned().ok_or_else(|| CompileError::UnboundVar(v.to_string())),
        Expr::Unary(op, a) => {
            let ta = infer_expr(a, objs, env)?;
            unary_type(*op, &ta)
        }
        Expr::Binary(op, a, b) => {
            let ta = infer_expr(a, objs, env)?;
            let tb = infer_expr(b, objs, env)?;
            binary_type(*op, &ta, &tb)
        }
        Expr::If(c, t, f) => {
            let tc = infer_expr(c, objs, env)?;
            if tc.unify(&DataType::Bool).is_none() {
                return Err(CompileError::Type(format!("if condition has type {tc}, not bool")));
            }
            let tt = infer_expr(t, objs, env)?;
            let tf = infer_expr(f, objs, env)?;
            tt.unify(&tf)
                .or_else(|| tt.promote(&tf))
                .ok_or_else(|| CompileError::Type(format!("if branches disagree: {tt} vs {tf}")))
        }
        Expr::Let { var, value, body } => {
            let tv = infer_expr(value, objs, env)?;
            let shadowed = env.insert(*var, tv);
            let tb = infer_expr(body, objs, env)?;
            match shadowed {
                Some(t) => {
                    env.insert(*var, t);
                }
                None => {
                    env.remove(var);
                }
            }
            Ok(tb)
        }
        Expr::Field(a, i) => {
            let ta = infer_expr(a, objs, env)?;
            match ta {
                DataType::Tuple(fields) => fields.get(*i).cloned().ok_or_else(|| {
                    CompileError::Type(format!(
                        "field {i} out of bounds for {}-tuple",
                        fields.len()
                    ))
                }),
                DataType::Unknown => Ok(DataType::Unknown),
                other => Err(CompileError::Type(format!("field access on non-struct {other}"))),
            }
        }
        Expr::Tuple(items) => {
            let fields: Result<Vec<DataType>> =
                items.iter().map(|it| infer_expr(it, objs, env)).collect();
            Ok(DataType::Tuple(fields?))
        }
        Expr::At { obj, .. } => objs(*obj),
        Expr::Reduce { op, window } => {
            if window.lo >= window.hi {
                return Err(CompileError::Invalid(format!(
                    "reduce window (t{:+}, t{:+}] is empty",
                    window.lo, window.hi
                )));
            }
            let src = objs(window.obj)?;
            let elem = match &window.map {
                Some((var, mapped)) => {
                    let shadowed = env.insert(*var, src);
                    let t = infer_expr(mapped, objs, env)?;
                    match shadowed {
                        Some(prev) => {
                            env.insert(*var, prev);
                        }
                        None => {
                            env.remove(var);
                        }
                    }
                    t
                }
                None => src,
            };
            Ok(op.result_type(&elem))
        }
    }
}

pub(crate) fn unary_type(op: UnOp, a: &DataType) -> Result<DataType> {
    let err = |msg: String| Err(CompileError::Type(msg));
    match op {
        UnOp::Neg | UnOp::Abs => {
            if a.is_numeric() {
                Ok(if *a == DataType::Unknown { DataType::Unknown } else { a.clone() })
            } else {
                err(format!("{op} applied to {a}"))
            }
        }
        UnOp::Sqrt => {
            if a.is_numeric() {
                Ok(DataType::Float)
            } else {
                err(format!("sqrt applied to {a}"))
            }
        }
        UnOp::Not => match a.unify(&DataType::Bool) {
            Some(_) => Ok(DataType::Bool),
            None => err(format!("! applied to {a}")),
        },
        UnOp::IsNull => Ok(DataType::Bool),
        UnOp::ToFloat => {
            if a.is_numeric() {
                Ok(DataType::Float)
            } else {
                err(format!("float cast applied to {a}"))
            }
        }
        UnOp::ToInt => {
            if a.is_numeric() {
                Ok(DataType::Int)
            } else {
                err(format!("int cast applied to {a}"))
            }
        }
    }
}

pub(crate) fn binary_type(op: BinOp, a: &DataType, b: &DataType) -> Result<DataType> {
    let err = || Err(CompileError::Type(format!("operator {op} applied to {a} and {b}")));
    if op.is_comparison() {
        // Comparisons accept comparable pairs; result is bool.
        if a.promote(b).is_some() || a.unify(b).is_some() {
            return Ok(DataType::Bool);
        }
        return err();
    }
    if op.is_logical() {
        if a.unify(&DataType::Bool).is_some() && b.unify(&DataType::Bool).is_some() {
            return Ok(DataType::Bool);
        }
        return err();
    }
    match a.promote(b) {
        Some(t) => Ok(t),
        None => err(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::expr::ReduceOp;
    use crate::ir::texpr::TDom;

    fn check(
        build: impl FnOnce(&mut super::super::query::QueryBuilder, TObjId) -> Expr,
    ) -> Result<TypeInfo> {
        let mut b = Query::builder();
        let input = b.input("in", DataType::Float);
        let body = build(&mut b, input);
        let out = b.temporal("out", TDom::every_tick(), body);
        let q = b.finish(out)?;
        typecheck(&q)
    }

    #[test]
    fn infers_float_pipeline() {
        let info = check(|_, i| Expr::at(i).add(Expr::c(1.0))).unwrap();
        assert_eq!(info.object_type(TObjId(1)), Some(&DataType::Float));
    }

    #[test]
    fn mean_of_float_window_is_float() {
        let info = check(|_, i| Expr::reduce_window(ReduceOp::Mean, i, 10)).unwrap();
        assert_eq!(info.object_type(TObjId(1)), Some(&DataType::Float));
    }

    #[test]
    fn count_is_int() {
        let info = check(|_, i| Expr::reduce_window(ReduceOp::Count, i, 10)).unwrap();
        assert_eq!(info.object_type(TObjId(1)), Some(&DataType::Int));
    }

    #[test]
    fn null_branches_unify() {
        // (in > 0) ? in : φ — the standard Where encoding.
        let info =
            check(|_, i| Expr::if_else(Expr::at(i).gt(Expr::c(0.0)), Expr::at(i), Expr::null()))
                .unwrap();
        assert_eq!(info.object_type(TObjId(1)), Some(&DataType::Float));
    }

    #[test]
    fn bool_arith_rejected() {
        let err = check(|_, i| Expr::at(i).gt(Expr::c(0.0)).add(Expr::c(1i64))).unwrap_err();
        assert!(matches!(err, CompileError::Type(_)));
    }

    #[test]
    fn if_condition_must_be_bool() {
        let err =
            check(|_, i| Expr::if_else(Expr::at(i), Expr::c(1i64), Expr::c(2i64))).unwrap_err();
        assert!(matches!(err, CompileError::Type(_)));
    }

    #[test]
    fn let_scoping_restores_shadowed() {
        let info = check(|b, i| {
            let v = b.var();
            // let v = in + 1 in v * v
            Expr::Let {
                var: v,
                value: Box::new(Expr::at(i).add(Expr::c(1.0))),
                body: Box::new(Expr::Var(v).mul(Expr::Var(v))),
            }
        })
        .unwrap();
        assert_eq!(info.object_type(TObjId(1)), Some(&DataType::Float));
    }

    #[test]
    fn unbound_var_caught() {
        let err = check(|_, _| Expr::Var(VarId(42))).unwrap_err();
        assert!(matches!(err, CompileError::UnboundVar(_)));
    }

    #[test]
    fn tuple_projection() {
        let mut b = Query::builder();
        let input = b.input("in", DataType::Tuple(vec![DataType::Int, DataType::Float]));
        let out = b.temporal("out", TDom::every_tick(), Expr::at(input).get(1).add(Expr::c(1.0)));
        let q = b.finish(out).unwrap();
        let info = typecheck(&q).unwrap();
        assert_eq!(info.object_type(out), Some(&DataType::Float));
    }

    #[test]
    fn empty_reduce_window_rejected() {
        let err = check(|_, i| Expr::reduce(ReduceOp::Sum, i, 0, 0)).unwrap_err();
        assert!(matches!(err, CompileError::Invalid(_)));
    }

    #[test]
    fn mapped_window_types_element() {
        let mut b = Query::builder();
        let input = b.input("in", DataType::Float);
        let v = b.var();
        let body = Expr::Reduce {
            op: ReduceOp::Sum,
            window: crate::ir::expr::WindowRef {
                obj: input,
                lo: -10,
                hi: 0,
                map: Some((v, Box::new(Expr::Var(v).mul(Expr::Var(v))))),
            },
        };
        let out = b.temporal("out", TDom::every_tick(), body);
        let q = b.finish(out).unwrap();
        let info = typecheck(&q).unwrap();
        assert_eq!(info.object_type(out), Some(&DataType::Float));
    }
}
