//! Data types of the TiLT IR's scalar expression language.

use std::fmt;

use tilt_data::Value;

/// The type of a scalar expression or temporal-object payload.
///
/// φ inhabits every type (it is the "no value" of temporal objects), so
/// there is no dedicated null type; an expression that always evaluates to φ
/// has the polymorphic [`DataType::Unknown`] type, which unifies with
/// anything.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum DataType {
    /// Type not yet determined (e.g. a bare φ literal); unifies with any.
    Unknown,
    /// Booleans.
    Bool,
    /// 64-bit signed integers.
    Int,
    /// 64-bit floats.
    Float,
    /// Interned strings.
    Str,
    /// Positional structs.
    Tuple(Vec<DataType>),
}

impl DataType {
    /// Whether this type is numeric (int or float).
    pub fn is_numeric(&self) -> bool {
        matches!(self, DataType::Int | DataType::Float | DataType::Unknown)
    }

    /// The type of the given runtime value.
    pub fn of_value(v: &Value) -> DataType {
        match v {
            Value::Null => DataType::Unknown,
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
            Value::Tuple(fields) => {
                DataType::Tuple(fields.iter().map(DataType::of_value).collect())
            }
        }
    }

    /// Unifies two types, treating [`DataType::Unknown`] as a wildcard.
    /// Returns `None` when the types conflict.
    pub fn unify(&self, other: &DataType) -> Option<DataType> {
        match (self, other) {
            (DataType::Unknown, t) | (t, DataType::Unknown) => Some(t.clone()),
            (DataType::Tuple(a), DataType::Tuple(b)) => {
                if a.len() != b.len() {
                    return None;
                }
                let fields: Option<Vec<DataType>> =
                    a.iter().zip(b.iter()).map(|(x, y)| x.unify(y)).collect();
                Some(DataType::Tuple(fields?))
            }
            (a, b) if a == b => Some(a.clone()),
            _ => None,
        }
    }

    /// Numeric promotion: `Int ⊔ Float = Float`; `None` for non-numerics.
    pub fn promote(&self, other: &DataType) -> Option<DataType> {
        match (self, other) {
            (DataType::Unknown, t) | (t, DataType::Unknown) if t.is_numeric() => Some(t.clone()),
            (DataType::Int, DataType::Int) => Some(DataType::Int),
            (DataType::Float, DataType::Float)
            | (DataType::Int, DataType::Float)
            | (DataType::Float, DataType::Int) => Some(DataType::Float),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Unknown => write!(f, "?"),
            DataType::Bool => write!(f, "bool"),
            DataType::Int => write!(f, "int"),
            DataType::Float => write!(f, "float"),
            DataType::Str => write!(f, "str"),
            DataType::Tuple(fields) => {
                write!(f, "{{")?;
                for (i, t) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unify_wildcards_and_tuples() {
        assert_eq!(DataType::Unknown.unify(&DataType::Float), Some(DataType::Float));
        assert_eq!(DataType::Int.unify(&DataType::Int), Some(DataType::Int));
        assert_eq!(DataType::Int.unify(&DataType::Float), None);
        let a = DataType::Tuple(vec![DataType::Unknown, DataType::Int]);
        let b = DataType::Tuple(vec![DataType::Float, DataType::Unknown]);
        assert_eq!(a.unify(&b), Some(DataType::Tuple(vec![DataType::Float, DataType::Int])));
    }

    #[test]
    fn promotion() {
        assert_eq!(DataType::Int.promote(&DataType::Float), Some(DataType::Float));
        assert_eq!(DataType::Int.promote(&DataType::Int), Some(DataType::Int));
        assert_eq!(DataType::Bool.promote(&DataType::Int), None);
    }

    #[test]
    fn of_value() {
        assert_eq!(DataType::of_value(&Value::Float(1.0)), DataType::Float);
        assert_eq!(DataType::of_value(&Value::Null), DataType::Unknown);
        assert_eq!(
            DataType::of_value(&Value::tuple([Value::Int(1), Value::Bool(true)])),
            DataType::Tuple(vec![DataType::Int, DataType::Bool])
        );
    }

    #[test]
    fn display() {
        assert_eq!(DataType::Tuple(vec![DataType::Int, DataType::Str]).to_string(), "{int, str}");
    }
}
