//! Temporal expressions and time domains (paper §4.1).

use std::fmt;

use tilt_data::{Time, TimeRange};

use super::expr::{Expr, TObjId};

/// A time domain `TDom(start, end, precision)`.
///
/// The temporal expression defined over this domain produces values for
/// times in `(start, end]` that are multiples of `precision`. Queries are
/// initially written over the unbounded domain ([`TDom::unbounded`]); the
/// boundary-resolution pass re-domains them to the symbolic `(Ts, Te]`
/// interval supplied at execution time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TDom {
    /// Exclusive domain start (`Time::MIN` = −∞).
    pub start: Time,
    /// Inclusive domain end (`Time::MAX` = +∞).
    pub end: Time,
    /// Tick granularity at which the output may change value (> 0).
    pub precision: i64,
}

impl TDom {
    /// `TDom(-∞, +∞, precision)`.
    pub fn unbounded(precision: i64) -> TDom {
        assert!(precision > 0, "precision must be positive");
        TDom { start: Time::MIN, end: Time::MAX, precision }
    }

    /// `TDom(-∞, +∞, 1)` — the default domain of per-event operations.
    pub fn every_tick() -> TDom {
        TDom::unbounded(1)
    }

    /// Whether the domain covers the whole timeline.
    pub fn is_unbounded(&self) -> bool {
        self.start == Time::MIN && self.end == Time::MAX
    }

    /// The covered range.
    pub fn range(&self) -> TimeRange {
        TimeRange { start: self.start, end: self.end }
    }
}

impl fmt::Display for TDom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TDom({}, {}, {})", self.start, self.end, self.precision)
    }
}

/// A temporal expression: `~output[t] = body` over a time domain.
///
/// `sample` selects between the two loop-synthesis strategies of §6.1.3:
///
/// * `false` (default) — *event-driven*: the kernel advances `t` directly to
///   the next time any referenced input changes value, skipping redundant
///   ticks (the paper's loop-counter-increment optimization);
/// * `true` — *sampled*: the kernel evaluates at every precision tick while
///   any input is active. This is the semantics of re-sampling operators
///   (`Chop`), which must emit snapshots even when inputs do not change.
#[derive(Clone, Debug, PartialEq)]
pub struct TempExpr {
    /// The defined temporal object.
    pub output: TObjId,
    /// The time domain of the definition.
    pub dom: TDom,
    /// The defining expression, evaluated at each domain time point.
    pub body: Expr,
    /// Sampled (true) vs event-driven (false) loop synthesis.
    pub sample: bool,
}

impl TempExpr {
    /// Creates an event-driven temporal expression.
    pub fn new(output: TObjId, dom: TDom, body: Expr) -> TempExpr {
        TempExpr { output, dom, body, sample: false }
    }

    /// Creates a sampled temporal expression (see type-level docs).
    pub fn sampled(output: TObjId, dom: TDom, body: Expr) -> TempExpr {
        TempExpr { output, dom, body, sample: true }
    }

    /// The temporal objects read by this expression.
    pub fn dependencies(&self) -> Vec<TObjId> {
        self.body.referenced_objects()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::expr::ReduceOp;

    #[test]
    fn unbounded_domain() {
        let d = TDom::unbounded(5);
        assert!(d.is_unbounded());
        assert_eq!(d.precision, 5);
        assert_eq!(TDom::every_tick().precision, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_precision_rejected() {
        let _ = TDom::unbounded(0);
    }

    #[test]
    fn dependencies_deduplicated() {
        let a = TObjId(1);
        let body = Expr::at(a).add(Expr::reduce_window(ReduceOp::Sum, a, 10));
        let te = TempExpr::new(TObjId(2), TDom::every_tick(), body);
        assert_eq!(te.dependencies(), vec![a]);
        assert!(!te.sample);
    }

    #[test]
    fn display_tdom() {
        assert_eq!(TDom::unbounded(1).to_string(), "TDom(-inf, +inf, 1)");
    }
}
