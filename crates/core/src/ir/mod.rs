//! The TiLT intermediate representation (paper §4).
//!
//! A streaming query in TiLT IR is a [`Query`]: a DAG of [`TempExpr`]s, each
//! defining one temporal object as a functional transformation of other
//! temporal objects over a [`TDom`] time domain. The expression language
//! ([`Expr`]) is a small functional language with φ-propagating scalar
//! operations plus the two temporal constructs: point access ([`Expr::At`])
//! and window reduction ([`Expr::Reduce`]).

mod expr;
mod printer;
mod query;
mod texpr;
pub(crate) mod typeck;
mod types;

pub use expr::{BinOp, CustomReduce, Expr, ReduceOp, TObjId, UnOp, VarId, WindowRef};
pub use printer::{print_expr, print_query};
pub use query::{Query, QueryBuilder};
pub use texpr::{TDom, TempExpr};
pub use typeck::{typecheck, TypeInfo};
pub use types::DataType;
