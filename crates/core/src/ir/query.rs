//! Whole-query IR: inputs, temporal expressions, and the query builder.

use std::collections::HashMap;

use super::expr::{Expr, TObjId, VarId};
use super::texpr::{TDom, TempExpr};
use super::types::DataType;
use crate::error::{CompileError, Result};

/// A complete TiLT IR query: a DAG of temporal expressions over declared
/// input streams, with one designated output object.
///
/// Build queries with [`QueryBuilder`] (via [`Query::builder`]); the builder
/// allocates object/variable identifiers and [`QueryBuilder::finish`]
/// validates well-formedness (acyclicity, no unbound references) and
/// topologically orders the expressions.
///
/// # Examples
///
/// ```
/// use tilt_core::ir::{Expr, Query, ReduceOp, TDom, DataType};
///
/// let mut b = Query::builder();
/// let stock = b.input("stock", DataType::Float);
/// let avg = b.temporal(
///     "avg10",
///     TDom::unbounded(1),
///     Expr::reduce_window(ReduceOp::Mean, stock, 10),
/// );
/// let query = b.finish(avg).unwrap();
/// assert_eq!(query.inputs().len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Query {
    inputs: Vec<TObjId>,
    input_types: HashMap<TObjId, DataType>,
    exprs: Vec<TempExpr>,
    output: TObjId,
    names: HashMap<TObjId, String>,
    next_obj: u32,
    next_var: u32,
}

impl Query {
    /// Starts building a query.
    pub fn builder() -> QueryBuilder {
        QueryBuilder::default()
    }

    /// The declared input objects, in declaration order.
    pub fn inputs(&self) -> &[TObjId] {
        &self.inputs
    }

    /// The declared type of an input object.
    pub fn input_type(&self, obj: TObjId) -> Option<&DataType> {
        self.input_types.get(&obj)
    }

    /// The temporal expressions in topological (definition-before-use) order.
    pub fn exprs(&self) -> &[TempExpr] {
        &self.exprs
    }

    /// The query's output object.
    pub fn output(&self) -> TObjId {
        self.output
    }

    /// The debug name of an object.
    pub fn name(&self, obj: TObjId) -> &str {
        self.names.get(&obj).map_or("?", |s| s.as_str())
    }

    /// The temporal expression defining `obj`, if it is not an input.
    pub fn definition(&self, obj: TObjId) -> Option<&TempExpr> {
        self.exprs.iter().find(|e| e.output == obj)
    }

    /// Whether `obj` is a declared input.
    pub fn is_input(&self, obj: TObjId) -> bool {
        self.inputs.contains(&obj)
    }

    /// Number of consumers of each object (how many expressions read it,
    /// counting the query output as one extra use).
    pub fn use_counts(&self) -> HashMap<TObjId, usize> {
        let mut counts: HashMap<TObjId, usize> = HashMap::new();
        for te in &self.exprs {
            let mut seen = te.dependencies();
            seen.dedup();
            for dep in seen {
                *counts.entry(dep).or_insert(0) += 1;
            }
        }
        *counts.entry(self.output).or_insert(0) += 1;
        counts
    }

    /// Replaces the expression list (used by optimization passes), revalidating
    /// the query structure.
    pub fn with_exprs(&self, exprs: Vec<TempExpr>) -> Result<Query> {
        let mut q = self.clone();
        q.exprs = exprs;
        q.exprs = toposort(&q)?;
        Ok(q)
    }

    /// Allocates a fresh scalar variable (for passes that introduce lets).
    pub fn fresh_var(&mut self) -> VarId {
        let v = VarId(self.next_var);
        self.next_var += 1;
        v
    }

    /// The current variable counter (the next id [`Query::fresh_var`] would
    /// return). Passes that batch-allocate variables read this, construct
    /// ids locally, and then call [`Query::reserve_vars`].
    pub(crate) fn var_counter(&self) -> u32 {
        self.next_var
    }

    /// Ensures future [`Query::fresh_var`] calls return ids ≥ `upto`.
    pub(crate) fn reserve_vars(&mut self, upto: u32) {
        self.next_var = self.next_var.max(upto);
    }

    /// Allocates a fresh temporal object (for passes that split expressions).
    pub fn fresh_obj(&mut self, name: &str) -> TObjId {
        let o = TObjId(self.next_obj);
        self.next_obj += 1;
        self.names.insert(o, name.to_string());
        o
    }
}

/// Incremental builder for [`Query`] values.
#[derive(Default, Debug)]
pub struct QueryBuilder {
    inputs: Vec<TObjId>,
    input_types: HashMap<TObjId, DataType>,
    exprs: Vec<TempExpr>,
    names: HashMap<TObjId, String>,
    next_obj: u32,
    next_var: u32,
}

impl QueryBuilder {
    /// Declares an input stream with the given payload type.
    pub fn input(&mut self, name: &str, ty: DataType) -> TObjId {
        let id = self.alloc(name);
        self.inputs.push(id);
        self.input_types.insert(id, ty);
        id
    }

    /// Defines a temporal object by an event-driven temporal expression.
    pub fn temporal(&mut self, name: &str, dom: TDom, body: Expr) -> TObjId {
        let id = self.alloc(name);
        self.exprs.push(TempExpr::new(id, dom, body));
        id
    }

    /// Defines a temporal object by a sampled temporal expression (see
    /// [`TempExpr`] for the distinction).
    pub fn temporal_sampled(&mut self, name: &str, dom: TDom, body: Expr) -> TObjId {
        let id = self.alloc(name);
        self.exprs.push(TempExpr::sampled(id, dom, body));
        id
    }

    /// Allocates a fresh scalar variable for let-bindings.
    pub fn var(&mut self) -> VarId {
        let v = VarId(self.next_var);
        self.next_var += 1;
        v
    }

    /// Finishes the query with `output` as the result object.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] when the output or any referenced object is
    /// undefined, or when the temporal expressions form a cycle.
    pub fn finish(self, output: TObjId) -> Result<Query> {
        let mut q = Query {
            inputs: self.inputs,
            input_types: self.input_types,
            exprs: self.exprs,
            output,
            names: self.names,
            next_obj: self.next_obj,
            next_var: self.next_var,
        };
        if !q.is_input(output) && q.definition(output).is_none() {
            return Err(CompileError::UnboundObject(format!("{output} (query output)")));
        }
        q.exprs = toposort(&q)?;
        Ok(q)
    }

    fn alloc(&mut self, name: &str) -> TObjId {
        let id = TObjId(self.next_obj);
        self.next_obj += 1;
        self.names.insert(id, name.to_string());
        id
    }
}

/// Topologically sorts the expressions; rejects cycles and unbound references.
fn toposort(q: &Query) -> Result<Vec<TempExpr>> {
    let mut order: Vec<TempExpr> = Vec::with_capacity(q.exprs.len());
    let mut state: HashMap<TObjId, u8> = HashMap::new(); // 1 = visiting, 2 = done

    fn visit(
        q: &Query,
        obj: TObjId,
        state: &mut HashMap<TObjId, u8>,
        order: &mut Vec<TempExpr>,
    ) -> Result<()> {
        if q.is_input(obj) {
            return Ok(());
        }
        match state.get(&obj) {
            Some(2) => return Ok(()),
            Some(1) => return Err(CompileError::Cycle(q.name(obj).to_string())),
            _ => {}
        }
        let def = q
            .definition(obj)
            .ok_or_else(|| CompileError::UnboundObject(q.name(obj).to_string()))?
            .clone();
        state.insert(obj, 1);
        for dep in def.dependencies() {
            visit(q, dep, state, order)?;
        }
        state.insert(obj, 2);
        order.push(def);
        Ok(())
    }

    // Visit from every defined expression (not just the output) so that
    // dead expressions remain valid until DCE removes them.
    let roots: Vec<TObjId> = q.exprs.iter().map(|e| e.output).collect();
    for root in roots {
        visit(q, root, &mut state, &mut order)?;
    }
    visit(q, q.output, &mut state, &mut order)?;
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::expr::ReduceOp;

    #[test]
    fn builder_orders_expressions_topologically() {
        let mut b = Query::builder();
        let input = b.input("in", DataType::Float);
        // Define consumer before producer textually; toposort must fix it.
        let stage2_id = TObjId(2); // forward reference to the object defined below
        let stage3 =
            b.temporal("stage3", TDom::every_tick(), Expr::at(stage2_id).add(Expr::c(1i64)));
        let stage2 = b.temporal("stage2", TDom::every_tick(), Expr::at(input).mul(Expr::c(2i64)));
        assert_eq!(stage2, stage2_id);
        let q = b.finish(stage3).unwrap();
        let order: Vec<TObjId> = q.exprs().iter().map(|e| e.output).collect();
        assert_eq!(order, vec![stage2, stage3]);
    }

    #[test]
    fn cycle_detected() {
        let mut b = Query::builder();
        let _ = b.input("in", DataType::Float);
        let a_id = TObjId(1);
        let b_id = TObjId(2);
        let a = b.temporal("a", TDom::every_tick(), Expr::at(b_id));
        let bb = b.temporal("b", TDom::every_tick(), Expr::at(a_id));
        assert_eq!((a, bb), (a_id, b_id));
        let err = b.finish(b_id).unwrap_err();
        assert!(matches!(err, CompileError::Cycle(_)));
    }

    #[test]
    fn unbound_reference_rejected() {
        let mut b = Query::builder();
        let _ = b.input("in", DataType::Float);
        let bogus = TObjId(77);
        let out = b.temporal("out", TDom::every_tick(), Expr::at(bogus));
        assert!(matches!(b.finish(out), Err(CompileError::UnboundObject(_))));
    }

    #[test]
    fn unbound_output_rejected() {
        let mut b = Query::builder();
        let _ = b.input("in", DataType::Float);
        assert!(matches!(b.finish(TObjId(9)), Err(CompileError::UnboundObject(_))));
    }

    #[test]
    fn use_counts_track_consumers() {
        let mut b = Query::builder();
        let input = b.input("in", DataType::Float);
        let avg =
            b.temporal("avg", TDom::every_tick(), Expr::reduce_window(ReduceOp::Mean, input, 10));
        let out = b.temporal("out", TDom::every_tick(), Expr::at(avg).add(Expr::at(avg)));
        let q = b.finish(out).unwrap();
        let counts = q.use_counts();
        assert_eq!(counts[&avg], 1); // deduplicated within one consumer
        assert_eq!(counts[&input], 1);
        assert_eq!(counts[&out], 1); // the query output use
    }

    #[test]
    fn names_and_types_tracked() {
        let mut b = Query::builder();
        let input = b.input("stock", DataType::Float);
        let out = b.temporal("sel", TDom::every_tick(), Expr::at(input));
        let q = b.finish(out).unwrap();
        assert_eq!(q.name(input), "stock");
        assert_eq!(q.input_type(input), Some(&DataType::Float));
        assert!(q.is_input(input));
        assert!(!q.is_input(out));
        assert_eq!(q.output(), out);
    }
}
