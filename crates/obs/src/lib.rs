//! Observability substrate for the TiLT reproduction.
//!
//! Everything above this crate — the runtime's `SharedStats`, the core
//! compiler's kernel profiles, the bench harness reports — needs the same
//! three primitives: lock-free scalar metrics, cheap latency/lag
//! histograms, and a bounded journal of control-plane transitions. This
//! crate provides exactly those, dependency-free, so any layer of the
//! stack can report through it without import cycles:
//!
//! * [`Counter`] / [`Gauge`] — relaxed atomics with the small API the
//!   runtime actually uses (including [`Gauge::sub_clamped`], which
//!   refuses to go negative and reports the deficit instead of
//!   propagating an accounting bug as a bogus negative reading).
//! * [`Histogram`] — 65 log2 buckets covering the full `u64` range, one
//!   `fetch_add` per recording, with p50/p95/p99/max readout on
//!   snapshot. Bucket `i` holds values in `[2^(i-1), 2^i - 1]` (bucket 0
//!   holds zeros), so recording costs a `leading_zeros` and two relaxed
//!   atomic adds — cheap enough for per-event paths.
//! * [`Registry`] — a named bag of the above. Metrics are registered
//!   once (idempotently, keyed on name + labels) and handed out as
//!   `Arc`s; hot paths touch only their own `Arc`'d atomics and never
//!   the registry lock. [`Registry::snapshot`] freezes every metric into
//!   a [`MetricsSnapshot`] that renders as Prometheus text exposition
//!   ([`MetricsSnapshot::to_prometheus`]) or a JSON value
//!   ([`MetricsSnapshot::to_json`]).
//! * [`Journal`] — a bounded ring buffer of timestamped, sequence-
//!   numbered events with drop accounting (see [`journal`]).
//! * [`Profiler`] — the zero-cost-when-disabled hook the compiler's
//!   kernels implement: one relaxed `bool` load decides whether a code
//!   path pays for timing at all.
//!
//! The [`json`] module (a dependency-free JSON value used by the bench
//! harness since PR 3) lives here so that exposition, bench reports, and
//! the guardrail checker all speak the same format; `tilt_bench::json`
//! re-exports it unchanged.

pub mod journal;
pub mod json;

pub use journal::{Journal, JournalSnapshot, Stamped};
pub use json::Json;

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

// ── Scalar instruments ─────────────────────────────────────────────────

/// A monotonically increasing `u64` counter. All operations are relaxed:
/// counters are statistics, not synchronization.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zero counter.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge: a level, not a rate. Supports the usual add/sub/set
/// plus two runtime-specific operations: a monotonic [`Gauge::set_max`]
/// (watermarks and frontiers only move forward) and a clamped
/// [`Gauge::sub_clamped`] that refuses to push the level negative.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh zero gauge.
    pub const fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Adds `n` to the level.
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` from the level (no clamping — use
    /// [`Gauge::sub_clamped`] where a negative level would be a bug).
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Overwrites the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the level to `v` if it is currently below it.
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Subtracts up to `n`, clamping the level at zero. Returns the
    /// *deficit* — how much of `n` could not be subtracted. A non-zero
    /// deficit means an accounting imbalance (more removed than was ever
    /// added); callers surface it instead of letting the gauge go
    /// negative and corrupting every later reading.
    pub fn sub_clamped(&self, n: i64) -> i64 {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (cur - n).max(0);
            match self.0.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return n - (cur - next),
                Err(seen) => cur = seen,
            }
        }
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ── Histogram ──────────────────────────────────────────────────────────

/// Number of log2 buckets: bucket 0 holds zeros, bucket `i ≥ 1` holds
/// values in `[2^(i-1), 2^i − 1]`, bucket 64 tops out at `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The bucket index for a value.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The largest value bucket `i` can hold.
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A lock-free log2-bucketed histogram of `u64` samples. One recording
/// costs two relaxed `fetch_add`s and one `fetch_max`; readout happens
/// only at snapshot time.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Freezes the current contents. Concurrent recorders may land
    /// between bucket reads; the snapshot is a consistent-enough
    /// statistical view, not a linearizable one.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        HistogramSnapshot {
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A plain, single-owner accumulator for paths that record per event:
/// buffering a sample is one local array increment (no atomics), and
/// [`LocalHistogram::flush_into`] drains the batch into a shared
/// [`Histogram`] with one atomic add per *occupied* bucket. Snapshot
/// readers see buffered samples only after a flush, so staleness is
/// bounded by the flush cadence — statistics-grade, like the snapshots
/// themselves.
#[derive(Debug)]
pub struct LocalHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    sum: u64,
    max: u64,
    count: u64,
}

impl Default for LocalHistogram {
    fn default() -> LocalHistogram {
        LocalHistogram::new()
    }
}

impl LocalHistogram {
    /// A fresh empty accumulator.
    pub fn new() -> LocalHistogram {
        LocalHistogram { buckets: [0; HISTOGRAM_BUCKETS], sum: 0, max: 0, count: 0 }
    }

    /// Buffers one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.sum += v;
        self.max = self.max.max(v);
        self.count += 1;
    }

    /// Number of samples buffered since the last flush.
    pub fn buffered(&self) -> u64 {
        self.count
    }

    /// Drains every buffered sample into `h` and resets. A no-op when
    /// nothing was buffered.
    pub fn flush_into(&mut self, h: &Histogram) {
        if self.count == 0 {
            return;
        }
        for (i, c) in self.buckets.iter_mut().enumerate() {
            if *c > 0 {
                h.buckets[i].fetch_add(*c, Ordering::Relaxed);
                *c = 0;
            }
        }
        h.sum.fetch_add(self.sum, Ordering::Relaxed);
        h.max.fetch_max(self.max, Ordering::Relaxed);
        self.sum = 0;
        self.max = 0;
        self.count = 0;
    }
}

/// A frozen [`Histogram`]: bucket counts plus sum and max, with quantile
/// readout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (`HISTOGRAM_BUCKETS` entries).
    pub buckets: Vec<u64>,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The mean recorded value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as a bucket upper bound, clamped
    /// to the recorded max so `p50 ≤ p99 ≤ max` always holds. Returns 0
    /// for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// The median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// The 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// How many distinct buckets hold at least one sample — a quick
    /// degeneracy check (a real latency distribution spans several).
    pub fn nonzero_buckets(&self) -> usize {
        self.buckets.iter().filter(|&&c| c > 0).count()
    }
}

// ── Profiler hook ──────────────────────────────────────────────────────

/// The zero-cost-when-disabled profiling hook. Implementors gate
/// [`Profiler::record`] behind [`Profiler::enabled`], which must be a
/// single relaxed load so that disabled profiling costs one predictable
/// branch on the hot path.
pub trait Profiler {
    /// Whether timing should be collected at all. Callers check this
    /// *before* reading the clock.
    fn enabled(&self) -> bool;

    /// Records one timed invocation of `nanos` wall nanoseconds.
    fn record(&self, nanos: u64);
}

// ── Registry ───────────────────────────────────────────────────────────

/// One label pair, e.g. `("shard", "0")`.
pub type Label = (String, String);

#[derive(Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct MetricEntry {
    name: String,
    labels: Vec<Label>,
    instrument: Instrument,
}

/// A named collection of metrics. Registration is idempotent on
/// (name, labels) and returns an `Arc` to the shared instrument; the
/// internal lock is touched only at registration and snapshot time,
/// never by recording.
#[derive(Default)]
pub struct Registry {
    entries: RwLock<Vec<MetricEntry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register<T, F: FnOnce() -> Arc<T>>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: F,
        as_instr: fn(Arc<T>) -> Instrument,
        from_instr: fn(&Instrument) -> Option<Arc<T>>,
    ) -> Arc<T> {
        let labels: Vec<Label> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        {
            let entries = self.entries.read().expect("registry lock poisoned");
            for e in entries.iter() {
                if e.name == name && e.labels == labels {
                    return from_instr(&e.instrument)
                        .unwrap_or_else(|| panic!("metric {name} re-registered as another kind"));
                }
            }
        }
        let mut entries = self.entries.write().expect("registry lock poisoned");
        // Re-check under the write lock: another thread may have won.
        for e in entries.iter() {
            if e.name == name && e.labels == labels {
                return from_instr(&e.instrument)
                    .unwrap_or_else(|| panic!("metric {name} re-registered as another kind"));
            }
        }
        let arc = make();
        entries.push(MetricEntry {
            name: name.to_string(),
            labels,
            instrument: as_instr(Arc::clone(&arc)),
        });
        arc
    }

    /// Registers (or retrieves) an unlabeled counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Registers (or retrieves) a labeled counter.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.register(
            name,
            labels,
            || Arc::new(Counter::new()),
            Instrument::Counter,
            |i| match i {
                Instrument::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Registers (or retrieves) an unlabeled gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// Registers (or retrieves) a labeled gauge.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.register(
            name,
            labels,
            || Arc::new(Gauge::new()),
            Instrument::Gauge,
            |i| match i {
                Instrument::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Registers (or retrieves) an unlabeled histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// Registers (or retrieves) a labeled histogram.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.register(
            name,
            labels,
            || Arc::new(Histogram::new()),
            Instrument::Histogram,
            |i| match i {
                Instrument::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Freezes every registered metric into a [`MetricsSnapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = self.entries.read().expect("registry lock poisoned");
        let mut samples: Vec<MetricSample> = entries
            .iter()
            .map(|e| MetricSample {
                name: e.name.clone(),
                labels: e.labels.clone(),
                value: match &e.instrument {
                    Instrument::Counter(c) => SampleValue::Counter(c.get()),
                    Instrument::Gauge(g) => SampleValue::Gauge(g.get()),
                    Instrument::Histogram(h) => SampleValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        // Stable exposition order: by name, then labels.
        samples.sort_by(|a, b| a.name.cmp(&b.name).then_with(|| a.labels.cmp(&b.labels)));
        MetricsSnapshot { samples }
    }
}

/// One frozen metric reading.
#[derive(Clone, Debug)]
pub struct MetricSample {
    /// Metric name, e.g. `tilt_events_in_total`.
    pub name: String,
    /// Label pairs, e.g. `[("shard", "0")]`.
    pub labels: Vec<Label>,
    /// The reading.
    pub value: SampleValue,
}

/// The value of a [`MetricSample`].
#[derive(Clone, Debug)]
pub enum SampleValue {
    /// A counter reading.
    Counter(u64),
    /// A gauge reading.
    Gauge(i64),
    /// A frozen histogram.
    Histogram(HistogramSnapshot),
}

/// A frozen view of a whole [`Registry`], renderable as Prometheus text
/// exposition or JSON.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// All readings, sorted by (name, labels).
    pub samples: Vec<MetricSample>,
}

fn label_suffix(labels: &[Label], extra: Option<(&str, String)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        out.push_str(&format!("{k}=\"{v}\""));
        first = false;
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(&format!("{k}=\"{v}\""));
    }
    out.push('}');
    out
}

impl MetricsSnapshot {
    /// Finds a sample by name and labels.
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricSample> {
        self.samples.iter().find(|s| {
            s.name == name
                && s.labels.len() == labels.len()
                && s.labels.iter().zip(labels).all(|((k, v), (lk, lv))| k == lk && v == lv)
        })
    }

    /// Sums every counter sample sharing `name` (across label sets).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .filter_map(|s| match &s.value {
                SampleValue::Counter(v) => Some(*v),
                _ => None,
            })
            .sum()
    }

    /// Sums every gauge sample sharing `name` (across label sets).
    pub fn gauge_total(&self, name: &str) -> i64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .filter_map(|s| match &s.value {
                SampleValue::Gauge(v) => Some(*v),
                _ => None,
            })
            .sum()
    }

    /// Renders Prometheus text exposition (one `# TYPE` line per metric
    /// name, cumulative `_bucket{le=…}` series for histograms).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for s in &self.samples {
            let kind = match &s.value {
                SampleValue::Counter(_) => "counter",
                SampleValue::Gauge(_) => "gauge",
                SampleValue::Histogram(_) => "histogram",
            };
            if last_name != Some(s.name.as_str()) {
                out.push_str(&format!("# TYPE {} {kind}\n", s.name));
                last_name = Some(s.name.as_str());
            }
            match &s.value {
                SampleValue::Counter(v) => {
                    out.push_str(&format!("{}{} {v}\n", s.name, label_suffix(&s.labels, None)));
                }
                SampleValue::Gauge(v) => {
                    out.push_str(&format!("{}{} {v}\n", s.name, label_suffix(&s.labels, None)));
                }
                SampleValue::Histogram(h) => {
                    // Cumulative buckets up to the last occupied one,
                    // then the mandatory +Inf series.
                    let top = h.buckets.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
                    let mut cum = 0u64;
                    for (i, &c) in h.buckets.iter().enumerate().take(top) {
                        cum += c;
                        out.push_str(&format!(
                            "{}_bucket{} {cum}\n",
                            s.name,
                            label_suffix(&s.labels, Some(("le", bucket_upper(i).to_string()))),
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        s.name,
                        label_suffix(&s.labels, Some(("le", "+Inf".to_string()))),
                        h.count(),
                    ));
                    let base = label_suffix(&s.labels, None);
                    out.push_str(&format!("{}_sum{base} {}\n", s.name, h.sum));
                    out.push_str(&format!("{}_count{base} {}\n", s.name, h.count()));
                }
            }
        }
        out
    }

    /// Renders the snapshot as a JSON value with three top-level
    /// objects: `counters`, `gauges`, and `histograms`, each keyed by
    /// `name{labels}`. Histogram entries carry `count`, `sum`, `max`,
    /// `p50`/`p95`/`p99`, `mean`, and a `buckets` array of
    /// `[upper_bound, count]` pairs for the occupied buckets — the shape
    /// the `guardrail` checker audits for sanity.
    pub fn to_json(&self) -> Json {
        let mut counters = std::collections::BTreeMap::new();
        let mut gauges = std::collections::BTreeMap::new();
        let mut histograms = std::collections::BTreeMap::new();
        for s in &self.samples {
            let key = format!("{}{}", s.name, label_suffix(&s.labels, None));
            match &s.value {
                SampleValue::Counter(v) => {
                    counters.insert(key, Json::from(*v));
                }
                SampleValue::Gauge(v) => {
                    gauges.insert(key, Json::from(*v));
                }
                SampleValue::Histogram(h) => {
                    let buckets: Vec<Json> = h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, &c)| c > 0)
                        .map(|(i, &c)| Json::Arr(vec![Json::from(bucket_upper(i)), Json::from(c)]))
                        .collect();
                    histograms.insert(
                        key,
                        Json::obj([
                            ("count", h.count().into()),
                            ("sum", h.sum.into()),
                            ("max", h.max.into()),
                            ("p50", h.p50().into()),
                            ("p95", h.p95().into()),
                            ("p99", h.p99().into()),
                            ("mean", h.mean().into()),
                            ("buckets", Json::Arr(buckets)),
                        ]),
                    );
                }
            }
        }
        Json::Obj(
            [
                ("counters".to_string(), Json::Obj(counters)),
                ("gauges".to_string(), Json::Obj(gauges)),
                ("histograms".to_string(), Json::Obj(histograms)),
            ]
            .into_iter()
            .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        c.add(0);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.add(10);
        g.sub(3);
        assert_eq!(g.get(), 7);
        g.set_max(5); // below: no-op
        assert_eq!(g.get(), 7);
        g.set_max(12);
        assert_eq!(g.get(), 12);
        g.set(2);
        assert_eq!(g.get(), 2);
    }

    #[test]
    fn gauge_sub_clamped_reports_deficit() {
        let g = Gauge::new();
        g.add(5);
        assert_eq!(g.sub_clamped(3), 0);
        assert_eq!(g.get(), 2);
        // Over-subtraction clamps at zero and surfaces the imbalance.
        assert_eq!(g.sub_clamped(7), 5);
        assert_eq!(g.get(), 0);
        assert_eq!(g.sub_clamped(1), 1);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 2, 3, 4, 7, 8, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 10);
        assert_eq!(s.sum, 1126);
        assert_eq!(s.max, 1000);
        assert_eq!(s.buckets[0], 1); // the zero
        assert_eq!(s.buckets[1], 2); // the ones
        assert_eq!(s.buckets[2], 2); // 2, 3
        assert_eq!(s.buckets[3], 2); // 4, 7
        assert_eq!(s.buckets[4], 1); // 8
        assert!(s.nonzero_buckets() >= 5);
        assert!(s.p50() <= s.p95());
        assert!(s.p95() <= s.p99());
        assert!(s.p99() <= s.max);
        // count == sum of buckets is definitional here; sanity anyway.
        assert_eq!(s.count(), s.buckets.iter().sum::<u64>());
    }

    #[test]
    fn quantile_clamps_to_recorded_max() {
        // All samples identical: the bucket upper bound (7) exceeds the
        // recorded max (5); the quantile must clamp.
        let h = Histogram::new();
        for _ in 0..10 {
            h.record(5);
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), 5);
        assert_eq!(s.p99(), 5);
        assert_eq!(s.max, 5);
        // Empty histogram: all zeros.
        let empty = Histogram::new().snapshot();
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.p99(), 0);
        assert_eq!(empty.mean(), 0.0);
    }

    #[test]
    fn extreme_values_land_in_the_top_bucket() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(1u64 << 63);
        let s = h.snapshot();
        assert_eq!(s.buckets[64], 2);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.p50(), u64::MAX);
    }

    #[test]
    fn registry_is_idempotent_and_snapshots_sorted() {
        let r = Registry::new();
        let a = r.counter("tilt_events_in_total");
        let b = r.counter("tilt_events_in_total");
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), 7, "same name must alias the same counter");

        let s0 = r.gauge_with("tilt_queue_depth", &[("shard", "0")]);
        let s1 = r.gauge_with("tilt_queue_depth", &[("shard", "1")]);
        s0.set(5);
        s1.set(9);
        let h = r.histogram_with("tilt_ingest_lag_ticks", &[("shard", "0")]);
        h.record(3);

        let snap = r.snapshot();
        assert_eq!(snap.counter_total("tilt_events_in_total"), 7);
        assert_eq!(snap.gauge_total("tilt_queue_depth"), 14);
        assert!(snap.find("tilt_queue_depth", &[("shard", "1")]).is_some());
        assert!(snap.find("tilt_queue_depth", &[("shard", "7")]).is_none());
        let names: Vec<&str> = snap.samples.iter().map(|s| s.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "exposition order must be stable");
    }

    #[test]
    fn prometheus_exposition_shape() {
        let r = Registry::new();
        r.counter("tilt_events_in_total").add(12);
        r.gauge_with("tilt_queue_depth", &[("shard", "0")]).set(-2);
        let h = r.histogram("tilt_advance_ns");
        h.record(1);
        h.record(3);
        h.record(700);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE tilt_events_in_total counter"));
        assert!(text.contains("tilt_events_in_total 12"));
        assert!(text.contains("tilt_queue_depth{shard=\"0\"} -2"));
        assert!(text.contains("# TYPE tilt_advance_ns histogram"));
        assert!(text.contains("tilt_advance_ns_bucket{le=\"1\"} 1"));
        assert!(text.contains("tilt_advance_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("tilt_advance_ns_sum 704"));
        assert!(text.contains("tilt_advance_ns_count 3"));
        // Cumulative series never decreases.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("tilt_advance_ns_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "bucket series must be cumulative: {text}");
            last = v;
        }
    }

    #[test]
    fn json_exposition_shape() {
        let r = Registry::new();
        r.counter_with("tilt_emitted_total", &[("query", "0")]).add(9);
        r.gauge("tilt_live_keys").set(4);
        let h = r.histogram_with("tilt_ingest_lag_ticks", &[("shard", "0")]);
        for v in [1u64, 2, 64, 64, 900] {
            h.record(v);
        }
        let j = r.snapshot().to_json();
        assert_eq!(
            j.get("counters")
                .and_then(|c| c.get("tilt_emitted_total{query=\"0\"}"))
                .and_then(Json::as_i64),
            Some(9)
        );
        assert_eq!(
            j.get("gauges").and_then(|g| g.get("tilt_live_keys")).and_then(Json::as_i64),
            Some(4)
        );
        let hist = j
            .get("histograms")
            .and_then(|h| h.get("tilt_ingest_lag_ticks{shard=\"0\"}"))
            .expect("histogram present");
        assert_eq!(hist.get("count").and_then(Json::as_i64), Some(5));
        let bucket_total: i64 = hist
            .get("buckets")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|pair| pair.as_arr().unwrap()[1].as_i64().unwrap())
            .sum();
        assert_eq!(bucket_total, 5, "count must equal the sum of bucket counts");
        let p50 = hist.get("p50").and_then(Json::as_i64).unwrap();
        let p99 = hist.get("p99").and_then(Json::as_i64).unwrap();
        let max = hist.get("max").and_then(Json::as_i64).unwrap();
        assert!(p50 <= p99 && p99 <= max);
        // Round-trips through the parser (the guardrail's read path).
        assert_eq!(json::parse(&j.to_string()).unwrap(), j);
    }
}
