//! A dependency-free JSON value: enough to write the bench binaries'
//! `--json` reports and for the `guardrail` binary to read them back.
//!
//! The workspace builds offline (no serde), and the reports are our own —
//! flat objects of numbers, strings, booleans, and arrays — so a small
//! exact implementation beats vendoring a parser. Serialization escapes
//! strings per RFC 8259; parsing accepts the full JSON value grammar the
//! writer produces (and ordinary hand-written JSON).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`; integers round-trip exactly up to
    /// 2^53, far beyond any counter the benches emit).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are kept sorted (`BTreeMap`) so reports are
    /// byte-stable across runs.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field access (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric value as an integer, if this is a whole number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(x) if x.fract() == 0.0 && x.abs() < 9e15 => Some(*x as i64),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<i64> for Json {
    fn from(x: i64) -> Json {
        Json::Num(x as f64)
    }
}
impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}
impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(x) if x.fract() == 0.0 && x.abs() < 9e15 => write!(f, "{}", *x as i64),
            Json::Num(x) => write!(f, "{x}"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

/// Parses one JSON value (with optional surrounding whitespace).
///
/// # Errors
///
/// Returns a message with a byte offset on malformed input or trailing
/// garbage.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                map.insert(key, parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape".to_string())?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape".to_string())?;
                        // The writer never emits surrogate pairs (it
                        // escapes only control characters); reject them
                        // rather than mis-decode.
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| "surrogate \\u escape unsupported".to_string())?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {pos}"))?;
                let c = rest.chars().next().expect("non-empty checked above");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number chars");
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("invalid number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_reports() {
        let report = Json::obj([
            ("bench", "hardening".into()),
            ("events", 200_000u64.into()),
            ("throughput_meps", 1.25.into()),
            ("ok", true.into()),
            ("note", "quotes \" and \\ and \n".into()),
            ("rows", vec![1i64, 2, 3].into()),
            ("nested", Json::obj([("null", Json::Null)])),
        ]);
        let text = report.to_string();
        let back = parse(&text).expect("own output parses");
        assert_eq!(back, report);
        assert_eq!(back.get("events").and_then(Json::as_i64), Some(200_000));
        assert_eq!(back.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(back.get("bench").and_then(Json::as_str), Some("hardening"));
        assert_eq!(back.get("rows").and_then(Json::as_arr).map(<[Json]>::len), Some(3));
        assert_eq!(back.get("note").and_then(Json::as_str), Some("quotes \" and \\ and \n"));
    }

    #[test]
    fn parses_hand_written_json() {
        let v =
            parse(r#"  { "a" : [ 1 , -2.5e1 , true , null ] , "b" : { } , "c": "xAy" } "#).unwrap();
        let a = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(a[0].as_i64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(-25.0));
        assert_eq!(a[2].as_bool(), Some(true));
        assert_eq!(a[3], Json::Null);
        assert_eq!(v.get("c").and_then(Json::as_str), Some("xAy"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"open", "{\"a\" 1}", "12 34", "nul", "{]}"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn integers_serialize_without_decimal_point() {
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(3.5).to_string(), "3.5");
        assert_eq!(Json::from(u64::from(u32::MAX)).to_string(), "4294967295");
    }
}
