//! A bounded, sequence-numbered event journal for control-plane
//! transitions.
//!
//! The runtime's control plane (attach/detach/evict/revive/quarantine/
//! backstop) is low-rate but high-value: when a service misbehaves, the
//! *order* of transitions is the diagnosis. The journal keeps the most
//! recent `capacity` events in a ring under one mutex (contention-free
//! in practice — pushes are rare next to the data path), stamps each
//! with a monotone sequence number and a milliseconds-since-start
//! timestamp, and counts what the ring evicted so a reader always knows
//! whether its view has gaps.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// One journaled event with its stamps.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Stamped<T> {
    /// Monotone sequence number, starting at 0 for the first push.
    pub seq: u64,
    /// Milliseconds since the journal was created.
    pub at_ms: u64,
    /// The event itself.
    pub event: T,
}

struct Inner<T> {
    ring: VecDeque<Stamped<T>>,
    next_seq: u64,
    dropped: u64,
}

/// A bounded ring buffer of [`Stamped`] events with drop accounting.
pub struct Journal<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    epoch: Instant,
}

impl<T> Journal<T> {
    /// A journal holding at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Journal<T> {
        Journal {
            inner: Mutex::new(Inner {
                ring: VecDeque::with_capacity(capacity.max(1)),
                next_seq: 0,
                dropped: 0,
            }),
            capacity: capacity.max(1),
            epoch: Instant::now(),
        }
    }

    /// Appends one event, evicting (and counting) the oldest if full.
    /// Returns the event's sequence number.
    pub fn push(&self, event: T) -> u64 {
        let at_ms = self.epoch.elapsed().as_millis() as u64;
        let mut inner = self.inner.lock().expect("journal lock poisoned");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(Stamped { seq, at_ms, event });
        seq
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("journal lock poisoned").ring.len()
    }

    /// Whether the journal holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many events the ring has evicted so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("journal lock poisoned").dropped
    }
}

impl<T: Clone> Journal<T> {
    /// Copies out the retained events (oldest first) with the drop and
    /// sequence bookkeeping a reader needs to detect gaps.
    pub fn snapshot(&self) -> JournalSnapshot<T> {
        let inner = self.inner.lock().expect("journal lock poisoned");
        JournalSnapshot {
            events: inner.ring.iter().cloned().collect(),
            dropped: inner.dropped,
            next_seq: inner.next_seq,
        }
    }
}

/// A frozen view of a [`Journal`].
#[derive(Clone, Debug)]
pub struct JournalSnapshot<T> {
    /// Retained events, oldest first; `seq` values are contiguous.
    pub events: Vec<Stamped<T>>,
    /// How many older events the ring evicted before this view.
    pub dropped: u64,
    /// The sequence number the next push will receive (== total pushes).
    pub next_seq: u64,
}

impl<T: std::fmt::Display> JournalSnapshot<T> {
    /// Renders the snapshot as plain text, one `seq +ms event` line per
    /// retained entry, preceded by a gap marker when the ring evicted
    /// older entries — the format network front ends serve on their
    /// journal-scrape endpoint.
    ///
    /// ```
    /// use tilt_obs::Journal;
    /// let j: Journal<&str> = Journal::new(4);
    /// j.push("attach query=0");
    /// let text = j.snapshot().to_text();
    /// assert!(text.contains("attach query=0"));
    /// ```
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.dropped > 0 {
            let _ = writeln!(out, "# {} earlier entries evicted from the ring", self.dropped);
        }
        for entry in &self.events {
            let _ = writeln!(out, "{} +{}ms {}", entry.seq, entry.at_ms, entry.event);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_are_monotone_and_contiguous() {
        let j: Journal<&str> = Journal::new(8);
        assert!(j.is_empty());
        for name in ["attach", "evict", "revive"] {
            j.push(name);
        }
        let snap = j.snapshot();
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.next_seq, 3);
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert!(snap.events.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        assert_eq!(snap.events[1].event, "evict");
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let j: Journal<u32> = Journal::new(3);
        for i in 0..10u32 {
            j.push(i);
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.dropped(), 7);
        let snap = j.snapshot();
        assert_eq!(snap.events.iter().map(|e| e.event).collect::<Vec<_>>(), vec![7, 8, 9]);
        assert_eq!(snap.events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![7, 8, 9]);
        assert_eq!(snap.next_seq, 10);
        // A reader reconstructs the gap: every push is either retained
        // or counted as dropped.
        assert_eq!(snap.next_seq, snap.dropped + snap.events.len() as u64);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let j: Journal<u8> = Journal::new(0);
        j.push(1);
        j.push(2);
        assert_eq!(j.len(), 1);
        assert_eq!(j.snapshot().events[0].event, 2);
        assert_eq!(j.dropped(), 1);
    }
}
