//! Differential property tests for the live control plane: a query
//! attached to a running [`StreamService`] mid-stream must produce output
//! identical (per key) to a standalone service rooted at the negotiated
//! frontier and fed only the post-frontier suffix; detaching a query must
//! leave every surviving query's output byte-identical to a churn-free
//! run. Both properties hold at 1, 2, and 4 shards, in-order and under
//! bounded disorder — this is what makes admitting and evicting tenants
//! on a live service safe.

use std::sync::Arc;

use proptest::prelude::*;
use tilt_core::ir::{DataType, Expr, Query, ReduceOp, TDom};
use tilt_core::{CompiledQuery, Compiler};
use tilt_data::{coalesce, streams_equivalent, Event, Time, Value};
use tilt_runtime::{KeyedEvent, QuerySettings, RuntimeConfig, StreamService};

/// Per-key random event stream: (gap, len, value) segments. Values are
/// quantized to multiples of 0.25 so float aggregation is exact and the
/// comparisons can demand identity, not tolerance.
fn stream_from_segments(segments: &[(i64, i64, i64)], origin: i64) -> Vec<Event<Value>> {
    let mut t = origin;
    let mut out = Vec::new();
    for (gap, len, val) in segments {
        let start = t + gap;
        let end = start + len;
        out.push(Event::new(
            Time::new(start),
            Time::new(end),
            Value::Float((val / 4) as f64 * 0.25),
        ));
        t = end;
    }
    out
}

fn window_query(window: i64, agg: u8) -> Arc<CompiledQuery> {
    let op = match agg % 3 {
        0 => ReduceOp::Sum,
        1 => ReduceOp::Min,
        _ => ReduceOp::Max,
    };
    let mut b = Query::builder();
    let input = b.input("x", DataType::Float);
    let out = b.temporal("w", TDom::every_tick(), Expr::reduce_window(op, input, window));
    let q = b.finish(out).unwrap();
    Arc::new(Compiler::new().compile(&q).unwrap())
}

/// Interleaves per-key streams into one in-order arrival sequence, then
/// scrambles it by reversing consecutive blocks of `displacement` events.
fn arrival_sequence(streams: &[Vec<Event<Value>>], displacement: usize) -> Vec<KeyedEvent> {
    let mut all: Vec<KeyedEvent> = streams
        .iter()
        .enumerate()
        .flat_map(|(k, evs)| evs.iter().map(move |e| KeyedEvent::new(k as u64, 0, e.clone())))
        .collect();
    all.sort_by_key(|ke| (ke.event.end, ke.key));
    if displacement > 1 {
        for block in all.chunks_mut(displacement) {
            block.reverse();
        }
    }
    all
}

/// The smallest allowed-lateness (in ticks) that absorbs the disorder of
/// `arrivals` (watermarks are defined over event starts).
fn lateness_needed(arrivals: &[KeyedEvent]) -> i64 {
    let mut max_start = Time::MIN;
    let mut worst = 0i64;
    for ke in arrivals {
        if max_start > ke.event.start {
            worst = worst.max(max_start - ke.event.start);
        }
        max_start = max_start.max(ke.event.start);
    }
    worst
}

fn config(shards: usize, lateness: i64, start: Time) -> RuntimeConfig {
    RuntimeConfig {
        shards,
        allowed_lateness: lateness,
        emit_interval: 4,
        start,
        ..RuntimeConfig::default()
    }
}

/// One query standalone over the given arrivals — the reference the
/// control plane must reproduce.
fn standalone(
    cq: &Arc<CompiledQuery>,
    arrivals: &[KeyedEvent],
    cfg: RuntimeConfig,
    end: Time,
) -> std::collections::HashMap<u64, Vec<Event<Value>>> {
    let mut builder = StreamService::builder(cfg);
    let q = builder.register(Arc::clone(cq));
    let service = builder.start().expect("single registration");
    service.ingest(arrivals.iter().cloned());
    service.finish_at(end).per_query.swap_remove(q.index())
}

/// The attach differential at one shard count: `q2` attached after the
/// prefix must match a standalone service rooted at the frontier and fed
/// only the suffix; `q1` must match a standalone run over everything.
#[allow(clippy::too_many_arguments)]
fn check_attach(
    q1: &Arc<CompiledQuery>,
    q2: &Arc<CompiledQuery>,
    prefix: &[KeyedEvent],
    suffix: &[KeyedEvent],
    n_keys: usize,
    shards: usize,
    lateness: i64,
    end: Time,
) -> Result<(), String> {
    let mut builder = StreamService::builder(config(shards, lateness, Time::ZERO));
    let h1 = builder.register(Arc::clone(q1));
    let service = builder.start().expect("register");
    service.ingest(prefix.iter().cloned());
    let tenant = service.attach(Arc::clone(q2), QuerySettings::default()).expect("attach");
    let frontier = tenant.frontier();
    if let Some(early) = suffix.iter().find(|ke| ke.event.start < frontier) {
        return Err(format!(
            "test construction broken: suffix event {early:?} starts before frontier {frontier:?}"
        ));
    }
    service.ingest(suffix.iter().cloned());
    let out = service.finish_at(end);
    if out.stats.late_dropped != 0 {
        return Err(format!("control-plane run dropped {} events", out.stats.late_dropped));
    }
    if out.stats.reorder_buffered != (prefix.len() + suffix.len()) as u64 {
        return Err(format!(
            "reorder work duplicated under attach: buffered {} of {}",
            out.stats.reorder_buffered,
            prefix.len() + suffix.len()
        ));
    }

    // Tenant vs the standalone suffix run rooted at the frontier.
    let suffix_solo = standalone(q2, suffix, config(shards, lateness, frontier), end);
    for (k, want) in &suffix_solo {
        let got = coalesce(&out.per_query[tenant.index()][k]);
        if !streams_equivalent(&coalesce(want), &got) {
            return Err(format!(
                "shards {shards} key {k}: attached query diverged from suffix run: \
                 {want:?} vs {got:?}"
            ));
        }
    }
    // Keys untouched by the suffix produce nothing for the tenant, exactly
    // as the suffix run (which never saw them) produces nothing.
    for (k, events) in out.per_query[tenant.index()].iter() {
        if !suffix_solo.contains_key(k) && !events.is_empty() {
            return Err(format!(
                "shards {shards} key {k}: attached query emitted {events:?} for a \
                 prefix-only key the suffix run never saw"
            ));
        }
    }
    // The pre-registered query saw everything.
    let all: Vec<KeyedEvent> = prefix.iter().chain(suffix.iter()).cloned().collect();
    let full_solo = standalone(q1, &all, config(shards, lateness, Time::ZERO), end);
    for k in 0..n_keys as u64 {
        let want = coalesce(full_solo.get(&k).map_or(&[][..], |v| v));
        let got = coalesce(out.per_query[h1.index()].get(&k).map_or(&[][..], |v| v));
        if !streams_equivalent(&want, &got) {
            return Err(format!(
                "shards {shards} key {k}: pre-registered query changed under attach"
            ));
        }
    }
    Ok(())
}

/// The detach differential at one shard count: after `doomed` leaves
/// mid-stream, the survivor must be byte-identical to a churn-free run and
/// the doomed query's output must be reclaimed.
#[allow(clippy::too_many_arguments)]
fn check_detach(
    survivor_q: &Arc<CompiledQuery>,
    doomed_q: &Arc<CompiledQuery>,
    first: &[KeyedEvent],
    second: &[KeyedEvent],
    n_keys: usize,
    shards: usize,
    lateness: i64,
    end: Time,
) -> Result<(), String> {
    let mut builder = StreamService::builder(config(shards, lateness, Time::ZERO));
    let survivor = builder.register(Arc::clone(survivor_q));
    let doomed = builder.register(Arc::clone(doomed_q));
    let service = builder.start().expect("register");
    service.ingest(first.iter().cloned());
    service.detach(doomed).expect("detach");
    service.ingest(second.iter().cloned());
    let out = service.finish_at(end);
    if out.stats.detached != 1 || out.stats.queries_live != 1 {
        return Err(format!(
            "detach accounting wrong: detached={} live={}",
            out.stats.detached, out.stats.queries_live
        ));
    }
    if out.per_query[doomed.index()].values().any(|v| !v.is_empty()) {
        return Err("detached query's output was not reclaimed".into());
    }

    let all: Vec<KeyedEvent> = first.iter().chain(second.iter()).cloned().collect();
    let solo = standalone(survivor_q, &all, config(shards, lateness, Time::ZERO), end);
    for k in 0..n_keys as u64 {
        let want = coalesce(solo.get(&k).map_or(&[][..], |v| v));
        let got = coalesce(out.per_query[survivor.index()].get(&k).map_or(&[][..], |v| v));
        if !streams_equivalent(&want, &got) {
            return Err(format!(
                "shards {shards} key {k}: survivor diverged from churn-free run: \
                 {want:?} vs {got:?}"
            ));
        }
    }
    Ok(())
}

/// Attach-first pattern, deterministically: an empty service, a query
/// attached before any ingestion, equals a plain standalone run.
#[test]
fn attach_before_ingest_equals_standalone() {
    let cq = window_query(5, 0);
    let events: Vec<KeyedEvent> = (1..=80i64)
        .flat_map(|t| {
            (0..3u64).map(move |k| {
                KeyedEvent::new(k, 0, Event::point(Time::new(t), Value::Float(k as f64 + t as f64)))
            })
        })
        .collect();
    let end = Time::new(90);
    for shards in [1usize, 2, 4] {
        let service = StreamService::start(config(shards, 0, Time::ZERO));
        assert_eq!(service.num_queries(), 0);
        let q = service.attach(Arc::clone(&cq), QuerySettings::default()).unwrap();
        assert_eq!(q.frontier(), Time::ZERO, "nothing ingested: the frontier is the start");
        service.ingest(events.iter().cloned());
        let out = service.finish_at(end);
        assert_eq!(out.stats.late_dropped, 0);
        let solo = standalone(&cq, &events, config(shards, 0, Time::ZERO), end);
        for k in 0..3u64 {
            assert!(
                streams_equivalent(&coalesce(&solo[&k]), &coalesce(&out.per_query[q.index()][&k])),
                "shards {shards} key {k}: attach-first service diverged from standalone"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A query attached mid-stream sees exactly the post-frontier suffix:
    /// its output equals a standalone service rooted at the frontier and
    /// fed only the suffix — per key, at 1/2/4 shards, with both phases
    /// scrambled into bounded out-of-order arrival.
    #[test]
    fn attach_mid_stream_matches_standalone_suffix_run(
        prefix_streams in prop::collection::vec(
            prop::collection::vec((1i64..5, 1i64..4, -50i64..50), 3..20),
            1..4,
        ),
        suffix_segments in prop::collection::vec(
            prop::collection::vec((1i64..5, 1i64..4, -50i64..50), 3..20),
            1..4,
        ),
        w1 in 1i64..12,
        a1 in 0u8..3,
        w2 in 1i64..12,
        a2 in 0u8..3,
        displacement in 1usize..24,
    ) {
        let prefix_events: Vec<Vec<Event<Value>>> =
            prefix_streams.iter().map(|segs| stream_from_segments(segs, 0)).collect();
        let prefix = arrival_sequence(&prefix_events, displacement);
        // The suffix strictly postdates every prefix event, so the
        // negotiated frontier (≥ the max prefix end) cannot cut into it.
        let origin = prefix.iter().map(|ke| ke.event.end.ticks()).max().unwrap_or(0);
        let suffix_events: Vec<Vec<Event<Value>>> =
            suffix_segments.iter().map(|segs| stream_from_segments(segs, origin)).collect();
        let suffix = arrival_sequence(&suffix_events, displacement);
        let lateness = lateness_needed(&prefix).max(lateness_needed(&suffix)) + 2;
        let hi = suffix.iter().chain(prefix.iter()).map(|ke| ke.event.end).max().unwrap();
        let end = Time::new(hi.ticks() + 64);
        let n_keys = prefix_events.len().max(suffix_events.len());
        let q1 = window_query(w1, a1);
        let q2 = window_query(w2, a2);
        for shards in [1usize, 2, 4] {
            if let Err(msg) = check_attach(
                &q1, &q2, &prefix, &suffix, n_keys, shards, lateness, end,
            ) {
                prop_assert!(false, "{} (w1={}, a1={}, w2={}, a2={}, disp={})",
                    msg, w1, a1, w2, a2, displacement);
            }
        }
    }

    /// Detaching one of two co-registered queries mid-stream leaves the
    /// survivor byte-identical to a churn-free run and reclaims the
    /// detached query's output — at 1/2/4 shards, in-order and under
    /// bounded disorder.
    #[test]
    fn detach_mid_stream_leaves_survivor_identical(
        first_streams in prop::collection::vec(
            prop::collection::vec((1i64..5, 1i64..4, -50i64..50), 3..20),
            1..4,
        ),
        second_segments in prop::collection::vec(
            prop::collection::vec((1i64..5, 1i64..4, -50i64..50), 3..20),
            1..4,
        ),
        w1 in 1i64..12,
        a1 in 0u8..3,
        w2 in 1i64..12,
        a2 in 0u8..3,
        displacement in 1usize..24,
    ) {
        let first_events: Vec<Vec<Event<Value>>> =
            first_streams.iter().map(|segs| stream_from_segments(segs, 0)).collect();
        let first = arrival_sequence(&first_events, displacement);
        let origin = first.iter().map(|ke| ke.event.end.ticks()).max().unwrap_or(0);
        let second_events: Vec<Vec<Event<Value>>> =
            second_segments.iter().map(|segs| stream_from_segments(segs, origin)).collect();
        let second = arrival_sequence(&second_events, displacement);
        let lateness = lateness_needed(&first).max(lateness_needed(&second)) + 2;
        let hi = second.iter().chain(first.iter()).map(|ke| ke.event.end).max().unwrap();
        let end = Time::new(hi.ticks() + 64);
        let n_keys = first_events.len().max(second_events.len());
        let survivor = window_query(w1, a1);
        let doomed = window_query(w2, a2);
        for shards in [1usize, 2, 4] {
            if let Err(msg) = check_detach(
                &survivor, &doomed, &first, &second, n_keys, shards, lateness, end,
            ) {
                prop_assert!(false, "{} (w1={}, a1={}, w2={}, a2={}, disp={})",
                    msg, w1, a1, w2, a2, displacement);
            }
        }
    }
}
