//! Durability properties for `tilt-state` + the runtime's durable state
//! layer: a service restored from a checkpoint must produce output
//! identical (per query, per key) to one that never stopped — with events
//! still sitting in reorder buffers at the checkpoint, at 1/2/4 shards,
//! in-order and under bounded disorder; torn, truncated, or bit-flipped
//! snapshots must be rejected with a typed error (never a panic, never a
//! half-started service); migrating keys between shards mid-stream must
//! leave every output byte-identical; and cold-spilled keys must revive
//! transparently with spills == revivals.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use tilt_core::ir::{DataType, Expr, Query, ReduceOp, TDom};
use tilt_core::{CompiledQuery, Compiler};
use tilt_data::{coalesce, streams_equivalent, Event, Time, Value};
use tilt_runtime::{KeyedEvent, RuntimeConfig, StreamService};

/// Per-key random event stream: (gap, len, value) segments, quantized so
/// float aggregation is exact and comparisons can demand identity.
fn stream_from_segments(segments: &[(i64, i64, i64)], origin: i64) -> Vec<Event<Value>> {
    let mut t = origin;
    let mut out = Vec::new();
    for (gap, len, val) in segments {
        let start = t + gap;
        let end = start + len;
        out.push(Event::new(
            Time::new(start),
            Time::new(end),
            Value::Float((val / 4) as f64 * 0.25),
        ));
        t = end;
    }
    out
}

fn window_query(window: i64, agg: u8) -> Arc<CompiledQuery> {
    let op = match agg % 3 {
        0 => ReduceOp::Sum,
        1 => ReduceOp::Min,
        _ => ReduceOp::Max,
    };
    let mut b = Query::builder();
    let input = b.input("x", DataType::Float);
    let out = b.temporal("w", TDom::every_tick(), Expr::reduce_window(op, input, window));
    let q = b.finish(out).unwrap();
    Arc::new(Compiler::new().compile(&q).unwrap())
}

/// Interleaves per-key streams into one in-order arrival sequence, then
/// scrambles it by reversing consecutive blocks of `displacement` events.
fn arrival_sequence(streams: &[Vec<Event<Value>>], displacement: usize) -> Vec<KeyedEvent> {
    let mut all: Vec<KeyedEvent> = streams
        .iter()
        .enumerate()
        .flat_map(|(k, evs)| evs.iter().map(move |e| KeyedEvent::new(k as u64, 0, e.clone())))
        .collect();
    all.sort_by_key(|ke| (ke.event.end, ke.key));
    if displacement > 1 {
        for block in all.chunks_mut(displacement) {
            block.reverse();
        }
    }
    all
}

/// The smallest allowed lateness (in ticks) that absorbs the disorder of
/// `arrivals` (watermarks are defined over event starts).
fn lateness_needed(arrivals: &[KeyedEvent]) -> i64 {
    let mut max_start = Time::MIN;
    let mut worst = 0i64;
    for ke in arrivals {
        if max_start > ke.event.start {
            worst = worst.max(max_start - ke.event.start);
        }
        max_start = max_start.max(ke.event.start);
    }
    worst
}

fn config(shards: usize, lateness: i64) -> RuntimeConfig {
    RuntimeConfig {
        shards,
        allowed_lateness: lateness,
        emit_interval: 4,
        ..RuntimeConfig::default()
    }
}

/// A scratch file/directory path unique to this process and call site;
/// callers clean up best-effort.
fn scratch_path(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("tilt-state-props-{}-{tag}-{n}", std::process::id()))
}

/// The uninterrupted reference: both queries over all arrivals, one run.
fn reference_run(
    queries: &[Arc<CompiledQuery>],
    arrivals: &[KeyedEvent],
    cfg: RuntimeConfig,
    end: Time,
) -> Vec<HashMap<u64, Vec<Event<Value>>>> {
    let mut builder = StreamService::builder(cfg);
    for cq in queries {
        builder.register(Arc::clone(cq));
    }
    let service = builder.start().expect("register");
    service.ingest(arrivals.iter().cloned());
    service.finish_at(end).per_query
}

fn assert_same_outputs(
    want: &[HashMap<u64, Vec<Event<Value>>>],
    got: &[HashMap<u64, Vec<Event<Value>>>],
    n_keys: usize,
    context: &str,
) -> Result<(), String> {
    if want.len() != got.len() {
        return Err(format!("{context}: query count {} vs {}", want.len(), got.len()));
    }
    for (qi, (wq, gq)) in want.iter().zip(got).enumerate() {
        for k in 0..n_keys as u64 {
            let w = coalesce(wq.get(&k).map_or(&[][..], |v| v));
            let g = coalesce(gq.get(&k).map_or(&[][..], |v| v));
            if !streams_equivalent(&w, &g) {
                return Err(format!("{context}: query {qi} key {k} diverged: {w:?} vs {g:?}"));
            }
        }
    }
    Ok(())
}

/// One checkpoint/restore differential at one shard count: ingest the
/// prefix, checkpoint, abandon the service (simulated crash — its output
/// is discarded), restore from the file, ingest the suffix, finish. The
/// result must match the uninterrupted run.
fn check_checkpoint_restore(
    queries: &[Arc<CompiledQuery>],
    prefix: &[KeyedEvent],
    suffix: &[KeyedEvent],
    n_keys: usize,
    shards: usize,
    lateness: i64,
    end: Time,
) -> Result<(), String> {
    let cfg = config(shards, lateness);
    let want = reference_run(queries, &[prefix, suffix].concat(), cfg, end);

    let path = scratch_path("ckpt");
    let mut builder = StreamService::builder(cfg);
    for cq in queries {
        builder.register(Arc::clone(cq));
    }
    let service = builder.start().expect("register");
    service.ingest(prefix.iter().cloned());
    service.checkpoint(&path).map_err(|e| format!("checkpoint failed: {e}"))?;
    drop(service); // crash: nothing after the checkpoint survives

    let restored =
        StreamService::restore(&path, queries).map_err(|e| format!("restore failed: {e}"))?;
    restored.ingest(suffix.iter().cloned());
    let out = restored.finish_at(end);
    let _ = std::fs::remove_file(&path);

    let s = &out.stats;
    if s.checkpoints != 1 {
        return Err(format!(
            "restored run must carry the checkpoint counter, got {}",
            s.checkpoints
        ));
    }
    if s.events_in != (prefix.len() + suffix.len()) as u64 {
        return Err(format!(
            "events_in must resume across restore: {} of {}",
            s.events_in,
            prefix.len() + suffix.len()
        ));
    }
    if s.conservation_balance() != 0 {
        return Err(format!(
            "conservation broken across restore: balance={} (in={} consumed={} late={})",
            s.conservation_balance(),
            s.events_in,
            s.events_consumed,
            s.late_dropped
        ));
    }
    assert_same_outputs(&want, &out.per_query, n_keys, &format!("shards {shards}"))
}

/// One migration differential at one shard count: ingest the prefix, hop
/// every key one shard over (state serialized out of one shard and
/// spliced into another), ingest the suffix, finish. Outputs must match
/// the migration-free run.
fn check_migration(
    queries: &[Arc<CompiledQuery>],
    prefix: &[KeyedEvent],
    suffix: &[KeyedEvent],
    n_keys: usize,
    shards: usize,
    lateness: i64,
    end: Time,
) -> Result<(), String> {
    let cfg = config(shards, lateness);
    let want = reference_run(queries, &[prefix, suffix].concat(), cfg, end);

    let mut builder = StreamService::builder(cfg);
    for cq in queries {
        builder.register(Arc::clone(cq));
    }
    let service = builder.start().expect("register");
    service.ingest(prefix.iter().cloned());
    let mut moved = 0u64;
    for k in 0..n_keys as u64 {
        let to = (service.shard_of(k) + 1 + k as usize) % shards;
        if service.migrate_key(k, to) {
            moved += 1;
        }
    }
    service.ingest(suffix.iter().cloned());
    let out = service.finish_at(end);
    let s = &out.stats;
    if s.migrations != moved {
        return Err(format!("migration counter {} != {} performed", s.migrations, moved));
    }
    if s.spilled_pending != 0 {
        return Err(format!("{} events still in flight after migration", s.spilled_pending));
    }
    if s.keys_quarantined != 0 {
        return Err(format!("migration quarantined {} keys", s.keys_quarantined));
    }
    if s.conservation_balance() != 0 {
        return Err(format!("conservation broken across migration: {}", s.conservation_balance()));
    }
    assert_same_outputs(&want, &out.per_query, n_keys, &format!("shards {shards} migrated"))
}

#[test]
fn restore_rejects_wrong_query_roster() {
    let q = window_query(4, 0);
    let path = scratch_path("roster");
    let mut builder = StreamService::builder(config(1, 0));
    builder.register(Arc::clone(&q));
    let service = builder.start().unwrap();
    service.ingest(
        (1..=20).map(|t| KeyedEvent::new(0, 0, Event::point(Time::new(t), Value::Float(t as f64)))),
    );
    service.checkpoint(&path).unwrap();
    drop(service);
    // Too few / too many compiled queries: typed rejection, no service.
    assert!(StreamService::restore(&path, &[]).is_err());
    assert!(StreamService::restore(&path, &[Arc::clone(&q), window_query(2, 0)]).is_err());
    // The right roster still works afterwards (rejection has no side
    // effects on the file).
    let restored = StreamService::restore(&path, &[q]).unwrap();
    restored.finish_at(Time::new(30));
    let _ = std::fs::remove_file(&path);
}

/// Every single-byte corruption and every truncation of a checkpoint is
/// rejected with a typed error — no panic, no half-started service, and
/// the error is deterministic (the CRC layer, magic/version header, or
/// framing catches it).
#[test]
fn corrupted_checkpoints_are_rejected_not_panicked() {
    let q = window_query(5, 0);
    let path = scratch_path("corrupt");
    let mut builder = StreamService::builder(config(2, 3));
    builder.register(Arc::clone(&q));
    let service = builder.start().unwrap();
    let streams: Vec<Vec<Event<Value>>> =
        (0..4).map(|k| stream_from_segments(&[(1, 2, k * 7), (2, 3, 9), (1, 1, -13)], 0)).collect();
    service.ingest(arrival_sequence(&streams, 4));
    service.checkpoint(&path).unwrap();
    drop(service);
    let pristine = std::fs::read(&path).unwrap();
    let queries = [Arc::clone(&q)];
    assert!(StreamService::restore(&path, &queries).is_ok(), "pristine file must restore");

    // Truncations at every prefix length (stride keeps runtime sane).
    for cut in (0..pristine.len()).step_by(7) {
        std::fs::write(&path, &pristine[..cut]).unwrap();
        assert!(
            StreamService::restore(&path, &queries).is_err(),
            "truncation to {cut} of {} bytes must be rejected",
            pristine.len()
        );
    }
    // Single-bit flips across the file (every 5th byte, bit varies).
    for pos in (0..pristine.len()).step_by(5) {
        let mut bad = pristine.clone();
        bad[pos] ^= 1 << (pos % 8);
        std::fs::write(&path, &bad).unwrap();
        assert!(
            StreamService::restore(&path, &queries).is_err(),
            "bit flip at byte {pos} must be rejected"
        );
    }
    let _ = std::fs::remove_file(&path);
}

/// Cold spill under phased churn: keys that go idle are spilled to disk
/// (no in-memory state at all), revive transparently when they re-arrive,
/// and the output is identical to a service that never evicted anything.
/// Every spill is matched by exactly one revival.
#[test]
fn spill_and_revival_are_transparent() {
    let q = window_query(6, 0);
    let phase = |keys: std::ops::Range<u64>, ticks: std::ops::Range<i64>| {
        let mut evs = Vec::new();
        for t in ticks {
            for k in keys.clone() {
                evs.push(KeyedEvent::new(
                    k,
                    0,
                    Event::point(Time::new(t), Value::Float((k + t as u64) as f64)),
                ));
            }
        }
        evs
    };
    // Keys 0..8 run, go idle for 100 ticks while keys 8..16 carry the
    // watermark (the idle keys cross the TTL and spill), then everyone
    // returns at the live edge (the spilled keys revive). Returning keys
    // arrive *at* the watermark, never behind it, so the output is
    // insensitive to when each shard's lazy advances happen to run.
    let phases = [phase(0..8, 1..50), phase(8..16, 50..150), phase(0..16, 150..200)];
    let all: Vec<KeyedEvent> = phases.iter().flatten().cloned().collect();
    let end = Time::new(220);

    for shards in [1usize, 2] {
        let plain = RuntimeConfig { key_ttl: Some(16), ..config(shards, 0) };
        let want = reference_run(&[Arc::clone(&q)], &all, config(shards, 0), end);

        let dir = scratch_path("spill");
        let mut builder = StreamService::builder(plain).spill_to(&dir);
        builder.register(Arc::clone(&q));
        let service = builder.start().unwrap();
        for p in &phases {
            service.ingest(p.iter().cloned());
            // Let the shards drain so idleness is observed between phases.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            let target = p.iter().map(|ke| ke.event.start).max().unwrap();
            while service.stats().queue_depths.iter().sum::<usize>() > 0
                && std::time::Instant::now() < deadline
            {
                std::thread::yield_now();
            }
            let _ = target;
        }
        let out = service.finish_at(end);
        let s = &out.stats;
        assert!(s.spills > 0, "shards={shards}: phased idleness must spill (ttl=16)");
        assert_eq!(
            s.spills, s.spill_revivals,
            "shards={shards}: every spill revives exactly once (re-arrival or final flush)"
        );
        assert_eq!(s.keys_quarantined, 0, "shards={shards}: spill must not quarantine");
        assert_eq!(s.conservation_balance(), 0, "shards={shards}: conservation across spill");
        assert_eq!(s.spilled_pending, 0, "shards={shards}: nothing left on disk accounting");
        assert_same_outputs(&want, &out.per_query, 16, &format!("shards {shards} spill"))
            .unwrap_or_else(|e| panic!("{e}"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The tombstone-output cap bounds what a retired key's tombstone may
/// hold, counts what it trims, and never touches live keys.
#[test]
fn tombstone_output_cap_bounds_retired_keys() {
    let q = window_query(4, 0);
    let traffic: Vec<KeyedEvent> = (1..=120i64)
        .map(|t| KeyedEvent::new(7, 0, Event::point(Time::new(t), Value::Float(t as f64))))
        .chain(
            (1..=200i64)
                .map(|t| KeyedEvent::new(8, 0, Event::point(Time::new(t), Value::Float(t as f64)))),
        )
        .collect();
    let run = |cap: Option<usize>| {
        let mut builder = StreamService::builder(RuntimeConfig {
            key_ttl: Some(8),
            tombstone_output_cap: cap,
            ..config(1, 200)
        });
        builder.register(Arc::clone(&q));
        let service = builder.start().unwrap();
        service.ingest(traffic.iter().cloned());
        service.finish_at(Time::new(240))
    };
    let unbounded = run(None);
    assert_eq!(unbounded.stats.tombstone_dropped, 0, "no cap, no trims");
    let capped = run(Some(4));
    if capped.stats.evictions > 0 {
        assert!(
            capped.stats.tombstone_dropped > 0,
            "evictions with a 4-event cap must trim (evictions={})",
            capped.stats.evictions
        );
    }
    assert_eq!(capped.stats.conservation_balance(), 0, "output trims never touch event counters");
}

/// Deterministic rebalance: after manually piling every key onto shard 0,
/// `rebalance()` must move load back and outputs must stay identical to
/// an untouched run.
#[test]
fn rebalance_moves_load_and_preserves_output() {
    let q = window_query(5, 0);
    let streams: Vec<Vec<Event<Value>>> =
        (0..12).map(|k| stream_from_segments(&[(1, 2, k * 3), (1, 1, -k), (2, 2, 7)], 0)).collect();
    let first = arrival_sequence(&streams, 1);
    let second: Vec<KeyedEvent> = first
        .iter()
        .map(|ke| {
            let e = &ke.event;
            KeyedEvent::new(
                ke.key,
                0,
                Event::new(e.start.saturating_add(40), e.end.saturating_add(40), e.payload.clone()),
            )
        })
        .collect();
    let end = Time::new(100);
    let cfg = config(2, 0);
    let want =
        reference_run(&[Arc::clone(&q)], &[first.clone(), second.clone()].concat(), cfg, end);

    let mut builder = StreamService::builder(cfg);
    builder.register(Arc::clone(&q));
    let service = builder.start().unwrap();
    service.ingest(first.iter().cloned());
    // Pile everything onto shard 0…
    for k in 0..12u64 {
        service.migrate_key(k, 0);
        assert_eq!(service.shard_of(k), 0, "route override must stick");
    }
    // …then let the balancer undo the skew.
    let moved = service.rebalance();
    assert!(moved > 0, "a fully skewed service must rebalance");
    service.ingest(second.iter().cloned());
    let out = service.finish_at(end);
    assert_eq!(out.stats.conservation_balance(), 0);
    assert_eq!(out.stats.keys_quarantined, 0);
    assert_same_outputs(&want, &out.per_query, 12, "rebalance").unwrap_or_else(|e| panic!("{e}"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Checkpoint → crash → restore resumes byte-identically: the split
    /// point lands anywhere in a scrambled arrival sequence (events still
    /// buffered out of order at the checkpoint), two queries share the
    /// service, and the property holds at 1/2/4 shards.
    #[test]
    fn checkpoint_restore_is_invisible(
        streams in prop::collection::vec(
            prop::collection::vec((1i64..5, 1i64..4, -50i64..50), 3..16),
            1..4,
        ),
        w1 in 1i64..12,
        a1 in 0u8..3,
        w2 in 1i64..12,
        a2 in 0u8..3,
        displacement in 1usize..16,
        split_frac in 0u8..101,
    ) {
        let events: Vec<Vec<Event<Value>>> =
            streams.iter().map(|segs| stream_from_segments(segs, 0)).collect();
        let arrivals = arrival_sequence(&events, displacement);
        let lateness = lateness_needed(&arrivals) + 2;
        let split = arrivals.len() * split_frac as usize / 100;
        let (prefix, suffix) = arrivals.split_at(split);
        let hi = arrivals.iter().map(|ke| ke.event.end).max().unwrap();
        let end = Time::new(hi.ticks() + 64);
        let queries = [window_query(w1, a1), window_query(w2, a2)];
        for shards in [1usize, 2, 4] {
            if let Err(msg) = check_checkpoint_restore(
                &queries, prefix, suffix, events.len(), shards, lateness, end,
            ) {
                prop_assert!(false, "{} (w1={}, a1={}, w2={}, a2={}, disp={}, split={})",
                    msg, w1, a1, w2, a2, displacement, split);
            }
        }
    }

    /// Migrating every key one shard over mid-stream — with events still
    /// buffered out of order — leaves every query's output byte-identical
    /// to the migration-free run, at 2 and 4 shards.
    #[test]
    fn migration_mid_stream_is_invisible(
        streams in prop::collection::vec(
            prop::collection::vec((1i64..5, 1i64..4, -50i64..50), 3..16),
            1..4,
        ),
        w1 in 1i64..12,
        a1 in 0u8..3,
        displacement in 1usize..16,
        split_frac in 0u8..101,
    ) {
        let events: Vec<Vec<Event<Value>>> =
            streams.iter().map(|segs| stream_from_segments(segs, 0)).collect();
        let arrivals = arrival_sequence(&events, displacement);
        let lateness = lateness_needed(&arrivals) + 2;
        let split = arrivals.len() * split_frac as usize / 100;
        let (prefix, suffix) = arrivals.split_at(split);
        let hi = arrivals.iter().map(|ke| ke.event.end).max().unwrap();
        let end = Time::new(hi.ticks() + 64);
        let queries = [window_query(w1, a1)];
        for shards in [2usize, 4] {
            if let Err(msg) = check_migration(
                &queries, prefix, suffix, events.len(), shards, lateness, end,
            ) {
                prop_assert!(false, "{} (w1={}, a1={}, disp={}, split={})",
                    msg, w1, a1, displacement, split);
            }
        }
    }
}
