//! Shared test support: a single-query [`StreamService`] adapter with the
//! pre-control-plane `Runtime` shape, so the differential suites keep
//! their per-key form while exercising the new API surface.

use std::sync::Arc;

use tilt_core::CompiledQuery;
use tilt_data::{Event, Time, Value};
use tilt_runtime::{KeyedEvent, QueryHandle, RuntimeConfig, RuntimeStats, StreamService};

pub struct Single {
    svc: StreamService,
    q: QueryHandle,
}

pub struct SingleOutput {
    pub per_key: std::collections::HashMap<u64, Vec<Event<Value>>>,
    pub stats: RuntimeStats,
}

#[allow(dead_code)]
impl Single {
    pub fn start(cq: Arc<CompiledQuery>, config: RuntimeConfig) -> Single {
        let mut builder = StreamService::builder(config);
        let q = builder.register(cq);
        Single { svc: builder.start().expect("single registration"), q }
    }

    pub fn ingest<I: IntoIterator<Item = KeyedEvent>>(&self, events: I) {
        self.svc.ingest(events);
    }

    pub fn send(&self, event: KeyedEvent) {
        self.svc.send(event);
    }

    pub fn watermark(&self, source: usize, time: Time) {
        self.svc.watermark(source, time);
    }

    pub fn stats(&self) -> RuntimeStats {
        self.svc.stats()
    }

    pub fn finish_at(self, end: Time) -> SingleOutput {
        let mut out = self.svc.finish_at(end);
        SingleOutput { per_key: out.per_query.swap_remove(self.q.index()), stats: out.stats }
    }
}
