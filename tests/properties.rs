//! Property-based tests (proptest) for the core invariants:
//!
//! * snapshot buffers round-trip event streams and survive slicing/concat;
//! * randomly generated operator pipelines evaluate identically on the
//!   reference evaluator and the TiLT compiler (fused and unfused);
//! * parallel partitioned execution equals serial execution for arbitrary
//!   partition sizes;
//! * incremental window reduction equals naive recomputation.

use proptest::prelude::*;
use tilt_core::ir::{DataType, Expr};
use tilt_core::Compiler;
use tilt_data::{
    coalesce, streams_close, streams_equivalent, Event, SnapshotBuf, Time, TimeRange, Value,
};
use tilt_query::{elem, lhs, rhs, Agg, LogicalPlan, NodeId};

/// Random sorted, disjoint event stream over (0, 400] with gaps.
fn arb_events() -> impl Strategy<Value = Vec<Event<Value>>> {
    prop::collection::vec((1i64..6, 1i64..5, -50i64..50), 0..60).prop_map(|segments| {
        let mut t = 0i64;
        let mut out = Vec::new();
        for (gap, len, val) in segments {
            let start = t + gap;
            let end = start + len;
            // Scale to quarter-steps so equal adjacent values happen often
            // enough to exercise coalescing paths.
            out.push(Event::new(
                Time::new(start),
                Time::new(end),
                Value::Float((val / 4) as f64 * 0.25),
            ));
            t = end;
        }
        out
    })
}

/// A random unary operator stage appended to a plan.
#[derive(Clone, Debug)]
enum Stage {
    Select(i32),
    Where(i32),
    Shift(i8),
    Window { size: u8, stride: u8, agg: u8 },
}

fn arb_stage() -> impl Strategy<Value = Stage> {
    prop_oneof![
        (-3i32..4).prop_map(Stage::Select),
        (-40i32..40).prop_map(Stage::Where),
        (-5i8..6).prop_map(Stage::Shift),
        (1u8..12, 1u8..6, 0u8..5).prop_map(|(size, stride, agg)| {
            let stride = stride.min(size);
            Stage::Window { size, stride, agg }
        }),
    ]
}

fn build_plan(stages: &[Stage], join_tail: bool) -> (LogicalPlan, NodeId) {
    let mut plan = LogicalPlan::new();
    let src = plan.source("s", DataType::Float);
    let mut node = src;
    for st in stages {
        node = match st {
            Stage::Select(k) => plan.select(node, elem().add(Expr::c(*k as f64))),
            Stage::Where(th) => plan.where_(node, elem().gt(Expr::c(*th as f64 * 0.1))),
            Stage::Shift(d) => plan.shift(node, *d as i64),
            Stage::Window { size, stride, agg } => {
                let agg = match agg % 5 {
                    0 => Agg::Sum,
                    1 => Agg::Count,
                    2 => Agg::Mean,
                    3 => Agg::Min,
                    _ => Agg::Max,
                };
                plan.window(node, *size as i64, *stride as i64, agg)
            }
        };
    }
    if join_tail {
        // Join the pipeline against its own source: exercises the
        // pipeline-breaker fusion paths.
        node = plan.join(node, src, lhs().add(rhs()));
    }
    (plan, node)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SnapshotBuf::from_events / to_events is the identity on coalesced
    /// streams.
    #[test]
    fn ssbuf_roundtrip(events in arb_events()) {
        let hi = events.last().map_or(Time::new(1), |e| e.end);
        let range = TimeRange::new(Time::ZERO, hi);
        let buf = SnapshotBuf::from_events(&events, range);
        buf.check_invariants().unwrap();
        prop_assert!(streams_equivalent(&buf.to_events(), &coalesce(&events)));
    }

    /// Slicing at an arbitrary cut and concatenating reproduces the buffer's
    /// semantics.
    #[test]
    fn ssbuf_slice_concat(events in arb_events(), cut in 0i64..400) {
        let hi = events.last().map_or(Time::new(1), |e| e.end) + 1;
        let range = TimeRange::new(Time::ZERO, hi);
        let buf = SnapshotBuf::from_events(&events, range);
        let cut = Time::new(cut.min(hi.ticks() - 1).max(0));
        let a = buf.slice(TimeRange::new(Time::ZERO, cut));
        let b = buf.slice(TimeRange::new(cut, hi));
        let joined = SnapshotBuf::concat(vec![a, b]);
        prop_assert!(streams_equivalent(&joined.to_events(), &buf.to_events()));
        // Point lookups agree everywhere.
        for t in 0..hi.ticks() {
            prop_assert_eq!(joined.value_at(Time::new(t)), buf.value_at(Time::new(t)));
        }
    }

    /// Random pipelines: reference evaluator == TiLT fused == TiLT unfused.
    #[test]
    fn random_pipelines_agree(
        events in arb_events(),
        stages in prop::collection::vec(arb_stage(), 1..5),
        join_tail in any::<bool>(),
    ) {
        let (plan, out) = build_plan(&stages, join_tail);
        let hi = events.last().map_or(Time::new(10), |e| e.end) + 10;
        let q = tilt_query::lower(&plan, out).unwrap();
        let fused = Compiler::new().compile(&q).unwrap();
        let unfused = Compiler::unoptimized().compile(&q).unwrap();
        let range = TimeRange::new(Time::ZERO, hi.align_up(fused.grid()));
        let expected = tilt_query::reference::evaluate(&plan, out, std::slice::from_ref(&events), range);
        let buf = SnapshotBuf::from_events(&events, range);
        let got_fused = fused.run(&[&buf], range).to_events();
        prop_assert!(
            streams_close(&expected, &got_fused, 1e-6),
            "fused vs reference: {:?}\n vs {:?}\nplan: {:?}",
            got_fused, expected, stages
        );
        let got_unfused = unfused.run(&[&buf], range).to_events();
        prop_assert!(
            streams_close(&expected, &got_unfused, 1e-6),
            "unfused vs reference: plan {:?}", stages
        );
    }

    /// Parallel == serial for random partition intervals and thread counts.
    #[test]
    fn parallel_equals_serial(
        events in arb_events(),
        stages in prop::collection::vec(arb_stage(), 1..4),
        threads in 1usize..5,
        interval in 7i64..200,
    ) {
        let (plan, out) = build_plan(&stages, false);
        let q = tilt_query::lower(&plan, out).unwrap();
        let cq = Compiler::new().compile(&q).unwrap();
        let hi = events.last().map_or(Time::new(10), |e| e.end) + 10;
        let range = TimeRange::new(Time::ZERO, hi.align_up(cq.grid()));
        let buf = SnapshotBuf::from_events(&events, range);
        let serial = cq.run(&[&buf], range).to_events();
        let par = cq.run_parallel(&[&buf], range, threads, interval).to_events();
        prop_assert!(
            streams_close(&serial, &par, 1e-6),
            "threads={} interval={} plan={:?}", threads, interval, stages
        );
    }

    /// Incremental window reduction equals the naive per-window fold.
    #[test]
    fn incremental_reduce_equals_naive(
        events in arb_events(),
        size in 1i64..15,
        stride in 1i64..6,
        agg_pick in 0u8..5,
    ) {
        let stride = stride.min(size);
        let agg = match agg_pick {
            0 => Agg::Sum,
            1 => Agg::Count,
            2 => Agg::Mean,
            3 => Agg::Min,
            _ => Agg::Max,
        };
        let mut plan = LogicalPlan::new();
        let src = plan.source("s", DataType::Float);
        let out = plan.window(src, size, stride, agg.clone());
        let q = tilt_query::lower(&plan, out).unwrap();
        let cq = Compiler::new().compile(&q).unwrap();
        let hi = events.last().map_or(Time::new(10), |e| e.end) + size;
        let range = TimeRange::new(Time::ZERO, hi.align_up(stride));
        let buf = SnapshotBuf::from_events(&events, range);
        let got = cq.run(&[&buf], range).to_events();
        let expected = tilt_query::reference::evaluate(&plan, out, std::slice::from_ref(&events), range);
        prop_assert!(
            streams_close(&expected, &got, 1e-6),
            "window({},{}) {:?}: {:?} vs {:?}", size, stride, agg, got, expected
        );
    }
}
