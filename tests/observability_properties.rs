//! Observability properties for `tilt-runtime`'s metrics layer: event
//! accounting must conserve (every ingested event ends in exactly one
//! terminal counter), the `metrics` toggle must never change output, the
//! control-plane journal must keep its ring/sequence invariants, and
//! `ForceDrain` backstops must never quarantine healthy keys or drive the
//! reorder-pending gauge negative — even when the per-key cell roster grew
//! via `attach` after the key last ran.

use std::sync::Arc;

use tilt_core::ir::{DataType, Expr, Query, ReduceOp, TDom};
use tilt_core::{CompiledQuery, Compiler};
use tilt_data::{coalesce, streams_equivalent, Event, Time, Value};
use tilt_runtime::{
    BackstopPolicy, KeyedEvent, QuerySettings, RuntimeConfig, ServiceOutput, StreamService,
};

fn window_query(window: i64) -> Arc<CompiledQuery> {
    let mut b = Query::builder();
    let input = b.input("x", DataType::Float);
    let out =
        b.temporal("w", TDom::every_tick(), Expr::reduce_window(ReduceOp::Sum, input, window));
    Arc::new(Compiler::new().compile(&b.finish(out).unwrap()).unwrap())
}

/// Keyed integer-payload traffic, scrambled by reversing consecutive
/// blocks so a configurable share of arrivals exceeds a small lateness.
fn scrambled_traffic(keys: u64, ticks: i64, displacement: usize) -> Vec<KeyedEvent> {
    let mut all: Vec<KeyedEvent> = (1..=ticks)
        .flat_map(|t| {
            (0..keys).map(move |k| {
                KeyedEvent::new(
                    k,
                    0,
                    Event::point(Time::new(t), Value::Float((k + t as u64) as f64)),
                )
            })
        })
        .collect();
    for block in all.chunks_mut(displacement) {
        block.reverse();
    }
    all
}

/// Runs a service through ingest + live attach/detach churn (plus an
/// optional per-key backstop cap), so the terminal counters (late,
/// backstop, detach) are exercised, and returns the final output.
///
/// Without a cap the run is fully deterministic: lateness decisions and
/// control-plane ordering ride the FIFO shard channels, so two runs see
/// identical outputs. The `DropNewest` cap trips on *buffered* depth,
/// which depends on how fast shards drain — runs with a cap conserve but
/// are not comparable event-for-event.
fn churn_run(shards: usize, metrics: bool, per_key_cap: Option<usize>) -> ServiceOutput {
    let mut builder = StreamService::builder(RuntimeConfig {
        shards,
        // The 8-tick arrival disorder stays inside the lateness bound, so
        // no main-traffic event is ever late no matter how shard advance
        // cycles interleave with acceptance.
        allowed_lateness: 12,
        emit_interval: 4,
        max_pending_per_key: per_key_cap,
        backstop: BackstopPolicy::DropNewest,
        metrics,
        journal_capacity: 256,
        ..RuntimeConfig::default()
    });
    builder.register(window_query(8));
    let service = builder.start().unwrap();

    // Blocks of 128 span 8 ticks of the 16-key interleave.
    let traffic = scrambled_traffic(16, 600, 128);
    let third = traffic.len() / 3;
    service.ingest(traffic[..third].iter().cloned());
    // A tenant joins the running service, rides one third of the stream,
    // and leaves — reorder-buffer entries only it wanted are reclaimed.
    let tenant = service.attach(window_query(3), QuerySettings::default()).unwrap();
    service.ingest(traffic[third..2 * third].iter().cloned());
    service.detach(tenant).unwrap();
    service.ingest(traffic[2 * third..].iter().cloned());

    // Wait until every shard's watermark is provably past t=1+lateness,
    // then send one hopeless straggler per key: deterministically late in
    // every run, whatever the shard/producer interleaving did above.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while service.stats().min_watermark < Time::new(500) {
        assert!(std::time::Instant::now() < deadline, "watermark stalled");
        std::thread::yield_now();
    }
    service.ingest(
        (0..16u64).map(|k| KeyedEvent::new(k, 0, Event::point(Time::new(1), Value::Float(1.0)))),
    );
    service.finish_at(Time::new(610))
}

#[test]
fn event_accounting_conserves_under_churn() {
    for shards in [1usize, 2, 4] {
        let out = churn_run(shards, true, Some(8));
        let s = &out.stats;
        assert_eq!(
            s.conservation_balance(),
            0,
            "shards={shards}: events_in={} consumed={} late={} backstop={} quarantine={} \
             detach={} pending={:?} queued={:?}",
            s.events_in,
            s.events_consumed,
            s.late_dropped,
            s.backstop_dropped,
            s.quarantine_dropped,
            s.detach_dropped,
            s.reorder_pending,
            s.queue_depths,
        );
        assert_eq!(s.reorder_underflow, 0, "shards={shards}: gauge went negative");
        assert!(s.reorder_pending.iter().all(|&p| p == 0), "drained at shutdown");
        assert!(s.queue_depths.iter().all(|&q| q == 0), "queues empty at shutdown");
        // The run must actually exercise the drop paths it claims to
        // conserve across.
        assert!(s.late_dropped > 0, "shards={shards}: disorder must exceed lateness");
        assert!(s.backstop_dropped > 0, "shards={shards}: per-key cap must trip");
    }
}

#[test]
fn conservation_holds_with_metrics_disabled() {
    // The base counters behind the identity are always-on; the toggle only
    // sheds histograms/journal/attribution.
    let out = churn_run(2, false, Some(8));
    assert_eq!(out.stats.conservation_balance(), 0);
    assert_eq!(out.stats.reorder_underflow, 0);
}

#[test]
fn metrics_toggle_never_changes_output() {
    let on = churn_run(2, true, None);
    let off = churn_run(2, false, None);
    assert_eq!(on.per_query.len(), off.per_query.len());
    for (qa, qb) in on.per_query.iter().zip(&off.per_query) {
        let mut keys: Vec<&u64> = qa.keys().collect();
        keys.sort();
        let mut keys_b: Vec<&u64> = qb.keys().collect();
        keys_b.sort();
        assert_eq!(keys, keys_b, "same key population either way");
        for (&k, events) in qa {
            assert!(
                streams_equivalent(&coalesce(events), &coalesce(&qb[&k])),
                "key {k}: output must be byte-identical with metrics on and off"
            );
        }
    }
    // The detailed layer was genuinely on in one run and off in the other.
    assert!(on.journal.next_seq > 0, "attach/detach churn must be journaled");
    assert_eq!(off.journal.next_seq, 0, "metrics off ⇒ journal never written");
    assert!(off.journal.events.is_empty());
    // Base counters agree on everything the toggle does not gate *and*
    // the FIFO shard channels make deterministic. `events_out` is not in
    // that set: shards drain ingest in bursts and run one emission cycle
    // per burst, so burst boundaries (scheduling) decide how many cycles
    // run — and whether the short-lived tenant emits at all before its
    // detach. Raw emitted-span counts therefore vary run to run even with
    // identical inputs; the coalesced per-query content compared above is
    // the real toggle invariant.
    assert_eq!(on.stats.events_in, off.stats.events_in);
    assert_eq!(on.stats.late_dropped, off.stats.late_dropped);
}

/// `ForceDrain` backstop under attach/detach churn: forced drains must
/// never quarantine a healthy key, drive the reorder-pending gauge
/// negative, or leak events from the conservation identity — at 1 and 2
/// shards, with both per-key and per-shard caps tripping.
#[test]
fn force_drain_churn_conserves() {
    for shards in [1usize, 2] {
        let mut builder = StreamService::builder(RuntimeConfig {
            shards,
            allowed_lateness: 4,
            emit_interval: 1,
            max_pending_per_key: Some(3),
            max_pending_per_shard: Some(24),
            backstop: BackstopPolicy::ForceDrain,
            metrics: true,
            ..RuntimeConfig::default()
        });
        builder.register(window_query(8));
        let service = builder.start().unwrap();
        let tr = scrambled_traffic(6, 400, 48);
        let chunk = tr.len() / 10;
        let mut handles = Vec::new();
        for (i, part) in tr.chunks(chunk).enumerate() {
            service.ingest(part.iter().cloned());
            if i % 2 == 0 {
                let settings = QuerySettings {
                    allowed_lateness: Some(30 + i as i64 * 7),
                    emit_interval: Some(1 + (i as i64 % 3)),
                    ..QuerySettings::default()
                };
                handles.push(service.attach(window_query(2 + (i as i64 % 3)), settings).unwrap());
            } else if let Some(h) = handles.pop() {
                service.detach(h).unwrap();
            }
        }
        for h in handles {
            service.detach(h).unwrap();
        }
        let out = service.finish_at(Time::new(410));
        let s = &out.stats;
        assert_eq!(s.reorder_underflow, 0, "shards={shards}: gauge went negative");
        assert_eq!(s.keys_quarantined, 0, "shards={shards}: force-drain quarantined a key");
        assert_eq!(s.conservation_balance(), 0, "shards={shards}: events leaked");
    }
}

/// Regression: `attach` grows the per-key cell roster, and a later
/// shard-cap force-drain picks a victim key that no emission cycle has
/// visited (and re-synced) since — the watermark is pinned, so no cycle
/// ever runs. Draining through the stale roster used to index past the
/// key's cell list, panic, and quarantine a perfectly healthy key; the
/// drain must sync the roster first.
#[test]
fn force_drain_after_attach_keeps_keys_healthy() {
    let mut builder = StreamService::builder(RuntimeConfig {
        shards: 1,
        // Watermark pinned far behind: no emission cycle is ever due, so
        // no visit re-syncs old keys after the attach.
        allowed_lateness: 100_000,
        emit_interval: 1,
        max_pending_per_shard: Some(32),
        backstop: BackstopPolicy::ForceDrain,
        metrics: true,
        ..RuntimeConfig::default()
    });
    builder.register(window_query(4));
    let service = builder.start().unwrap();
    // Key 0 buffers 20 events under the pinned watermark.
    service.ingest(
        (1..=20).map(|t| KeyedEvent::new(0, 0, Event::point(Time::new(t), Value::Float(t as f64)))),
    );
    // The roster grows.
    let _tenant = service.attach(window_query(2), QuerySettings::default()).unwrap();
    // A different key floods past the shard cap: the force-drain victim is
    // key 0 (fullest buffer), whose cell roster was never resynced.
    service.ingest(
        (1..=14).map(|t| KeyedEvent::new(9, 0, Event::point(Time::new(t), Value::Float(t as f64)))),
    );
    let out = service.finish_at(Time::new(40));
    assert_eq!(
        out.stats.keys_quarantined, 0,
        "healthy key quarantined by a force-drain (quarantine_dropped={})",
        out.stats.quarantine_dropped
    );
    assert_eq!(out.stats.reorder_underflow, 0);
    assert_eq!(out.stats.conservation_balance(), 0);
}

#[test]
fn journal_ring_keeps_sequence_invariants() {
    let mut builder = StreamService::builder(RuntimeConfig {
        shards: 1,
        journal_capacity: 4,
        ..RuntimeConfig::default()
    });
    builder.register(window_query(4));
    let service = builder.start().unwrap();
    // 10 attach/detach pairs push 20 transitions through a 4-slot ring.
    for _ in 0..10 {
        let h = service.attach(window_query(2), QuerySettings::default()).unwrap();
        service.detach(h).unwrap();
    }
    let j = service.journal();
    assert_eq!(j.events.len(), 4, "ring retains exactly its capacity");
    assert_eq!(j.next_seq, 21, "1 registration + 20 churn transitions");
    assert_eq!(j.dropped, j.next_seq - j.events.len() as u64);
    // Seqs are contiguous, oldest first, and stamps never go backwards.
    for pair in j.events.windows(2) {
        assert_eq!(pair[1].seq, pair[0].seq + 1);
        assert!(pair[1].at_ms >= pair[0].at_ms);
    }
    assert_eq!(j.events.last().unwrap().seq, j.next_seq - 1);
    let last = format!("{}", j.events.last().unwrap().event);
    assert!(last.contains("detach"), "churn ends on a detach, got: {last}");
    service.finish_at(Time::new(8));
}

/// Spill/revive churn keeps the conservation ledger exact: events riding
/// spill bundles move onto the `spilled_pending` gauge and come back off
/// at revival, every spill has exactly one revival, and the journal
/// records the durable transitions.
#[test]
fn spill_and_revive_churn_conserves() {
    let dir = std::env::temp_dir().join(format!("tilt-obs-spill-{}", std::process::id()));
    for shards in [1usize, 2, 4] {
        let mut builder = StreamService::builder(RuntimeConfig {
            shards,
            allowed_lateness: 12,
            emit_interval: 4,
            key_ttl: Some(24),
            metrics: true,
            journal_capacity: 256,
            ..RuntimeConfig::default()
        })
        .spill_to(&dir);
        builder.register(window_query(8));
        let service = builder.start().unwrap();
        // Keys 0..4 run early then fall silent; keys 4..16 keep the
        // watermark moving far enough for the TTL sweep to spill them;
        // then everyone returns at the live edge and the spilled keys
        // revive mid-stream (the rest revive at the final flush).
        let early: Vec<KeyedEvent> = scrambled_traffic(16, 200, 32)
            .into_iter()
            .filter(|ke| ke.event.end.ticks() <= 100 || ke.key >= 4)
            .collect();
        service.ingest(early.iter().cloned());
        // Let the shards drain and their watermarks reach the early
        // horizon, so the TTL sweep observes the idle keys before fresh
        // traffic arrives for them.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let stats = service.stats();
            let drained = stats.queue_depths.iter().sum::<usize>() == 0;
            let caught_up = stats.shard_watermarks.iter().all(|w| w.ticks() >= 180);
            if (drained && caught_up) || std::time::Instant::now() >= deadline {
                break;
            }
            std::thread::yield_now();
        }
        let late_edge: Vec<KeyedEvent> = (201..=240)
            .flat_map(|t| {
                (0..16u64).map(move |k| {
                    KeyedEvent::new(
                        k,
                        0,
                        Event::point(Time::new(t), Value::Float((k + t as u64) as f64)),
                    )
                })
            })
            .collect();
        service.ingest(late_edge.iter().cloned());
        let out = service.finish_at(Time::new(260));
        let s = &out.stats;
        assert!(s.spills > 0, "shards={shards}: idle keys must spill");
        assert_eq!(s.spills, s.spill_revivals, "shards={shards}: spill/revival symmetry");
        assert_eq!(s.spilled_pending, 0, "shards={shards}: no events left on disk");
        assert_eq!(s.keys_quarantined, 0, "shards={shards}: spill must not quarantine");
        assert_eq!(s.conservation_balance(), 0, "shards={shards}: conservation through spill");
        assert_eq!(s.reorder_underflow, 0, "shards={shards}: gauge handoff must not underflow");
        let journal = format!("{:?}", service_journal_kinds(&out));
        assert!(journal.contains("spill"), "journal must record spills: {journal}");
        assert!(journal.contains("revive"), "journal must record revivals: {journal}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Renders the journal's event kinds for assertion messages.
fn service_journal_kinds(out: &ServiceOutput) -> Vec<String> {
    out.journal.events.iter().map(|e| format!("{}", e.event).to_lowercase()).collect()
}
