//! Chaos differential suite: under seeded fault schedules — a torn
//! checkpoint write, a connection killed mid-stream, error-every-Nth
//! spill writes — the final per-key output must equal the fault-free
//! run, conservation must hold exactly, and a reconnecting subscriber
//! with `Resume` must observe every frame exactly once.
//!
//! Every test runs inside a [`tilt_fault::Scenario`], which serializes
//! fault tests within this binary and resets the failpoint registry on
//! entry and on drop. `FAULT_SEED` (env, decimal or `0x`-hex) varies
//! the schedules; CI runs the suite under several seeds.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tilt_core::ir::{DataType, Expr, Query, ReduceOp, TDom};
use tilt_core::{CompiledQuery, Compiler};
use tilt_data::{coalesce, streams_equivalent, Event, Time, Value};
use tilt_fault as fault;
use tilt_fault::Policy;
use tilt_runtime::{KeyedEvent, Lineage, RuntimeConfig, StreamService};
use tilt_server::{Client, ClientConfig, RetryPolicy, Server, ServerConfig};

/// Default chaos seed when `FAULT_SEED` is unset.
const SEED_DEFAULT: u64 = 0xC0A5_C0DE;

// ───────────────────────────── helpers ─────────────────────────────
// Same shapes as the durability and wire-protocol suites, so the chaos
// runs are differential against the exact workloads those suites hold
// to identity.

fn window_query(window: i64, agg: u8) -> Arc<CompiledQuery> {
    let op = match agg % 3 {
        0 => ReduceOp::Sum,
        1 => ReduceOp::Min,
        _ => ReduceOp::Max,
    };
    let mut b = Query::builder();
    let input = b.input("x", DataType::Float);
    let out = b.temporal("w", TDom::every_tick(), Expr::reduce_window(op, input, window));
    let q = b.finish(out).unwrap();
    Arc::new(Compiler::new().compile(&q).unwrap())
}

fn stream_from_segments(segments: &[(i64, i64, i64)]) -> Vec<Event<Value>> {
    let mut t = 0;
    let mut out = Vec::new();
    for (gap, len, val) in segments {
        let start = t + gap;
        let end = start + len;
        out.push(Event::new(
            Time::new(start),
            Time::new(end),
            Value::Float((val / 4) as f64 * 0.25),
        ));
        t = end;
    }
    out
}

/// Interleaves per-key streams into one arrival sequence, then scrambles
/// it by reversing consecutive blocks of `displacement` events.
fn arrival_sequence(streams: &[Vec<Event<Value>>], displacement: usize) -> Vec<KeyedEvent> {
    let mut all: Vec<KeyedEvent> = streams
        .iter()
        .enumerate()
        .flat_map(|(k, evs)| evs.iter().map(move |e| KeyedEvent::new(k as u64, 0, e.clone())))
        .collect();
    all.sort_by_key(|ke| (ke.event.end, ke.key));
    if displacement > 1 {
        for block in all.chunks_mut(displacement) {
            block.reverse();
        }
    }
    all
}

/// The smallest allowed lateness absorbing the disorder of `arrivals`.
fn lateness_needed(arrivals: &[KeyedEvent]) -> i64 {
    let mut max_start = Time::MIN;
    let mut worst = 0i64;
    for ke in arrivals {
        if max_start > ke.event.start {
            worst = worst.max(max_start - ke.event.start);
        }
        max_start = max_start.max(ke.event.start);
    }
    worst
}

fn config(shards: usize, lateness: i64) -> RuntimeConfig {
    RuntimeConfig {
        shards,
        allowed_lateness: lateness,
        emit_interval: 4,
        ..RuntimeConfig::default()
    }
}

/// A scratch path unique to this process and call site.
fn scratch_path(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("tilt-chaos-{}-{tag}-{n}", std::process::id()))
}

/// The fault-free reference: one query over all arrivals, one run.
/// Always computed *before* a schedule is armed.
fn reference_run(
    cq: &Arc<CompiledQuery>,
    arrivals: &[KeyedEvent],
    cfg: RuntimeConfig,
    end: Time,
) -> HashMap<u64, Vec<Event<Value>>> {
    let mut builder = StreamService::builder(cfg);
    let q = builder.register(Arc::clone(cq));
    let service = builder.start().expect("single registration");
    service.ingest(arrivals.iter().cloned());
    service.finish_at(end).per_query.swap_remove(q.index())
}

fn assert_identical(
    got: &HashMap<u64, Vec<Event<Value>>>,
    want: &HashMap<u64, Vec<Event<Value>>>,
    ctx: &str,
) {
    let mut keys: Vec<u64> = got.keys().chain(want.keys()).copied().collect();
    keys.sort_unstable();
    keys.dedup();
    for key in keys {
        let g = got.get(&key).cloned().unwrap_or_default();
        let w = want.get(&key).cloned().unwrap_or_default();
        assert!(
            streams_equivalent(&coalesce(&g), &coalesce(&w)),
            "{ctx}: key {key} diverged\n faulted: {g:?}\n reference: {w:?}"
        );
    }
}

/// The phased spill workload from the durability suite: keys 0..8 run,
/// go idle past the TTL while keys 8..16 carry the watermark (the idle
/// keys spill), then everyone returns at the live edge (they revive).
fn phased_spill_traffic() -> [Vec<KeyedEvent>; 3] {
    let phase = |keys: std::ops::Range<u64>, ticks: std::ops::Range<i64>| {
        let mut evs = Vec::new();
        for t in ticks {
            for k in keys.clone() {
                evs.push(KeyedEvent::new(
                    k,
                    0,
                    Event::point(Time::new(t), Value::Float((k + t as u64) as f64)),
                ));
            }
        }
        evs
    };
    [phase(0..8, 1..50), phase(8..16, 50..150), phase(0..16, 150..200)]
}

/// Lets the shards drain between phases so idleness is observed.
fn drain(service: &StreamService) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.stats().queue_depths.iter().sum::<usize>() > 0 && Instant::now() < deadline {
        std::thread::yield_now();
    }
}

// ─────────────────── schedule A: torn checkpoint ───────────────────

/// A checkpoint killed mid-write — torn record, failed fsync, or failed
/// rename, one mode per shard count — must leave the lineage's last
/// published snapshot untouched. Recovery restores from it, re-ingests
/// the suffix, and lands on output identical to the fault-free run.
#[test]
fn torn_checkpoint_recovers_from_newest_valid_snapshot() {
    let _scenario = fault::Scenario::setup();
    let seed = fault::seed_from_env(SEED_DEFAULT);
    let cq = window_query(7, 0);
    let streams: Vec<Vec<Event<Value>>> = (0..6)
        .map(|k| stream_from_segments(&[(1, 3, k * 5), (2, 2, k - 9), (1, 4, 17), (3, 2, k)]))
        .collect();
    let arrivals = arrival_sequence(&streams, 3);
    let lateness = lateness_needed(&arrivals).max(1);
    let end = Time::new(arrivals.iter().map(|ke| ke.event.end.ticks()).max().unwrap_or(0) + 7);
    let (prefix, rest) = arrivals.split_at((arrivals.len() / 3).max(1));

    let kill_sites =
        ["state.snapshot.write_record", "state.snapshot.fsync", "state.snapshot.rename"];
    for (site, shards) in kill_sites.iter().zip([1usize, 2, 4]) {
        let cfg = config(shards, lateness);
        let want = reference_run(&cq, &arrivals, cfg, end);

        let dir = scratch_path("lineage");
        let lineage = Lineage::open(&dir, 3).expect("lineage directory");
        let mut builder = StreamService::builder(cfg);
        let handle = builder.register(Arc::clone(&cq));
        let service = builder.start().expect("service starts");
        service.ingest(prefix.iter().cloned());
        let (good, _) = service.checkpoint_to(&lineage).expect("clean checkpoint publishes");

        service.ingest(rest.iter().cloned());
        let policy = if *site == "state.snapshot.write_record" {
            fault::seeded_torn(seed, site, 512)
        } else {
            Policy::ErrorOnce
        };
        fault::arm(site, policy);
        let torn = service.checkpoint_to(&lineage);
        assert!(
            torn.is_err(),
            "shards={shards}: checkpoint through a {site} fault must fail, got {torn:?}"
        );
        fault::disarm(site);
        assert!(fault::injected(site) >= 1, "shards={shards}: {site} schedule never fired");
        drop(service); // crash: nothing after the good checkpoint survives in memory

        let (restored, from) = StreamService::restore_latest(&lineage, &[Arc::clone(&cq)])
            .unwrap_or_else(|e| panic!("shards={shards}: recovery failed: {e}"));
        assert_eq!(
            from, good,
            "shards={shards}: recovery must land on the snapshot published before the fault"
        );
        restored.ingest(rest.iter().cloned());
        let mut out = restored.finish_at(end);
        assert_eq!(
            out.stats.conservation_balance(),
            0,
            "shards={shards}: conservation across torn checkpoint + recovery"
        );
        let got = out.per_query.swap_remove(handle.index());
        assert_identical(&got, &want, &format!("shards={shards} site={site}"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ─────────────── schedule B: connection killed mid-stream ───────────────

/// The first output frame after arming dies on the server's socket
/// write; the server drops the connection. The client must redial,
/// re-handshake, `Resume` from its last delivered sequence number, and
/// observe every frame exactly once — final per-key output identical to
/// the in-process fault-free run.
#[test]
fn killed_subscriber_reconnects_and_resumes_exactly_once() {
    let _scenario = fault::Scenario::setup();
    let seed = fault::seed_from_env(SEED_DEFAULT);
    let cq = window_query(8, 0);
    let streams: Vec<Vec<Event<Value>>> = (0..5)
        .map(|k| stream_from_segments(&[(1, 2, k * 9), (1, 3, -5), (2, 2, 13 + k)]))
        .collect();
    let arrivals = arrival_sequence(&streams, 2);
    let lateness = lateness_needed(&arrivals).max(1);
    let horizon = arrivals.iter().map(|ke| ke.event.end.ticks()).max().unwrap_or(0) + lateness + 16;
    let end = Time::new(horizon);
    let cfg = config(2, lateness);
    let want = reference_run(&cq, &arrivals, cfg, end);

    let server = Server::start_with(
        ServerConfig { runtime: cfg, replay_ring_capacity: 4096, ..ServerConfig::default() },
        vec![("w".into(), Arc::clone(&cq))],
    )
    .expect("server starts");
    let retry = RetryPolicy {
        max_attempts: 10,
        base: Duration::from_millis(2),
        cap: Duration::from_millis(40),
        seed,
    };
    let client = Client::connect_with(
        server.addr(),
        ClientConfig { retry: Some(retry), ..ClientConfig::default() },
    )
    .expect("client connects");
    let q = client.attach("w", None, None).expect("attach");
    let sub = client.subscribe(q).expect("subscribe");
    client.ingest(arrivals.iter().cloned()).expect("ingest");

    // Every request above has its reply; the next server→client send is
    // an output frame. Kill exactly that one, then release the output
    // with an explicit watermark (fire-and-forget: no reply to race).
    fault::arm("server.conn.write", Policy::ErrorOnce);
    client.watermark(0, end).expect("watermark");

    let deadline = Instant::now() + Duration::from_secs(20);
    while client.reconnects() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(fault::injected("server.conn.write"), 1, "the schedule fires exactly once");
    assert!(client.reconnects() >= 1, "client must heal the killed connection");
    assert_eq!(client.resume_gaps(), 0, "the replay ring must cover the outage");

    client.shutdown(Some(end)).expect("shutdown drains the service");
    let stats = client.stats().expect("post-shutdown stats");
    assert_eq!(stats.get("conservation_balance"), Some(0), "conservation under injection");
    assert!(
        stats.get("resume_replays").unwrap_or(0) >= 1,
        "server must have replayed the missed suffix"
    );
    assert_eq!(stats.get("resume_gaps"), Some(0), "no subscriber fell off the ring");
    let got = sub.collect_per_key();
    server.stop();
    assert_identical(&got, &want, "killed connection + resume");
}

// ─────────────── schedule C: error-every-Nth spill write ───────────────

/// Spill writes failing on a seeded every-Nth schedule degrade to plain
/// in-memory eviction — no quarantine, conservation exact, and output
/// identical to a run that never evicted anything at all.
#[test]
fn spill_write_faults_fall_back_without_losing_output() {
    let _scenario = fault::Scenario::setup();
    let seed = fault::seed_from_env(SEED_DEFAULT);
    let cq = window_query(6, 0);
    let phases = phased_spill_traffic();
    let all: Vec<KeyedEvent> = phases.iter().flatten().cloned().collect();
    let end = Time::new(220);

    for shards in [1usize, 2] {
        let want = reference_run(&cq, &all, config(shards, 0), end);

        let dir = scratch_path("spill");
        fault::arm("state.spill.write", fault::seeded_nth(seed, "state.spill.write", 2, 4));
        let mut builder =
            StreamService::builder(RuntimeConfig { key_ttl: Some(16), ..config(shards, 0) })
                .spill_to(&dir);
        let handle = builder.register(Arc::clone(&cq));
        let service = builder.start().expect("service starts");
        for p in &phases {
            service.ingest(p.iter().cloned());
            drain(&service);
        }
        let mut out = service.finish_at(end);
        fault::disarm("state.spill.write");

        let s = &out.stats;
        assert!(
            fault::injected("state.spill.write") >= 1,
            "shards={shards}: the spill-write schedule never bit"
        );
        assert_eq!(
            s.keys_quarantined, 0,
            "shards={shards}: write failures degrade to memory, never quarantine"
        );
        assert_eq!(
            s.spills, s.spill_revivals,
            "shards={shards}: every *successful* spill still revives exactly once"
        );
        assert_eq!(s.spilled_pending, 0, "shards={shards}: no stranded disk accounting");
        assert_eq!(
            s.conservation_balance(),
            0,
            "shards={shards}: conservation under spill-write injection"
        );
        let got = out.per_query.swap_remove(handle.index());
        assert_identical(&got, &want, &format!("shards={shards} spill-write faults"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The read-side counterpart is *not* output-preserving by design: an
/// unreadable bundle quarantines its key. What must hold instead: the
/// corrupt bundle is counted, journaled as a typed control event, and
/// conservation stays exact through the quarantine accounting.
#[test]
fn corrupt_spill_bundles_are_quarantined_and_journaled() {
    let _scenario = fault::Scenario::setup();
    let cq = window_query(6, 0);
    let phases = phased_spill_traffic();
    let end = Time::new(220);

    let dir = scratch_path("quarantine");
    fault::arm("state.spill.read", Policy::ErrorOnce);
    let mut builder =
        StreamService::builder(RuntimeConfig { key_ttl: Some(16), ..config(2, 0) }).spill_to(&dir);
    builder.register(Arc::clone(&cq));
    let service = builder.start().expect("service starts");
    for p in &phases {
        service.ingest(p.iter().cloned());
        drain(&service);
    }
    let out = service.finish_at(end);
    fault::disarm("state.spill.read");

    let s = &out.stats;
    assert!(fault::injected("state.spill.read") >= 1, "the spill-read schedule never bit");
    assert!(s.spills > 0, "phased idleness must spill before the fault can fire");
    assert!(s.spill_corrupt >= 1, "the failed revival must be counted as corrupt");
    assert!(s.keys_quarantined >= 1, "the key with the unreadable bundle is quarantined");
    assert_eq!(s.conservation_balance(), 0, "quarantine accounting keeps conservation exact");
    let journal = out.journal.to_text();
    assert!(
        journal.contains("spill-corrupt"),
        "journal must record the corrupt bundle, got:\n{journal}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
