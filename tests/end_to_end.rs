//! Cross-crate integration tests: the whole pipeline — frontend → TiLT IR →
//! optimizer → kernels → parallel/streaming execution — against the
//! reference evaluator and the baseline engines, on every benchmark
//! application.

use tilt_core::ir::print_query;
use tilt_core::Compiler;
use tilt_data::{streams_close, Event, SnapshotBuf, Time, TimeRange, Value};
use tilt_workloads::{all_apps, ysb};

/// Every application: reference, TiLT (fused + unfused), Trill, and batched
/// streaming all agree on the same input.
#[test]
fn five_way_agreement_on_every_app() {
    for app in all_apps() {
        let n = 500usize;
        let events = (app.dataset)(n, 13);
        let hi = events.iter().map(|e| e.end).max().unwrap();
        let q = tilt_query::lower(&app.plan, app.output).unwrap();
        let fused = Compiler::new().compile(&q).unwrap();
        let unfused = Compiler::unoptimized().compile(&q).unwrap();
        let range = TimeRange::new(Time::ZERO, hi.align_up(fused.grid()));

        let expected = tilt_query::reference::evaluate(
            &app.plan,
            app.output,
            std::slice::from_ref(&events),
            range,
        );
        let buf = SnapshotBuf::from_events(&events, range);

        let tilt_fused = fused.run(&[&buf], range).to_events();
        assert!(
            streams_close(&expected, &tilt_fused, 1e-6),
            "{}: fused TiLT vs reference\n{}",
            app.name,
            print_query(fused.query())
        );

        let tilt_unfused = unfused.run(&[&buf], range).to_events();
        assert!(
            streams_close(&expected, &tilt_unfused, 1e-6),
            "{}: unfused TiLT vs reference",
            app.name
        );

        let trill: Vec<Event<Value>> = spe_trill::run_single(&app.plan, app.output, &events, 64)
            .into_iter()
            .filter(|e| e.end <= range.end)
            .collect();
        assert!(streams_close(&expected, &trill, 1e-6), "{}: Trill vs reference", app.name);

        // Batched streaming (three different batch sizes).
        for batch in [37usize, 128, 5000] {
            let mut session = fused.stream_session(Time::ZERO);
            let mut streamed: Vec<Event<Value>> = Vec::new();
            for chunk in events.chunks(batch) {
                session.push_events(0, chunk);
                let upto = chunk.last().unwrap().end;
                if upto > session.watermark() {
                    streamed.extend(session.advance_to(upto).to_events());
                }
            }
            if session.watermark() < range.end {
                streamed.extend(session.flush_to(range.end).to_events());
            }
            let streamed = tilt_data::coalesce(&streamed);
            assert!(
                streams_close(&expected, &streamed, 1e-6),
                "{}: streaming (batch {batch}) vs reference: {} vs {} events",
                app.name,
                expected.len(),
                streamed.len()
            );
        }
    }
}

/// Fusion collapses each application to (far) fewer kernels than operators,
/// and the compiler reports sane boundary conditions.
#[test]
fn fusion_compresses_every_app() {
    for app in all_apps() {
        let q = tilt_query::lower(&app.plan, app.output).unwrap();
        let fused = Compiler::new().compile(&q).unwrap();
        let unfused = Compiler::unoptimized().compile(&q).unwrap();
        assert!(
            fused.num_kernels() <= unfused.num_kernels(),
            "{}: fusion grew the kernel count ({} vs {})",
            app.name,
            fused.num_kernels(),
            unfused.num_kernels()
        );
        // Across the suite fusion must be doing real work; spot-check that
        // the heavily fusible apps collapse completely. (RSI stays at 3
        // kernels: its windows aggregate a two-source pointwise transform,
        // which single-source window-map fusion cannot absorb.)
        if matches!(app.name, "Trading" | "FraudDet") {
            assert_eq!(fused.num_kernels(), 1, "{} should fuse fully", app.name);
        }
        if app.name == "RSI" {
            assert_eq!(fused.num_kernels(), 3);
        }
        let lookback = fused.boundary().max_input_lookback(fused.query());
        assert!((0..1_000_000).contains(&lookback), "{}: lookback {lookback}", app.name);
    }
}

/// YSB: all five engines agree on total view counts, at several thread
/// counts.
#[test]
fn ysb_engines_agree() {
    let campaigns = 10;
    let window = ysb::window_ticks(50);
    let events = ysb::generate(5_000, campaigns, 3);
    let range = ysb::extent(&events, window);
    let partitions = ysb::partition(&events, campaigns);
    let expected: i64 = events.iter().filter(|e| e.event_type == 0).count() as i64;
    for threads in [1usize, 2, 4] {
        assert_eq!(ysb::run_tilt(&partitions, range, threads, window), expected);
        assert_eq!(ysb::run_trill(&partitions, 512, threads, range, window), expected);
        assert_eq!(ysb::run_lightsaber(&events, range, threads, window), expected);
        assert_eq!(ysb::run_grizzly(&events, campaigns, range, threads, window), expected);
    }
    assert_eq!(ysb::run_streambox(&partitions, 512, range, window), expected);
}

/// Parallel execution sweeps: thread counts × partition interval sizes must
/// all match serial output on a query with every construct (windows, join,
/// shift, filter).
#[test]
fn parallel_sweep_matches_serial() {
    let app = tilt_workloads::apps::fraud_det();
    let events = (app.dataset)(2_000, 5);
    let q = tilt_query::lower(&app.plan, app.output).unwrap();
    let cq = Compiler::new().compile(&q).unwrap();
    let hi = events.iter().map(|e| e.end).max().unwrap();
    let range = TimeRange::new(Time::ZERO, hi.align_down(cq.grid()));
    let buf = SnapshotBuf::from_events(&events, range);
    let serial = cq.run(&[&buf], range).to_events();
    for threads in [2usize, 3, 8] {
        for interval in [64i64, 301, 997, 5_000] {
            let par = cq.run_parallel(&[&buf], range, threads, interval).to_events();
            assert!(
                streams_close(&serial, &par, 1e-6),
                "threads={threads} interval={interval}: {} vs {} events",
                serial.len(),
                par.len()
            );
        }
    }
}

/// The Fig. 10 structural claim: the trend query compiles to 6 kernels
/// without fusion and exactly 1 with it, and both agree.
#[test]
fn trend_query_fusion_structure() {
    let app = tilt_workloads::apps::trading();
    let q = tilt_query::lower(&app.plan, app.output).unwrap();
    let fused = Compiler::new().compile(&q).unwrap();
    let unfused = Compiler::unoptimized().compile(&q).unwrap();
    assert_eq!(fused.num_kernels(), 1);
    assert_eq!(unfused.num_kernels(), 4);
    assert_eq!(fused.boundary().max_input_lookback(fused.query()), 20);
}
