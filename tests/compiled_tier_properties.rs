//! Differential property tests for the typed kernel tiers: randomly
//! generated *well-typed* expression DAGs over random event streams must
//! produce **byte-identical** output on all three tiers — batched,
//! per-tick compiled, and interpreted; identical span boundaries,
//! identical payload bits (`SnapshotBuf` equality uses `Value::same`,
//! which compares floats bitwise) — one-shot, fused and unfused, and
//! through the sharded `StreamService` at 1/2/4 shards.
//!
//! The generator deliberately covers the tier boundaries: φ-heavy bodies
//! (null literals, filters, sparse streams), `Str` equality, `Tuple`
//! construction/projection, custom reductions, and mixed `int`/`float`
//! `if` branches whose unpromoted taken value must survive boxing. A
//! deterministic suite at the bottom pins the batched tier's word-edge
//! behavior: runs of 63/64/65 ticks and φ gaps straddling 64-lane mask
//! word boundaries.

use std::sync::Arc;

use proptest::prelude::*;
use tilt_core::ir::{CustomReduce, DataType, Expr, Query, QueryBuilder, ReduceOp, TDom, TObjId};
use tilt_core::{Compiler, ExecTier};
use tilt_data::{Event, SnapshotBuf, Time, TimeRange, Value};
use tilt_runtime::{KeyedEvent, RuntimeConfig};

mod common;
use common::Single;

/// Deterministic expression/DAG generator driven by one seed.
struct Gen {
    rng: TestRng,
}

impl Gen {
    fn pick(&mut self, n: usize) -> usize {
        self.rng.below(n)
    }

    fn small_float(&mut self) -> f64 {
        // Quarter-steps so equal values (and coalescing) happen often.
        (self.rng.below(41) as f64 - 20.0) * 0.25
    }

    fn small_int(&mut self) -> i64 {
        self.rng.below(21) as i64 - 10
    }

    fn a_str(&mut self) -> &'static str {
        ["hot", "cold", "a", "b"][self.pick(4)]
    }

    /// Objects of a given type available as leaves.
    fn pick_obj(objs: &[(TObjId, DataType)], ty: &DataType, g: &mut Gen) -> Option<TObjId> {
        let candidates: Vec<TObjId> =
            objs.iter().filter(|(_, t)| t == ty).map(|(o, _)| *o).collect();
        if candidates.is_empty() {
            None
        } else {
            Some(candidates[g.pick(candidates.len())])
        }
    }

    /// A leaf expression of the target type.
    fn leaf(&mut self, ty: &DataType, objs: &[(TObjId, DataType)]) -> Expr {
        if self.pick(6) == 0 {
            return Expr::null(); // φ inhabits every type
        }
        if self.pick(2) == 0 {
            if let Some(obj) = Self::pick_obj(objs, ty, self) {
                let offset = self.small_int().clamp(-4, 4);
                return Expr::at_off(obj, offset);
            }
        }
        match ty {
            DataType::Float => {
                // Occasionally project a tuple field (fallback boundary).
                if self.pick(4) == 0 {
                    if let Some(tp) = Self::pick_obj(objs, &tuple_ty(), self) {
                        return Expr::at(tp).get(0);
                    }
                }
                Expr::c(self.small_float())
            }
            DataType::Int => {
                if self.pick(4) == 0 {
                    if let Some(tp) = Self::pick_obj(objs, &tuple_ty(), self) {
                        return Expr::at(tp).get(1);
                    }
                }
                Expr::c(self.small_int())
            }
            DataType::Bool => Expr::c(self.pick(2) == 0),
            DataType::Str => Expr::c(self.a_str()),
            _ => Expr::null(),
        }
    }

    /// A well-typed expression of the target type, depth-bounded.
    fn expr(&mut self, ty: &DataType, depth: u32, objs: &[(TObjId, DataType)]) -> Expr {
        if depth == 0 {
            return self.leaf(ty, objs);
        }
        let d = depth - 1;
        match ty {
            DataType::Float => match self.pick(8) {
                0 | 1 => {
                    // Arithmetic; mixed operands exercise promotion.
                    let ops = [Expr::add, Expr::sub, Expr::mul, Expr::div];
                    let op = ops[self.pick(4)];
                    let rhs_ty = if self.pick(3) == 0 { DataType::Int } else { DataType::Float };
                    op(self.expr(&DataType::Float, d, objs), self.expr(&rhs_ty, d, objs))
                }
                2 => Expr::if_else(
                    self.expr(&DataType::Bool, d, objs),
                    self.expr(&DataType::Float, d, objs),
                    self.expr(&DataType::Float, d, objs),
                ),
                // Mixed-branch if: static type Float, runtime int/float.
                3 => Expr::if_else(
                    self.expr(&DataType::Bool, d, objs),
                    self.expr(&DataType::Int, d, objs),
                    self.expr(&DataType::Float, d, objs),
                ),
                4 => self.expr(&DataType::Float, d, objs).neg(),
                5 => self.expr(&DataType::Float, d, objs).abs(),
                6 => self.expr(&DataType::Float, d, objs).sqrt(),
                _ => Expr::Unary(
                    tilt_core::ir::UnOp::ToFloat,
                    Box::new(self.expr(&DataType::Int, d, objs)),
                ),
            },
            DataType::Int => match self.pick(6) {
                0 | 1 => {
                    let ops = [Expr::add, Expr::sub, Expr::mul, Expr::div, Expr::rem];
                    let op = ops[self.pick(5)];
                    op(self.expr(&DataType::Int, d, objs), self.expr(&DataType::Int, d, objs))
                }
                2 => Expr::if_else(
                    self.expr(&DataType::Bool, d, objs),
                    self.expr(&DataType::Int, d, objs),
                    self.expr(&DataType::Int, d, objs),
                ),
                3 => self.expr(&DataType::Int, d, objs).abs(),
                4 => Expr::Unary(
                    tilt_core::ir::UnOp::ToInt,
                    Box::new(self.expr(&DataType::Float, d, objs)),
                ),
                _ => self.leaf(&DataType::Int, objs),
            },
            DataType::Bool => match self.pick(8) {
                0 => self.expr(&DataType::Float, d, objs).lt(self.expr(&DataType::Float, d, objs)),
                1 => self.expr(&DataType::Int, d, objs).ge(self.expr(&DataType::Int, d, objs)),
                // Mixed-class comparison (int vs float promotes).
                2 => self.expr(&DataType::Float, d, objs).gt(self.expr(&DataType::Int, d, objs)),
                // Equality across every class, including the quirky mixed
                // int/float case and Str (fallback boundary).
                3 => {
                    let eq_ty = [DataType::Float, DataType::Int, DataType::Bool, DataType::Str]
                        [self.pick(4)]
                    .clone();
                    let lhs = self.expr(&eq_ty, d, objs);
                    let rhs = self.expr(&eq_ty, d, objs);
                    if self.pick(2) == 0 {
                        lhs.eq(rhs)
                    } else {
                        lhs.ne(rhs)
                    }
                }
                4 => self.expr(&DataType::Bool, d, objs).and(self.expr(&DataType::Bool, d, objs)),
                5 => self.expr(&DataType::Bool, d, objs).or(self.expr(&DataType::Bool, d, objs)),
                6 => {
                    let any_ty =
                        [DataType::Float, DataType::Int, DataType::Str][self.pick(3)].clone();
                    self.expr(&any_ty, d, objs).is_null()
                }
                _ => Expr::Unary(
                    tilt_core::ir::UnOp::Not,
                    Box::new(self.expr(&DataType::Bool, d, objs)),
                ),
            },
            DataType::Str => {
                if self.pick(2) == 0 {
                    Expr::if_else(
                        self.expr(&DataType::Bool, d, objs),
                        self.leaf(&DataType::Str, objs),
                        self.leaf(&DataType::Str, objs),
                    )
                } else {
                    self.leaf(&DataType::Str, objs)
                }
            }
            _ => self.leaf(ty, objs),
        }
    }

    /// Appends 1..=4 temporal stages over `objs`, returning the output.
    fn stages(
        &mut self,
        b: &mut QueryBuilder,
        objs: &mut Vec<(TObjId, DataType)>,
        numeric_only: bool,
    ) -> TObjId {
        let n = 1 + self.pick(3);
        let mut last = objs[0].0;
        for si in 0..=n {
            let name = format!("s{si}");
            let (obj, ty) = match self.pick(5) {
                // Window reduction over a numeric upstream object.
                0 | 1 => {
                    let srcs: Vec<TObjId> = objs
                        .iter()
                        .filter(|(_, t)| matches!(t, DataType::Float | DataType::Int))
                        .map(|(o, _)| *o)
                        .collect();
                    let src = srcs[self.pick(srcs.len())];
                    let size = 1 + self.pick(10) as i64;
                    let prec = 1 + self.pick(3) as i64;
                    let op = match self.pick(7) {
                        0 => ReduceOp::Sum,
                        1 => ReduceOp::Count,
                        2 => ReduceOp::Mean,
                        3 => ReduceOp::Min,
                        4 => ReduceOp::Max,
                        5 => ReduceOp::StdDev,
                        _ => ReduceOp::Custom(last_value_reduce()),
                    };
                    let src_ty = objs
                        .iter()
                        .find(|(o, _)| *o == src)
                        .map(|(_, t)| t.clone())
                        .expect("source tracked");
                    let ty = op.result_type(&src_ty);
                    let body = Expr::reduce_window(op, src, size);
                    (b.temporal(&name, TDom::unbounded(prec), body), ty)
                }
                // Sampled (chop) stage: re-emits a numeric object.
                2 => {
                    let srcs: Vec<(TObjId, DataType)> = objs
                        .iter()
                        .filter(|(_, t)| matches!(t, DataType::Float | DataType::Int))
                        .cloned()
                        .collect();
                    let (src, ty) = srcs[self.pick(srcs.len())].clone();
                    let prec = 1 + self.pick(3) as i64;
                    (b.temporal_sampled(&name, TDom::unbounded(prec), Expr::at(src)), ty)
                }
                // Pointwise stage.
                _ => {
                    let ty = if numeric_only {
                        [DataType::Float, DataType::Int][self.pick(2)].clone()
                    } else {
                        [DataType::Float, DataType::Int, DataType::Bool][self.pick(3)].clone()
                    };
                    let depth = 1 + self.pick(3) as u32;
                    let body = self.expr(&ty, depth, objs);
                    (b.temporal(&name, TDom::every_tick(), body), ty)
                }
            };
            objs.push((obj, ty));
            last = obj;
        }
        last
    }
}

fn tuple_ty() -> DataType {
    DataType::Tuple(vec![DataType::Float, DataType::Int])
}

/// A non-invertible custom reduction ("last value"): exercises the
/// full-window recompute path and the typed tier's boxed reduce results.
fn last_value_reduce() -> Arc<CustomReduce> {
    Arc::new(CustomReduce {
        name: "last".into(),
        result_type: DataType::Float,
        init: Value::Null,
        acc: Arc::new(|_, v, _| v.to_float()),
        deacc: None,
        result: Arc::new(|s, _| s.clone()),
    })
}

/// Random sorted, disjoint event stream over roughly (0, 200].
fn stream(g: &mut Gen, mk: &mut dyn FnMut(&mut Gen) -> Value) -> Vec<Event<Value>> {
    let n = g.pick(40);
    let mut t = 0i64;
    let mut out = Vec::new();
    for _ in 0..n {
        let gap = 1 + g.pick(5) as i64; // φ-heavy: every stream has gaps
        let len = 1 + g.pick(4) as i64;
        let start = t + gap;
        let end = start + len;
        out.push(Event::new(Time::new(start), Time::new(end), mk(g)));
        t = end;
    }
    out
}

/// Builds the 4-input query plus matching random input buffers.
fn full_case(seed: u64) -> (Query, Vec<Vec<Event<Value>>>) {
    let mut g = Gen { rng: TestRng::new(seed) };
    let mut b = Query::builder();
    let f = b.input("f", DataType::Float);
    let i = b.input("i", DataType::Int);
    let s = b.input("s", DataType::Str);
    let tp = b.input("tp", tuple_ty());
    let mut objs =
        vec![(f, DataType::Float), (i, DataType::Int), (s, DataType::Str), (tp, tuple_ty())];
    let out = g.stages(&mut b, &mut objs, false);
    let q = b.finish(out).expect("generated query is well-formed");
    let events = vec![
        stream(&mut g, &mut |g| Value::Float(g.small_float())),
        stream(&mut g, &mut |g| Value::Int(g.small_int())),
        stream(&mut g, &mut |g| Value::str(g.a_str())),
        stream(&mut g, &mut |g| {
            Value::tuple([Value::Float(g.small_float()), Value::Int(g.small_int())])
        }),
    ];
    (q, events)
}

fn run_tiers(q: &Query, events: &[Vec<Event<Value>>], optimized: bool) {
    let base = if optimized { Compiler::new() } else { Compiler::unoptimized() };
    let batched = base.compile(q).expect("compiles (batched tier)");
    let per_tick = base.with_tier(ExecTier::Compiled).compile(q).expect("compiles (per-tick tier)");
    let interp = base.with_tier(ExecTier::Interpreted).compile(q).expect("compiles (interpreter)");
    assert_eq!(batched.tier(), ExecTier::Batched);
    assert_eq!(per_tick.tier(), ExecTier::Compiled);
    assert_eq!(per_tick.batched_kernels(), 0);
    assert_eq!(interp.tier(), ExecTier::Interpreted);
    assert_eq!(interp.compiled_kernels(), 0);

    let hi = events.iter().flat_map(|evs| evs.last()).map(|e| e.end).max().unwrap_or(Time::new(8));
    let range = TimeRange::new(Time::ZERO, (hi + 16).align_up(batched.grid()));
    let bufs: Vec<SnapshotBuf<Value>> =
        events.iter().map(|evs| SnapshotBuf::from_events(evs, range)).collect();
    let refs: Vec<&SnapshotBuf<Value>> = bufs.iter().collect();
    let a = batched.run(&refs, range);
    let b = per_tick.run(&refs, range);
    let c = interp.run(&refs, range);
    // Byte-identical: same span boundaries, same payload bits.
    assert_eq!(a, b, "batched vs per-tick diverged (optimized={optimized})");
    assert_eq!(b, c, "per-tick vs interpreted diverged (optimized={optimized})");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// One-shot differential: random well-typed DAGs over Float/Int/Str/
    /// Tuple inputs (φ-heavy streams, fallback boundaries, custom reduces)
    /// are byte-identical across all three tiers, fused and unfused.
    #[test]
    fn compiled_tier_matches_interpreter_oneshot(seed in any::<u64>()) {
        let (q, events) = full_case(seed);
        run_tiers(&q, &events, true);
        run_tiers(&q, &events, false);
    }
}

/// Builds a single-input numeric DAG (the shape the keyed service runs).
fn keyed_case(seed: u64) -> (Query, Vec<Vec<Event<Value>>>) {
    let mut g = Gen { rng: TestRng::new(seed) };
    let mut b = Query::builder();
    let f = b.input("x", DataType::Float);
    let mut objs = vec![(f, DataType::Float)];
    let out = g.stages(&mut b, &mut objs, true);
    let q = b.finish(out).expect("generated query is well-formed");
    let keys = 1 + g.pick(4);
    let streams =
        (0..keys).map(|_| stream(&mut g, &mut |g| Value::Float(g.small_float()))).collect();
    (q, streams)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Service differential: the same keyed workload through a sharded
    /// `StreamService` produces identical per-key output whether the query
    /// was compiled to the batched tier, the per-tick tier, or pinned to
    /// the interpreter — at 1, 2, and 4 shards.
    #[test]
    fn compiled_tier_matches_interpreter_through_service(
        seed in any::<u64>(),
        shard_pick in 0usize..3,
    ) {
        let shards = [1, 2, 4][shard_pick];
        let (q, streams) = keyed_case(seed);
        let tiers = [
            Arc::new(Compiler::new().compile(&q).expect("compiles")),
            Arc::new(Compiler::new().with_tier(ExecTier::Compiled).compile(&q).expect("compiles")),
            Arc::new(Compiler::interpreted().compile(&q).expect("compiles")),
        ];

        let mut arrivals: Vec<KeyedEvent> = streams
            .iter()
            .enumerate()
            .flat_map(|(k, evs)| {
                evs.iter().map(move |e| KeyedEvent::new(k as u64, 0, e.clone()))
            })
            .collect();
        arrivals.sort_by_key(|ke| (ke.event.end, ke.key));
        let hi = arrivals.iter().map(|ke| ke.event.end).max().unwrap_or(Time::new(4));
        let end = (hi + 32).align_up(tiers[0].grid());

        let config = RuntimeConfig {
            shards,
            allowed_lateness: 0,
            emit_interval: 4,
            ..RuntimeConfig::default()
        };
        let outs: Vec<_> = tiers
            .iter()
            .map(|cq| {
                let svc = Single::start(Arc::clone(cq), config);
                svc.ingest(arrivals.iter().cloned());
                svc.finish_at(end)
            })
            .collect();

        prop_assert_eq!(outs[0].stats.late_dropped, 0);
        for (pair, name) in
            [((0usize, 1usize), "batched vs per-tick"), ((1, 2), "per-tick vs interpreted")]
        {
            let (a, b) = (&outs[pair.0], &outs[pair.1]);
            prop_assert_eq!(a.per_key.len(), b.per_key.len());
            for (key, got) in &a.per_key {
                let want = &b.per_key[key];
                prop_assert_eq!(
                    got, want,
                    "key {} diverged ({}) at {} shards", key, name, shards
                );
            }
        }
    }
}

/// Deterministic word-edge coverage for the batched tier: a fused numeric
/// plan driven over dense runs of exactly 63/64/65/128/130 ticks (the
/// `NullMask` word size is 64, the batch cap 256), with φ gaps positioned
/// to straddle lane-word boundaries. All three tiers must agree
/// byte-for-byte, and the plan must actually take the batched path.
#[test]
fn batched_tier_word_boundary_runs() {
    for total_ticks in [63i64, 64, 65, 128, 130, 257] {
        for gap_at in [None, Some(62i64), Some(63), Some(64), Some(65), Some(127)] {
            let mut b = Query::builder();
            let x = b.input("x", DataType::Float);
            let sum =
                b.temporal("sum", TDom::unbounded(1), Expr::reduce_window(ReduceOp::Sum, x, 16));
            let out = b.temporal(
                "out",
                TDom::every_tick(),
                Expr::at(sum).mul(Expr::c(2.0)).add(Expr::at(x)),
            );
            let q = b.finish(out).expect("well-formed");

            // One long span, optionally interrupted by a φ gap whose edges
            // land on/next to a 64-lane word boundary.
            let mut events = Vec::new();
            match gap_at {
                None => {
                    events.push(Event::new(Time::ZERO, Time::new(total_ticks), Value::Float(1.5)))
                }
                Some(g) if g + 2 < total_ticks => {
                    events.push(Event::new(Time::ZERO, Time::new(g), Value::Float(1.5)));
                    events.push(Event::new(
                        Time::new(g + 2),
                        Time::new(total_ticks),
                        Value::Float(-0.25),
                    ));
                }
                Some(_) => continue,
            }

            let batched = Compiler::new().compile(&q).expect("compiles");
            assert_eq!(batched.batched_kernels(), batched.num_kernels());
            assert!(batched.fully_typed());
            let per_tick =
                Compiler::new().with_tier(ExecTier::Compiled).compile(&q).expect("compiles");
            let interp = Compiler::interpreted().compile(&q).expect("compiles");

            let range = TimeRange::new(Time::ZERO, Time::new(total_ticks));
            let bufs = [SnapshotBuf::from_events(&events, range)];
            let refs: Vec<&SnapshotBuf<Value>> = bufs.iter().collect();
            let a = batched.run(&refs, range);
            let bt = per_tick.run(&refs, range);
            let c = interp.run(&refs, range);
            assert_eq!(a, bt, "batched vs per-tick diverged (ticks={total_ticks}, gap={gap_at:?})");
            assert_eq!(
                bt, c,
                "per-tick vs interpreted diverged (ticks={total_ticks}, gap={gap_at:?})"
            );
        }
    }
}
