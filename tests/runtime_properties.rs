//! Property tests for `tilt-runtime`: randomly generated keyed workloads,
//! scrambled into bounded out-of-order arrival, must produce exactly the
//! output of an in-order `StreamSession` replay, key by key — independent
//! of shard count, interleaving, and aggregation.

use std::sync::Arc;

use proptest::prelude::*;
use tilt_core::ir::{DataType, Expr, Query, ReduceOp, TDom};
use tilt_core::{CompiledQuery, Compiler};
use tilt_data::{coalesce, streams_equivalent, Event, Time, Value};
use tilt_runtime::{KeyedEvent, RuntimeConfig};

mod common;
use common::Single;

/// Per-key random event stream: (gap, len, value) segments, as in the core
/// property tests.
fn stream_from_segments(segments: &[(i64, i64, i64)]) -> Vec<Event<Value>> {
    let mut t = 0i64;
    let mut out = Vec::new();
    for (gap, len, val) in segments {
        let start = t + gap;
        let end = start + len;
        out.push(Event::new(
            Time::new(start),
            Time::new(end),
            Value::Float((val / 4) as f64 * 0.25),
        ));
        t = end;
    }
    out
}

fn window_query(window: i64, agg: u8) -> Arc<CompiledQuery> {
    let op = match agg % 3 {
        0 => ReduceOp::Sum,
        1 => ReduceOp::Min,
        _ => ReduceOp::Max,
    };
    let mut b = Query::builder();
    let input = b.input("x", DataType::Float);
    let out = b.temporal("w", TDom::every_tick(), Expr::reduce_window(op, input, window));
    let q = b.finish(out).unwrap();
    Arc::new(Compiler::new().compile(&q).unwrap())
}

/// Interleaves per-key streams into one in-order arrival sequence, then
/// scrambles it by reversing consecutive blocks of `displacement` events —
/// every event stays within `displacement` positions of its slot.
fn arrival_sequence(streams: &[Vec<Event<Value>>], displacement: usize) -> Vec<KeyedEvent> {
    let mut all: Vec<KeyedEvent> = streams
        .iter()
        .enumerate()
        .flat_map(|(k, evs)| evs.iter().map(move |e| KeyedEvent::new(k as u64, 0, e.clone())))
        .collect();
    all.sort_by_key(|ke| (ke.event.end, ke.key));
    if displacement > 1 {
        for block in all.chunks_mut(displacement) {
            block.reverse();
        }
    }
    all
}

/// The smallest allowed-lateness (in ticks) that absorbs the disorder of
/// `arrivals`: how far the running max event start gets ahead of a later
/// arrival's start (watermarks are defined over starts).
fn lateness_needed(arrivals: &[KeyedEvent]) -> i64 {
    let mut max_start = Time::MIN;
    let mut worst = 0i64;
    for ke in arrivals {
        if max_start > ke.event.start {
            worst = worst.max(max_start - ke.event.start);
        }
        max_start = max_start.max(ke.event.start);
    }
    worst
}

fn replay(cq: &CompiledQuery, events: &[Event<Value>], end: Time) -> Vec<Event<Value>> {
    let mut session = cq.stream_session(Time::ZERO);
    session.push_events(0, events);
    session.flush_to(end).to_events()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The headline guarantee: bounded out-of-order keyed ingestion through
    /// any shard count reproduces the in-order per-key replay exactly
    /// (canonical/coalesced event-stream equality, which is value-identical
    /// per span — no float tolerance).
    #[test]
    fn shuffled_keyed_runtime_matches_inorder_replay(
        key_streams in prop::collection::vec(
            prop::collection::vec((1i64..5, 1i64..4, -50i64..50), 3..40),
            1..6,
        ),
        window in 1i64..16,
        agg in 0u8..3,
        displacement in 1usize..48,
        shards in 1usize..5,
    ) {
        let streams: Vec<Vec<Event<Value>>> =
            key_streams.iter().map(|segs| stream_from_segments(segs)).collect();
        let arrivals = arrival_sequence(&streams, displacement);
        let lateness = lateness_needed(&arrivals) + 2;
        let hi = arrivals.iter().map(|ke| ke.event.end).max().unwrap();
        let end = Time::new(hi.ticks() + window);

        let cq = window_query(window, agg);
        let runtime = Single::start(
            Arc::clone(&cq),
            RuntimeConfig {
                shards,
                allowed_lateness: lateness,
                emit_interval: 8,
                ..RuntimeConfig::default()
            },
        );
        runtime.ingest(arrivals.iter().cloned());
        let out = runtime.finish_at(end);

        prop_assert_eq!(out.stats.late_dropped, 0);
        prop_assert_eq!(out.stats.events_in as usize, arrivals.len());
        prop_assert_eq!(out.per_key.len(), streams.len());
        for (k, events) in streams.iter().enumerate() {
            let expected = replay(&cq, events, end);
            let got = &out.per_key[&(k as u64)];
            prop_assert!(
                streams_equivalent(&coalesce(&expected), &coalesce(got)),
                "key {} (window {}, agg {}, displacement {}, shards {}): {:?} vs {:?}",
                k, window, agg, displacement, shards, expected, got
            );
        }
    }

    /// Sending each key's stream fully in order (displacement 1) with zero
    /// allowed lateness is always loss-free, at any shard count.
    #[test]
    fn inorder_ingestion_never_drops(
        key_streams in prop::collection::vec(
            prop::collection::vec((1i64..5, 1i64..4, -50i64..50), 3..30),
            1..5,
        ),
        shards in 1usize..6,
    ) {
        let streams: Vec<Vec<Event<Value>>> =
            key_streams.iter().map(|segs| stream_from_segments(segs)).collect();
        let arrivals = arrival_sequence(&streams, 1);
        let hi = arrivals.iter().map(|ke| ke.event.end).max().unwrap();
        let cq = window_query(5, 0);
        let runtime = Single::start(
            Arc::clone(&cq),
            RuntimeConfig { shards, allowed_lateness: 0, ..RuntimeConfig::default() },
        );
        runtime.ingest(arrivals.iter().cloned());
        let out = runtime.finish_at(Time::new(hi.ticks() + 5));
        prop_assert_eq!(out.stats.late_dropped, 0);
        for (k, events) in streams.iter().enumerate() {
            let expected = replay(&cq, events, Time::new(hi.ticks() + 5));
            prop_assert!(
                streams_equivalent(&coalesce(&expected), &coalesce(&out.per_key[&(k as u64)])),
                "key {}", k
            );
        }
    }
}
