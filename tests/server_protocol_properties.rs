//! Property and integration tests for the network front door
//! (`tilt-server`): the wire codec must round-trip every message and
//! reject every malformed byte sequence without panicking, a hostile
//! client must never be able to take the service down, and — the
//! acceptance bar — output collected over loopback TCP must be
//! identical, per key, to an in-process run of the same service at 1,
//! 2, and 4 shards, in order and under bounded disorder.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use proptest::prelude::*;
use tilt_core::ir::{DataType, Expr, Query, ReduceOp, TDom};
use tilt_core::{CompiledQuery, Compiler};
use tilt_data::{coalesce, streams_equivalent, Event, Time, Value};
use tilt_runtime::{KeyedEvent, RuntimeConfig, StreamService};
use tilt_server::protocol::{
    decode, encode, encode_frame, read_message, Message, RecvError, TextKind, WireError, WireEvent,
    MAX_FRAME_LEN, PROTOCOL_VERSION,
};
use tilt_server::{Client, Server};

// ───────────────────────── random message tape ─────────────────────────

/// Deterministic pseudo-random words from a proptest-generated tape; a
/// pure "decoder of randomness" that lets the shim's simple strategies
/// drive arbitrarily structured messages.
struct Tape {
    words: Vec<u64>,
    pos: usize,
}

impl Tape {
    fn new(words: Vec<u64>) -> Tape {
        Tape { words, pos: 0 }
    }
    fn next(&mut self) -> u64 {
        let w = self.words.get(self.pos).copied().unwrap_or(7);
        self.pos += 1;
        w
    }
    fn small(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
    fn string(&mut self) -> String {
        const PIECES: [&str; 7] = ["", "a", "query", "αβγ", "naïve", "line\nbreak", "🦀"];
        let n = self.small(3);
        let mut s = String::new();
        for _ in 0..=n {
            s.push_str(PIECES[self.small(PIECES.len() as u64) as usize]);
        }
        s
    }
    /// Floats quantized to multiples of 0.25 (and a few specials) so
    /// `PartialEq` round-trip comparison is exact.
    fn float(&mut self) -> f64 {
        match self.small(4) {
            0 => 0.0,
            1 => -1.5,
            _ => (self.next() % 10_000) as f64 * 0.25 - 1_000.0,
        }
    }
    fn value(&mut self, depth: usize) -> Value {
        let variants = if depth == 0 { 6 } else { 5 };
        match self.small(variants) {
            0 => Value::Null,
            1 => Value::Bool(self.next().is_multiple_of(2)),
            2 => Value::Int(self.next() as i64),
            3 => Value::Float(self.float()),
            4 => Value::Str(Arc::from(self.string().as_str())),
            _ => {
                let n = self.small(4) as usize;
                Value::Tuple((0..n).map(|_| self.value(depth + 1)).collect())
            }
        }
    }
    fn event(&mut self) -> Event<Value> {
        let start = (self.next() % 2_000_000) as i64 - 1_000_000;
        let len = 1 + (self.next() % 500) as i64;
        Event::new(Time::new(start), Time::new(start + len), self.value(0))
    }
    fn opt_i64(&mut self) -> Option<i64> {
        if self.next().is_multiple_of(2) {
            None
        } else {
            Some(self.next() as i64)
        }
    }
    fn message(&mut self) -> Message {
        match self.small(27) {
            0 => Message::Hello { version: self.next() as u16 },
            1 => Message::Ingest {
                events: (0..self.small(6))
                    .map(|_| WireEvent {
                        key: self.next(),
                        source: self.small(4) as u32,
                        event: self.event(),
                    })
                    .collect(),
            },
            2 => Message::Watermark { source: self.small(8) as u32, time: self.next() as i64 },
            3 => Message::Attach {
                name: self.string(),
                lateness: self.opt_i64(),
                emit_interval: self.opt_i64(),
            },
            4 => Message::Detach { query: self.next() as u32 },
            5 => Message::Subscribe { query: self.next() as u32 },
            6 => Message::Stats,
            7 => Message::MetricsText,
            8 => Message::Journal,
            9 => Message::Catalog,
            10 => Message::Shutdown { end: self.opt_i64() },
            11 => Message::HelloAck { version: self.next() as u16, credit: self.next() as u32 },
            12 => Message::Credit { grant: self.next() as u32 },
            13 => Message::Busy { grant: self.next() as u32 },
            14 => Message::Attached { query: self.next() as u32, frontier: self.next() as i64 },
            15 => Message::Ok,
            16 => {
                // Round-trip every error code.
                let codes = [
                    tilt_server::protocol::ErrorCode::Version,
                    tilt_server::protocol::ErrorCode::UnknownQuery,
                    tilt_server::protocol::ErrorCode::UnknownName,
                    tilt_server::protocol::ErrorCode::Detached,
                    tilt_server::protocol::ErrorCode::Protocol,
                    tilt_server::protocol::ErrorCode::ShuttingDown,
                    tilt_server::protocol::ErrorCode::Conflict,
                    tilt_server::protocol::ErrorCode::Internal,
                    tilt_server::protocol::ErrorCode::ResumeGap,
                ];
                Message::Error {
                    code: codes[self.small(codes.len() as u64) as usize],
                    message: self.string(),
                }
            }
            17 => Message::Output {
                query: self.next() as u32,
                key: self.next(),
                events: (0..self.small(5)).map(|_| self.event()).collect(),
            },
            18 => Message::Eos { query: self.next() as u32 },
            19 => Message::StatsReply {
                fields: (0..self.small(6)).map(|_| (self.string(), self.next() as i64)).collect(),
            },
            20 => {
                let kinds = [TextKind::Metrics, TextKind::Journal, TextKind::Catalog];
                Message::Text {
                    kind: kinds[self.small(kinds.len() as u64) as usize],
                    text: self.string(),
                }
            }
            21 => Message::Checkpoint { path: self.string() },
            22 => Message::Restore {
                path: self.string(),
                queries: (0..self.small(4)).map(|_| self.string()).collect(),
            },
            23 => Message::Restored {
                queries: (0..self.small(4))
                    .map(|_| (self.next() as u32, self.next() as i64))
                    .collect(),
            },
            24 => Message::Resume { query: self.next() as u32, next_seq: self.next() },
            25 => Message::OutputSeq {
                query: self.next() as u32,
                seq: self.next(),
                key: self.next(),
                events: (0..self.small(5)).map(|_| self.event()).collect(),
            },
            _ => Message::Resumed { query: self.next() as u32, replayed: self.next() },
        }
    }
}

// ───────────────────────────── codec laws ──────────────────────────────

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Round-trip identity: every message survives encode → decode, both
    /// at the payload layer and through the framed transport.
    #[test]
    fn codec_roundtrips_arbitrary_messages(words in prop::collection::vec(any::<u64>(), 4..64)) {
        let msg = Tape::new(words).message();
        let payload = encode(&msg);
        prop_assert!(payload.len() as u64 <= MAX_FRAME_LEN as u64);
        prop_assert_eq!(decode(&payload).expect("payload decodes"), msg.clone());
        let frame = encode_frame(&msg);
        let mut cursor = std::io::Cursor::new(frame.clone());
        let (back, n) = read_message(&mut cursor).expect("frame decodes");
        prop_assert_eq!(back, msg);
        prop_assert_eq!(n, frame.len());
    }

    /// Every strict prefix of a valid payload is rejected (no prefix of
    /// a message is itself a message), and rejection never panics.
    #[test]
    fn truncated_frames_never_decode(words in prop::collection::vec(any::<u64>(), 4..64)) {
        let payload = encode(&Tape::new(words).message());
        for cut in 0..payload.len() {
            prop_assert!(decode(&payload[..cut]).is_err(), "prefix {}/{} decoded", cut, payload.len());
        }
    }

    /// Decoding arbitrary bytes is total: Ok or Err, never a panic, both
    /// for raw payloads and framed streams with hostile length headers.
    #[test]
    fn garbage_bytes_never_panic_the_decoder(
        words in prop::collection::vec(any::<u64>(), 0..40),
        header in any::<u64>(),
    ) {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let _ = decode(&bytes);
        // A stream starting with an arbitrary 4-byte header.
        let mut stream = (header as u32).to_le_bytes().to_vec();
        stream.extend_from_slice(&bytes);
        let mut cursor = std::io::Cursor::new(stream);
        match read_message(&mut cursor) {
            Ok(_) | Err(RecvError::Io(_)) | Err(RecvError::Decode(_)) => {}
            Err(RecvError::Closed) => prop_assert!(false, "non-empty stream reported Closed"),
        }
    }
}

// ─────────────────────── deterministic rejections ──────────────────────

#[test]
fn oversized_length_header_is_rejected_before_allocation() {
    let mut stream = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
    stream.extend_from_slice(&[0u8; 16]);
    let mut cursor = std::io::Cursor::new(stream);
    match read_message(&mut cursor) {
        Err(RecvError::Decode(WireError::Oversize(len))) => assert_eq!(len, MAX_FRAME_LEN + 1),
        other => panic!("expected Oversize, got {other:?}"),
    }
}

#[test]
fn unknown_tags_and_trailing_bytes_are_rejected() {
    assert!(matches!(decode(&[0x42]), Err(WireError::BadTag { .. })));
    let mut payload = encode(&Message::Stats);
    payload.push(0);
    assert!(matches!(decode(&payload), Err(WireError::TrailingBytes(1))));
    // Non-UTF-8 string bytes inside an Attach.
    let mut bad = vec![0x04];
    bad.extend_from_slice(&2u32.to_le_bytes());
    bad.extend_from_slice(&[0xFF, 0xFE]);
    bad.extend_from_slice(&[0, 0]); // both Options absent
    assert_eq!(decode(&bad), Err(WireError::BadUtf8));
}

// ───────────────────────── service under attack ────────────────────────

fn window_query(window: i64, agg: u8) -> Arc<CompiledQuery> {
    let op = match agg % 3 {
        0 => ReduceOp::Sum,
        1 => ReduceOp::Min,
        _ => ReduceOp::Max,
    };
    let mut b = Query::builder();
    let input = b.input("x", DataType::Float);
    let out = b.temporal("w", TDom::every_tick(), Expr::reduce_window(op, input, window));
    let q = b.finish(out).unwrap();
    Arc::new(Compiler::new().compile(&q).unwrap())
}

fn test_config(shards: usize, lateness: i64) -> RuntimeConfig {
    RuntimeConfig {
        shards,
        allowed_lateness: lateness,
        emit_interval: 4,
        start: Time::ZERO,
        ..RuntimeConfig::default()
    }
}

fn test_server(shards: usize, lateness: i64) -> Server {
    Server::start(test_config(shards, lateness), vec![("w".into(), window_query(8, 0))])
        .expect("server starts")
}

/// Drives a well-formed client through the full surface to prove the
/// service is still healthy; returns the decode-error counter.
fn assert_service_alive(server: &Server) -> i64 {
    let client = Client::connect(server.addr()).expect("healthy client connects");
    let q = client.attach("w", None, None).expect("attach");
    let sub = client.subscribe(q).expect("subscribe");
    client
        .ingest(vec![KeyedEvent::new(1, 0, Event::point(Time::new(4), Value::Float(1.0)))])
        .expect("ingest");
    client.watermark(0, Time::new(100)).expect("watermark");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.get("conservation_balance"), Some(0));
    client.shutdown(Some(Time::new(64))).expect("shutdown");
    let per_key = sub.collect_per_key();
    assert!(per_key.contains_key(&1), "subscriber got key 1's output");
    client.stats().expect("stats after shutdown").get("decode_errors").expect("counter present")
}

/// Raw-socket helper: handshake properly, then deliver `attack` bytes.
/// Returns whatever the server sent back after the HelloAck.
fn attack_after_handshake(addr: std::net::SocketAddr, attack: &[u8]) -> Vec<u8> {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(&encode_frame(&Message::Hello { version: PROTOCOL_VERSION })).expect("hello");
    let (ack, _) = read_message(&mut s).expect("hello ack");
    assert!(matches!(ack, Message::HelloAck { .. }), "expected HelloAck, got {ack:?}");
    s.write_all(attack).expect("attack bytes");
    // Half-close so a server blocked mid-frame sees EOF instead of
    // waiting for bytes that will never come.
    let _ = s.shutdown(std::net::Shutdown::Write);
    let mut tail = Vec::new();
    let _ = s.read_to_end(&mut tail); // server replies then closes
    tail
}

#[test]
fn hostile_frames_cannot_panic_the_service() {
    let server = test_server(2, 8);
    // 1. Oversized length header.
    let mut oversize = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
    oversize.extend_from_slice(&[0xAB; 64]);
    let reply = attack_after_handshake(server.addr(), &oversize);
    assert!(!reply.is_empty(), "server sent an Error before closing");
    // 2. Garbage mid-stream: an unknown tag, then junk.
    let mut garbage = 5u32.to_le_bytes().to_vec();
    garbage.extend_from_slice(&[0x42, 1, 2, 3, 4]);
    garbage.extend_from_slice(&[0xFF; 200]);
    attack_after_handshake(server.addr(), &garbage);
    // 3. A truncated frame: valid header, half a payload, then close.
    let frame = encode_frame(&Message::Stats);
    attack_after_handshake(server.addr(), &frame[..frame.len().saturating_sub(1).max(4)]);
    // 4. An Ingest whose event interval is empty (end == start).
    let mut bad_ingest = vec![0x02];
    bad_ingest.extend_from_slice(&1u32.to_le_bytes());
    bad_ingest.extend_from_slice(&7u64.to_le_bytes());
    bad_ingest.extend_from_slice(&0u32.to_le_bytes());
    bad_ingest.extend_from_slice(&5i64.to_le_bytes());
    bad_ingest.extend_from_slice(&5i64.to_le_bytes());
    bad_ingest.push(0);
    let mut framed = (bad_ingest.len() as u32).to_le_bytes().to_vec();
    framed.extend_from_slice(&bad_ingest);
    attack_after_handshake(server.addr(), &framed);
    // 5. A server-to-client tag sent by the client.
    attack_after_handshake(server.addr(), &encode_frame(&Message::Credit { grant: 1 }));
    // 6. A Restore claiming u32::MAX query names with a 1-byte body —
    // the hostile count must be refused before allocation.
    let mut hostile_restore = vec![0x0D];
    hostile_restore.extend_from_slice(&4u32.to_le_bytes());
    hostile_restore.extend_from_slice(b"snap");
    hostile_restore.extend_from_slice(&u32::MAX.to_le_bytes());
    hostile_restore.push(0);
    let mut framed_restore = (hostile_restore.len() as u32).to_le_bytes().to_vec();
    framed_restore.extend_from_slice(&hostile_restore);
    attack_after_handshake(server.addr(), &framed_restore);
    // 7. A Checkpoint whose path bytes are not UTF-8.
    let mut bad_ckpt = vec![0x0C];
    bad_ckpt.extend_from_slice(&2u32.to_le_bytes());
    bad_ckpt.extend_from_slice(&[0xFF, 0xFE]);
    let mut framed_ckpt = (bad_ckpt.len() as u32).to_le_bytes().to_vec();
    framed_ckpt.extend_from_slice(&bad_ckpt);
    attack_after_handshake(server.addr(), &framed_ckpt);
    // The service survived all of it, counted the malformed frames
    // (attacks 1, 2, 4, 6, and 7 are decode errors; the torn frame
    // surfaces as EOF and the smuggled Credit decodes but violates the
    // protocol), and still serves a well-formed client end to end.
    let decode_errors = assert_service_alive(&server);
    assert!(decode_errors >= 5, "decode errors counted, got {decode_errors}");
    server.stop();
}

/// Satellite of the fault-injection PR: a peer dying after exactly K
/// bytes of a frame — for *every* K — must never panic a handler, leak
/// a connection slot, or bend conservation.
#[test]
fn peer_death_at_every_frame_offset_leaks_nothing() {
    let server = test_server(2, 8);
    let frame = encode_frame(&Message::Ingest {
        events: vec![WireEvent {
            key: 1,
            source: 0,
            event: Event::point(Time::new(4), Value::Float(1.0)),
        }],
    });
    for cut in 0..=frame.len() {
        let mut s = TcpStream::connect(server.addr()).expect("connect");
        s.write_all(&encode_frame(&Message::Hello { version: PROTOCOL_VERSION })).expect("hello");
        let (ack, _) = read_message(&mut s).expect("hello ack");
        assert!(matches!(ack, Message::HelloAck { .. }), "expected HelloAck, got {ack:?}");
        s.write_all(&frame[..cut]).expect("partial frame");
        drop(s); // die mid-frame
    }
    // Every handler notices the death and releases its slot; the books
    // stay exact (the one complete frame at cut == len was applied).
    let client = Client::connect(server.addr()).expect("connect");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let stats = client.stats().expect("stats");
        if stats.get("conns_open") == Some(1) {
            assert_eq!(stats.get("conservation_balance"), Some(0), "conservation exact");
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "connection slots leaked: conns_open = {:?}",
            stats.get("conns_open")
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    drop(client);
    // End-to-end health probe, at a time beyond any frontier the one
    // complete frame (cut == len) may have advanced pre-attach.
    let client = Client::connect(server.addr()).expect("healthy client connects");
    let q = client.attach("w", None, None).expect("attach");
    let sub = client.subscribe(q).expect("subscribe");
    client
        .ingest(vec![KeyedEvent::new(9, 0, Event::point(Time::new(50), Value::Float(1.0)))])
        .expect("ingest");
    client.watermark(0, Time::new(100)).expect("watermark");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.get("conservation_balance"), Some(0));
    client.shutdown(Some(Time::new(128))).expect("shutdown");
    let per_key = sub.collect_per_key();
    assert!(per_key.contains_key(&9), "subscriber got key 9's output");
    server.stop();
}

/// Version-3-only tags on a negotiated-down connection earn a Version
/// error — reported, not fatal, exactly like durability tags on v1.
#[test]
fn resume_on_old_versions_is_refused_with_version_error() {
    let server = test_server(1, 8);
    for v in [1u16, 2] {
        let mut s = TcpStream::connect(server.addr()).expect("connect");
        s.write_all(&encode_frame(&Message::Hello { version: v })).unwrap();
        match read_message(&mut s) {
            Ok((Message::HelloAck { version, .. }, _)) => assert_eq!(version, v),
            other => panic!("expected HelloAck, got {other:?}"),
        }
        s.write_all(&encode_frame(&Message::Resume { query: 0, next_seq: 0 })).unwrap();
        match read_message(&mut s) {
            Ok((Message::Error { code, .. }, _)) => {
                assert_eq!(code, tilt_server::protocol::ErrorCode::Version)
            }
            other => panic!("expected Version error, got {other:?}"),
        }
        // The same connection still answers the legacy surface.
        s.write_all(&encode_frame(&Message::Stats)).unwrap();
        match read_message(&mut s) {
            Ok((Message::StatsReply { .. }, _)) => {}
            other => panic!("expected StatsReply, got {other:?}"),
        }
    }
    assert_service_alive(&server);
    server.stop();
}

/// The decode-error budget: recoverable malformed frames are answered
/// and tolerated up to the budget, then the connection is dropped.
#[test]
fn decode_error_budget_tolerates_then_disconnects() {
    let server = test_server(1, 8);
    let mut s = TcpStream::connect(server.addr()).expect("connect");
    s.write_all(&encode_frame(&Message::Hello { version: PROTOCOL_VERSION })).unwrap();
    let (ack, _) = read_message(&mut s).expect("hello ack");
    assert!(matches!(ack, Message::HelloAck { .. }));
    // An unknown tag in a fully read frame: recoverable.
    let mut bad = 1u32.to_le_bytes().to_vec();
    bad.push(0x42);
    for _ in 0..3 {
        s.write_all(&bad).unwrap();
        match read_message(&mut s) {
            Ok((Message::Error { code, .. }, _)) => {
                assert_eq!(code, tilt_server::protocol::ErrorCode::Protocol)
            }
            other => panic!("expected Protocol error, got {other:?}"),
        }
    }
    // Within budget: the connection still serves requests.
    s.write_all(&encode_frame(&Message::Stats)).unwrap();
    match read_message(&mut s) {
        Ok((Message::StatsReply { .. }, _)) => {}
        other => panic!("expected StatsReply, got {other:?}"),
    }
    // One past the budget: final Error, then the server closes.
    s.write_all(&bad).unwrap();
    match read_message(&mut s) {
        Ok((Message::Error { code, .. }, _)) => {
            assert_eq!(code, tilt_server::protocol::ErrorCode::Protocol)
        }
        other => panic!("expected Protocol error, got {other:?}"),
    }
    let mut rest = Vec::new();
    let _ = s.read_to_end(&mut rest);
    assert!(rest.is_empty(), "connection closed after budget exhaustion");
    assert_service_alive(&server);
    server.stop();
}

#[test]
fn wrong_version_and_missing_hello_are_refused() {
    let server = test_server(1, 8);
    // Wrong version.
    let mut s = TcpStream::connect(server.addr()).expect("connect");
    s.write_all(&encode_frame(&Message::Hello { version: PROTOCOL_VERSION + 9 })).unwrap();
    match read_message(&mut s) {
        Ok((Message::Error { code, .. }, _)) => {
            assert_eq!(code, tilt_server::protocol::ErrorCode::Version)
        }
        other => panic!("expected version Error, got {other:?}"),
    }
    let mut rest = Vec::new();
    let _ = s.read_to_end(&mut rest);
    assert!(rest.is_empty(), "connection closed after version refusal");
    // First frame is not Hello.
    let mut s = TcpStream::connect(server.addr()).expect("connect");
    s.write_all(&encode_frame(&Message::Stats)).unwrap();
    match read_message(&mut s) {
        Ok((Message::Error { code, .. }, _)) => {
            assert_eq!(code, tilt_server::protocol::ErrorCode::Protocol)
        }
        other => panic!("expected protocol Error, got {other:?}"),
    }
    assert_service_alive(&server);
    server.stop();
}

#[test]
fn control_plane_errors_are_reported_not_fatal() {
    let server = test_server(1, 8);
    let client = Client::connect(server.addr()).expect("connect");
    // Unknown catalog name.
    match client.attach("no-such-query", None, None) {
        Err(tilt_server::ClientError::Server { code, .. }) => {
            assert_eq!(code, tilt_server::protocol::ErrorCode::UnknownName)
        }
        other => panic!("expected UnknownName, got {other:?}"),
    }
    // The same connection keeps working afterwards.
    let q = client.attach("w", None, None).expect("attach");
    client.detach(q).expect("detach");
    match client.detach(q) {
        Err(tilt_server::ClientError::Server { code, .. }) => {
            assert_eq!(code, tilt_server::protocol::ErrorCode::Detached)
        }
        other => panic!("expected Detached, got {other:?}"),
    }
    assert!(client.catalog_text().expect("catalog").contains("w"));
    client.shutdown(None).expect("shutdown");
    server.stop();
}

// ───────────────────── durability over the wire ────────────────────────

/// A version-1 client still negotiates and speaks the whole legacy
/// surface, but durability tags earn a Version error (not a close, not
/// a panic) on its connection.
#[test]
fn version_1_connections_work_but_cannot_use_durability() {
    let server = test_server(1, 8);
    let mut s = TcpStream::connect(server.addr()).expect("connect");
    s.write_all(&encode_frame(&Message::Hello { version: 1 })).unwrap();
    match read_message(&mut s) {
        Ok((Message::HelloAck { version, .. }, _)) => {
            assert_eq!(version, 1, "server negotiates down to the client's version")
        }
        other => panic!("expected HelloAck, got {other:?}"),
    }
    // Durability on a v1 connection: refused with Version, kept open.
    s.write_all(&encode_frame(&Message::Checkpoint { path: "/tmp/x".into() })).unwrap();
    match read_message(&mut s) {
        Ok((Message::Error { code, .. }, _)) => {
            assert_eq!(code, tilt_server::protocol::ErrorCode::Version)
        }
        other => panic!("expected Version error, got {other:?}"),
    }
    s.write_all(&encode_frame(&Message::Restore { path: "/tmp/x".into(), queries: vec![] }))
        .unwrap();
    match read_message(&mut s) {
        Ok((Message::Error { code, .. }, _)) => {
            assert_eq!(code, tilt_server::protocol::ErrorCode::Version)
        }
        other => panic!("expected Version error, got {other:?}"),
    }
    // The same connection still answers the legacy surface.
    s.write_all(&encode_frame(&Message::Stats)).unwrap();
    match read_message(&mut s) {
        Ok((Message::StatsReply { .. }, _)) => {}
        other => panic!("expected StatsReply, got {other:?}"),
    }
    drop(s);
    assert_service_alive(&server);
    server.stop();
}

fn snapshot_path(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("tilt-wire-{tag}-{}.tiltsnp", std::process::id()));
    p
}

/// Durability control-plane errors are reported, never fatal: restores
/// of missing snapshots, unknown roster names, and checkpoints into
/// unwritable paths all leave the service healthy.
#[test]
fn durability_errors_are_reported_not_fatal() {
    let server = test_server(1, 8);
    let client = Client::connect(server.addr()).expect("connect");
    // Restore from a snapshot that does not exist.
    match client.restore("/nonexistent/dir/snap.tiltsnp", &[]) {
        Err(tilt_server::ClientError::Server { code, .. }) => {
            assert_eq!(code, tilt_server::protocol::ErrorCode::Internal)
        }
        other => panic!("expected Internal, got {other:?}"),
    }
    // Restore naming a query the catalog does not have.
    match client.restore("/tmp/snap.tiltsnp", &["no-such-query"]) {
        Err(tilt_server::ClientError::Server { code, .. }) => {
            assert_eq!(code, tilt_server::protocol::ErrorCode::UnknownName)
        }
        other => panic!("expected UnknownName, got {other:?}"),
    }
    // Checkpoint into a directory that does not exist.
    match client.checkpoint("/nonexistent/dir/snap.tiltsnp") {
        Err(tilt_server::ClientError::Server { code, .. }) => {
            assert_eq!(code, tilt_server::protocol::ErrorCode::Internal)
        }
        other => panic!("expected Internal, got {other:?}"),
    }
    // A busy service (attached query + ingested events) refuses restore.
    let q = client.attach("w", None, None).expect("attach");
    client
        .ingest(vec![KeyedEvent::new(1, 0, Event::point(Time::new(3), Value::Float(1.0)))])
        .expect("ingest");
    let path = snapshot_path("busy");
    client.checkpoint(path.to_str().unwrap()).expect("checkpoint of a busy service is fine");
    match client.restore(path.to_str().unwrap(), &["w"]) {
        Err(tilt_server::ClientError::Server { code, .. }) => {
            assert_eq!(code, tilt_server::protocol::ErrorCode::Conflict)
        }
        other => panic!("expected Conflict, got {other:?}"),
    }
    // Everything above left the service healthy.
    client.detach(q).expect("detach");
    client.shutdown(None).expect("shutdown");
    server.stop();
    let _ = std::fs::remove_file(&path);
}

/// The wire acceptance bar for durability: ingest a prefix into server
/// A, checkpoint over the wire, kill A, restore into a fresh server B,
/// ingest the suffix — the concatenated remote output equals one
/// uninterrupted in-process run, per key.
#[test]
fn wire_checkpoint_restore_is_invisible_in_the_output() {
    let cq = window_query(8, 0);
    let streams = [
        stream_from_segments(&[(1, 2, 8), (0, 3, -12), (2, 2, 20), (1, 4, 16), (0, 2, -8)]),
        stream_from_segments(&[(0, 4, 40), (3, 1, -4), (1, 3, 28), (2, 2, -16), (1, 1, 12)]),
        stream_from_segments(&[(2, 3, -20), (1, 2, 24), (0, 1, 36), (3, 3, -28), (0, 2, 44)]),
    ];
    let arrivals = arrival_sequence(&streams, 3);
    let lateness = lateness_needed(&arrivals).max(1);
    let end = Time::new(arrivals.iter().map(|ke| ke.event.end.ticks()).max().unwrap_or(0) + 8);
    let split = arrivals.len() / 2;
    let path = snapshot_path("invisible");
    for shards in [1usize, 2] {
        let cfg = test_config(shards, lateness);
        let local = in_process_reference(&cq, &arrivals, cfg, end);
        // Server A: prefix, then checkpoint, then die without draining.
        let server_a = Server::start(cfg, vec![("w".into(), Arc::clone(&cq))]).expect("server a");
        let client_a = Client::connect(server_a.addr()).expect("client a");
        let qa = client_a.attach("w", None, None).expect("attach");
        let sub_a = client_a.subscribe(qa).expect("subscribe a");
        client_a.ingest(arrivals[..split].iter().cloned()).expect("prefix");
        client_a.checkpoint(path.to_str().unwrap()).expect("checkpoint");
        // stop() severs connections before draining, so sub_a holds
        // exactly the output emitted up to the checkpoint.
        server_a.stop();
        drop(client_a);
        let mut wire = sub_a.collect_per_key();
        // Server B: restore, suffix, drain.
        let server_b = Server::start(cfg, vec![("w".into(), Arc::clone(&cq))]).expect("server b");
        let client_b = Client::connect(server_b.addr()).expect("client b");
        let restored = client_b.restore(path.to_str().unwrap(), &["w"]).expect("restore");
        assert_eq!(restored.len(), 1, "one live query restored");
        assert_eq!(restored[0].id(), qa.id(), "roster slot survives the restart");
        let sub_b = client_b.subscribe(restored[0]).expect("subscribe b");
        client_b.ingest(arrivals[split..].iter().cloned()).expect("suffix");
        let stats = client_b.stats().expect("stats");
        assert_eq!(
            stats.get("events_in"),
            Some(arrivals.len() as i64),
            "events_in resumes from the snapshot instead of restarting"
        );
        client_b.shutdown(Some(end)).expect("shutdown");
        let after = client_b.stats().expect("stats after shutdown");
        assert_eq!(after.get("conservation_balance"), Some(0), "conservation holds across restore");
        for (key, events) in sub_b.collect_per_key() {
            wire.entry(key).or_default().extend(events);
        }
        server_b.stop();
        assert_identical(&wire, &local, &format!("wire checkpoint/restore shards={shards}"));
        let _ = std::fs::remove_file(&path);
    }
}

// ───────────────────── wire ↔ in-process identity ──────────────────────

/// Per-key random event stream: (gap, len, value) segments, values
/// quantized so float aggregation is exact.
fn stream_from_segments(segments: &[(i64, i64, i64)]) -> Vec<Event<Value>> {
    let mut t = 0;
    let mut out = Vec::new();
    for (gap, len, val) in segments {
        let start = t + gap;
        let end = start + len;
        out.push(Event::new(
            Time::new(start),
            Time::new(end),
            Value::Float((val / 4) as f64 * 0.25),
        ));
        t = end;
    }
    out
}

/// Interleaves per-key streams into one arrival sequence, then scrambles
/// it by reversing consecutive blocks of `displacement` events.
fn arrival_sequence(streams: &[Vec<Event<Value>>], displacement: usize) -> Vec<KeyedEvent> {
    let mut all: Vec<KeyedEvent> = streams
        .iter()
        .enumerate()
        .flat_map(|(k, evs)| evs.iter().map(move |e| KeyedEvent::new(k as u64, 0, e.clone())))
        .collect();
    all.sort_by_key(|ke| (ke.event.end, ke.key));
    if displacement > 1 {
        for block in all.chunks_mut(displacement) {
            block.reverse();
        }
    }
    all
}

/// The smallest allowed lateness absorbing the disorder of `arrivals`.
fn lateness_needed(arrivals: &[KeyedEvent]) -> i64 {
    let mut max_start = Time::MIN;
    let mut worst = 0i64;
    for ke in arrivals {
        if max_start > ke.event.start {
            worst = worst.max(max_start - ke.event.start);
        }
        max_start = max_start.max(ke.event.start);
    }
    worst
}

/// The in-process reference: one registered query, same config, drained
/// through the same horizon.
fn in_process_reference(
    cq: &Arc<CompiledQuery>,
    arrivals: &[KeyedEvent],
    cfg: RuntimeConfig,
    end: Time,
) -> HashMap<u64, Vec<Event<Value>>> {
    let mut builder = StreamService::builder(cfg);
    let q = builder.register(Arc::clone(cq));
    let service = builder.start().expect("single registration");
    service.ingest(arrivals.iter().cloned());
    service.finish_at(end).per_query.swap_remove(q.index())
}

/// The remote run: attach by name, subscribe, ingest over TCP, shut the
/// service down through the same horizon, and collect the subscription.
fn remote_run(
    server: &Server,
    arrivals: &[KeyedEvent],
    end: Time,
) -> HashMap<u64, Vec<Event<Value>>> {
    let client = Client::connect(server.addr()).expect("client connects");
    let q = client.attach("w", None, None).expect("attach");
    assert_eq!(q.frontier(), Time::ZERO, "attach-first frontier is config.start");
    let sub = client.subscribe(q).expect("subscribe");
    client.ingest(arrivals.iter().cloned()).expect("ingest");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.get("events_in"), Some(arrivals.len() as i64), "every event arrived");
    client.shutdown(Some(end)).expect("shutdown");
    let after = client.stats().expect("stats after shutdown");
    assert_eq!(after.get("conservation_balance"), Some(0), "conservation holds over the wire");
    assert_eq!(after.get("decode_errors"), Some(0), "well-formed traffic decodes cleanly");
    sub.collect_per_key()
}

fn assert_identical(
    wire: &HashMap<u64, Vec<Event<Value>>>,
    local: &HashMap<u64, Vec<Event<Value>>>,
    ctx: &str,
) {
    let mut keys: Vec<u64> = wire.keys().chain(local.keys()).copied().collect();
    keys.sort_unstable();
    keys.dedup();
    for key in keys {
        let w = wire.get(&key).cloned().unwrap_or_default();
        let l = local.get(&key).cloned().unwrap_or_default();
        assert!(
            streams_equivalent(&coalesce(&w), &coalesce(&l)),
            "{ctx}: key {key} diverged\n wire: {w:?}\n local: {l:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The acceptance property: remote output over loopback TCP is
    /// identical (per key) to the in-process run at 1, 2, and 4 shards,
    /// in order and under bounded disorder.
    #[test]
    fn remote_output_matches_in_process(
        segs_a in prop::collection::vec((0i64..6, 1i64..8, -64i64..64), 1..12),
        segs_b in prop::collection::vec((0i64..6, 1i64..8, -64i64..64), 1..12),
        segs_c in prop::collection::vec((0i64..6, 1i64..8, -64i64..64), 1..12),
        window in 2i64..16,
        agg in 0u8..3,
        displacement in 1usize..5,
    ) {
        let streams = [
            stream_from_segments(&segs_a),
            stream_from_segments(&segs_b),
            stream_from_segments(&segs_c),
        ];
        let arrivals = arrival_sequence(&streams, displacement);
        let lateness = lateness_needed(&arrivals).max(1);
        let end = Time::new(
            arrivals.iter().map(|ke| ke.event.end.ticks()).max().unwrap_or(0) + window,
        );
        let cq = window_query(window, agg);
        for shards in [1usize, 2, 4] {
            let cfg = test_config(shards, lateness);
            let local = in_process_reference(&cq, &arrivals, cfg, end);
            let server = Server::start(cfg, vec![("w".into(), Arc::clone(&cq))])
                .expect("server starts");
            let wire = remote_run(&server, &arrivals, end);
            server.stop();
            assert_identical(&wire, &local, &format!("shards={shards} disp={displacement}"));
        }
    }
}

// ───────────────────────── fan-out and teardown ────────────────────────

#[test]
fn two_subscribers_receive_identical_streams() {
    let server = test_server(2, 8);
    let producer = Client::connect(server.addr()).expect("producer connects");
    let q = producer.attach("w", None, None).expect("attach");
    let consumer_a = Client::connect(server.addr()).expect("consumer a connects");
    let consumer_b = Client::connect(server.addr()).expect("consumer b connects");
    let sub_a = consumer_a.subscribe(q).expect("subscribe a");
    let sub_b = consumer_b.subscribe(q).expect("subscribe b");
    let arrivals: Vec<KeyedEvent> = (0..200)
        .map(|i| {
            KeyedEvent::new(i % 5, 0, Event::point(Time::new(i as i64 + 1), Value::Float(1.0)))
        })
        .collect();
    producer.ingest(arrivals).expect("ingest");
    producer.shutdown(Some(Time::new(256))).expect("shutdown");
    let a = sub_a.collect_per_key();
    let b = sub_b.collect_per_key();
    assert!(!a.is_empty(), "subscribers saw output");
    assert_identical(&a, &b, "fan-out");
    // The journal recorded the network control plane.
    let journal = producer.journal_text().expect("journal");
    assert!(journal.contains("connect"), "journal records connects: {journal}");
    assert!(journal.contains("subscribe"), "journal records subscribes: {journal}");
    server.stop();
}

#[test]
fn detach_ends_subscriptions_with_eos() {
    let server = test_server(1, 4);
    let client = Client::connect(server.addr()).expect("connect");
    let q = client.attach("w", None, None).expect("attach");
    let sub = client.subscribe(q).expect("subscribe");
    client
        .ingest(vec![KeyedEvent::new(3, 0, Event::point(Time::new(2), Value::Float(2.0)))])
        .expect("ingest");
    client.detach(q).expect("detach");
    // The subscription terminates (Eos) rather than hanging.
    let _ = sub.collect_per_key();
    client.shutdown(None).expect("shutdown");
    server.stop();
}
