//! Hardening properties for `tilt-runtime`: idle-session eviction must be
//! observationally invisible (differential against a never-evicting
//! runtime *and* an in-order replay, at 1/2/4 shards, in-order and under
//! bounded disorder), and a key whose kernel panics must be quarantined
//! without disturbing any other key.

use std::sync::Arc;

use proptest::prelude::*;
use tilt_core::ir::{DataType, Expr, Query, ReduceOp, TDom};
use tilt_core::{CompiledQuery, Compiler};
use tilt_data::{coalesce, streams_equivalent, Event, Time, Value};
use tilt_runtime::{KeyedEvent, RuntimeConfig, StreamService};

mod common;
use common::Single;
use tilt_workloads::gen::{poisonable_sum, silence_poison_panics};

fn window_query(window: i64, agg: u8) -> Arc<CompiledQuery> {
    let op = match agg % 3 {
        0 => ReduceOp::Sum,
        1 => ReduceOp::Min,
        _ => ReduceOp::Max,
    };
    let mut b = Query::builder();
    let input = b.input("x", DataType::Float);
    let out = b.temporal("w", TDom::every_tick(), Expr::reduce_window(op, input, window));
    let q = b.finish(out).unwrap();
    Arc::new(Compiler::new().compile(&q).unwrap())
}

fn replay(cq: &CompiledQuery, events: &[Event<Value>], end: Time) -> Vec<Event<Value>> {
    let mut session = cq.stream_session(Time::ZERO);
    session.push_events(0, events);
    session.flush_to(end).to_events()
}

/// Per-key random event stream: (gap, len, value) segments. Gaps range far
/// past any TTL, so keys routinely idle out and revive.
fn stream_from_segments(segments: &[(i64, i64, i64)]) -> Vec<Event<Value>> {
    let mut t = 0i64;
    let mut out = Vec::new();
    for (gap, len, val) in segments {
        let start = t + gap;
        let end = start + len;
        out.push(Event::new(
            Time::new(start),
            Time::new(end),
            Value::Float((val / 4) as f64 * 0.25),
        ));
        t = end;
    }
    out
}

/// Interleaves per-key streams into one in-order arrival sequence, then
/// scrambles it by reversing consecutive blocks of `displacement` events.
fn arrival_sequence(streams: &[Vec<Event<Value>>], displacement: usize) -> Vec<KeyedEvent> {
    let mut all: Vec<KeyedEvent> = streams
        .iter()
        .enumerate()
        .flat_map(|(k, evs)| evs.iter().map(move |e| KeyedEvent::new(k as u64, 0, e.clone())))
        .collect();
    all.sort_by_key(|ke| (ke.event.end, ke.key));
    if displacement > 1 {
        for block in all.chunks_mut(displacement) {
            block.reverse();
        }
    }
    all
}

/// The smallest allowed-lateness (in ticks) that absorbs the disorder of
/// `arrivals` — and, for the eviction differential, also guarantees no
/// revival event can land behind an eviction frontier (frontiers sit at or
/// below the watermark, which trails every arrival's start by at least the
/// lateness margin).
fn lateness_needed(arrivals: &[KeyedEvent]) -> i64 {
    let mut max_start = Time::MIN;
    let mut worst = 0i64;
    for ke in arrivals {
        if max_start > ke.event.start {
            worst = worst.max(max_start - ke.event.start);
        }
        max_start = max_start.max(ke.event.start);
    }
    worst
}

/// Shuffles `events` by reversing consecutive blocks (bounded disorder).
fn block_shuffle(events: &mut [KeyedEvent], displacement: usize) {
    if displacement > 1 {
        for block in events.chunks_mut(displacement) {
            block.reverse();
        }
    }
}

// ── Eviction: deterministic differential at 1/2/4 shards ───────────────

/// Keys go idle, an explicit watermark promise pushes every shard far past
/// their lateness horizon (evicting them all), then every key revives.
/// The evicting runtime's output must equal the never-evicting runtime's
/// and the in-order replay — at every shard count, in-order and shuffled.
#[test]
fn eviction_and_revival_match_never_evicting_runtime() {
    let keys = 11u64;
    let promise = Time::new(400);
    for shards in [1usize, 2, 4] {
        for displacement in [1usize, 8] {
            let cq = window_query(5, 0);
            let mut phase1: Vec<KeyedEvent> = (1..=30i64)
                .flat_map(|t| {
                    (0..keys).map(move |k| {
                        KeyedEvent::new(
                            k,
                            0,
                            Event::point(Time::new(t), Value::Float(k as f64 + t as f64)),
                        )
                    })
                })
                .collect();
            let mut phase3: Vec<KeyedEvent> = (401..=430i64)
                .flat_map(|t| {
                    (0..keys).map(move |k| {
                        KeyedEvent::new(
                            k,
                            0,
                            Event::point(Time::new(t), Value::Float(k as f64 - t as f64)),
                        )
                    })
                })
                .collect();
            block_shuffle(&mut phase1, displacement);
            block_shuffle(&mut phase3, displacement);
            let lateness = lateness_needed(&phase1).max(lateness_needed(&phase3)) + 2;
            let end = Time::new(440);
            let config = |ttl| RuntimeConfig {
                shards,
                allowed_lateness: lateness,
                emit_interval: 8,
                key_ttl: ttl,
                ..RuntimeConfig::default()
            };

            let evicting = Single::start(Arc::clone(&cq), config(Some(32)));
            evicting.ingest(phase1.iter().cloned());
            // The promise advances every shard's watermark — including
            // shards whose keys all went quiet — so the idle sweep retires
            // every session.
            evicting.watermark(0, promise);
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
            while evicting.stats().evictions < keys && std::time::Instant::now() < deadline {
                std::thread::yield_now();
            }
            assert_eq!(evicting.stats().evictions, keys, "every idle key is evicted");
            assert_eq!(evicting.stats().live_keys, 0);
            evicting.ingest(phase3.iter().cloned());
            let out = evicting.finish_at(end);
            assert_eq!(out.stats.late_dropped, 0, "no revival may land behind a frontier");
            assert_eq!(out.stats.revivals, keys, "every key revives");

            let plain = Single::start(Arc::clone(&cq), config(None));
            plain.ingest(phase1.iter().cloned());
            plain.watermark(0, promise);
            plain.ingest(phase3.iter().cloned());
            let base = plain.finish_at(end);
            assert_eq!(base.stats.evictions, 0);

            for k in 0..keys {
                assert!(
                    streams_equivalent(&coalesce(&base.per_key[&k]), &coalesce(&out.per_key[&k])),
                    "shards={shards} displacement={displacement} key {k}: \
                     evicting runtime diverged from never-evicting"
                );
                let events: Vec<Event<Value>> = (1..=30i64)
                    .map(|t| Event::point(Time::new(t), Value::Float(k as f64 + t as f64)))
                    .chain(
                        (401..=430i64)
                            .map(|t| Event::point(Time::new(t), Value::Float(k as f64 - t as f64))),
                    )
                    .collect();
                let expected = replay(&cq, &events, end);
                assert!(
                    streams_equivalent(&coalesce(&expected), &coalesce(&out.per_key[&k])),
                    "shards={shards} displacement={displacement} key {k}: \
                     evicting runtime diverged from replay"
                );
            }
        }
    }
}

/// An arrival behind an evicted key's frontier is dropped-and-counted (the
/// session that could have absorbed it is gone); the key only revives for
/// arrivals at or after the frontier.
#[test]
fn stragglers_behind_the_eviction_frontier_are_dropped() {
    let cq = window_query(4, 0);
    let runtime = Single::start(
        Arc::clone(&cq),
        RuntimeConfig {
            shards: 1,
            emit_interval: 8,
            key_ttl: Some(32),
            ..RuntimeConfig::default()
        },
    );
    runtime.ingest(
        (1..=10i64).map(|t| KeyedEvent::new(5, 0, Event::point(Time::new(t), Value::Float(1.0)))),
    );
    runtime.watermark(0, Time::new(400));
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while runtime.stats().evictions == 0 && std::time::Instant::now() < deadline {
        std::thread::yield_now();
    }
    assert_eq!(runtime.stats().evictions, 1);

    // Behind the frontier: dropped, no revival.
    runtime.send(KeyedEvent::new(5, 0, Event::point(Time::new(100), Value::Float(9.0))));
    let wait_late = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while runtime.stats().late_dropped == 0 && std::time::Instant::now() < wait_late {
        std::thread::yield_now();
    }
    let mid = runtime.stats();
    assert_eq!(mid.late_dropped, 1);
    assert_eq!(mid.revivals, 0);

    // At the frontier or later: revived.
    runtime.send(KeyedEvent::new(5, 0, Event::point(Time::new(401), Value::Float(2.0))));
    let out = runtime.finish_at(Time::new(410));
    assert_eq!(out.stats.revivals, 1);
    // Output equals a replay that never saw the dropped straggler.
    let clean: Vec<Event<Value>> = (1..=10i64)
        .map(|t| Event::point(Time::new(t), Value::Float(1.0)))
        .chain(std::iter::once(Event::point(Time::new(401), Value::Float(2.0))))
        .collect();
    let expected = replay(&cq, &clean, Time::new(410));
    assert!(streams_equivalent(&coalesce(&expected), &coalesce(&out.per_key[&5])));
}

/// The multi-query engine evicts and revives group sessions identically:
/// an evicting shared service matches standalone never-evicting services
/// for every registered query.
#[test]
fn shared_service_eviction_matches_standalone_services() {
    let fast = window_query(3, 0);
    let slow = window_query(9, 2);
    let keys = 5u64;
    let promise = Time::new(300);
    let end = Time::new(340);
    let phase1: Vec<KeyedEvent> = (1..=25i64)
        .flat_map(|t| {
            (0..keys).map(move |k| {
                KeyedEvent::new(k, 0, Event::point(Time::new(t), Value::Float(k as f64 + t as f64)))
            })
        })
        .collect();
    let phase3: Vec<KeyedEvent> = (301..=320i64)
        .flat_map(|t| {
            (0..keys).map(move |k| {
                KeyedEvent::new(k, 0, Event::point(Time::new(t), Value::Float(t as f64)))
            })
        })
        .collect();

    let mut builder = StreamService::builder(RuntimeConfig {
        shards: 2,
        emit_interval: 8,
        key_ttl: Some(48),
        ..RuntimeConfig::default()
    });
    let q_fast = builder.register(Arc::clone(&fast));
    let q_slow = builder.register(Arc::clone(&slow));
    let multi = builder.start().unwrap();
    multi.ingest(phase1.iter().cloned());
    multi.watermark(0, promise);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while multi.stats().evictions < keys && std::time::Instant::now() < deadline {
        std::thread::yield_now();
    }
    assert_eq!(multi.stats().evictions, keys);
    multi.ingest(phase3.iter().cloned());
    let out = multi.finish_at(end);
    assert_eq!(out.stats.late_dropped, 0);
    assert_eq!(out.stats.revivals, keys);

    for (qid, cq) in [(q_fast, &fast), (q_slow, &slow)] {
        let solo = Single::start(
            Arc::clone(cq),
            RuntimeConfig { shards: 2, emit_interval: 8, ..RuntimeConfig::default() },
        );
        solo.ingest(phase1.iter().cloned());
        solo.watermark(0, promise);
        solo.ingest(phase3.iter().cloned());
        let base = solo.finish_at(end);
        for k in 0..keys {
            assert!(
                streams_equivalent(
                    &coalesce(&base.per_key[&k]),
                    &coalesce(&out.per_query[qid.index()][&k])
                ),
                "query {} key {k}: evicting shared service diverged from standalone",
                qid.index()
            );
        }
    }
}

// ── Panic isolation ────────────────────────────────────────────────────

/// A deliberately panicking kernel on one key leaves every other key's
/// output intact at every shard count, and the poisoning is visible in
/// `RuntimeStats` instead of killing the shard.
#[test]
fn poisoned_key_is_quarantined_and_others_are_unaffected() {
    silence_poison_panics();
    let keys = 10u64;
    let poison_key = 4u64;
    let n = 100i64;
    for shards in [1usize, 2, 4] {
        let cq = poisonable_sum(6);
        let runtime = Single::start(
            Arc::clone(&cq),
            RuntimeConfig { shards, emit_interval: 8, ..RuntimeConfig::default() },
        );
        runtime.ingest((1..=n).flat_map(|t| {
            (0..keys).map(move |k| {
                let v = if k == poison_key && t == 50 { -1.0 } else { (t % 13) as f64 };
                KeyedEvent::new(k, 0, Event::point(Time::new(t), Value::Float(v)))
            })
        }));
        let out = runtime.finish_at(Time::new(n + 6));
        assert_eq!(
            out.stats.keys_quarantined, 1,
            "shards={shards}: exactly the poisoned key is quarantined"
        );
        assert_eq!(out.stats.keys, keys, "all keys were seen");
        assert_eq!(out.per_key.len(), keys as usize, "every key reports output");

        let clean: Vec<Event<Value>> =
            (1..=n).map(|t| Event::point(Time::new(t), Value::Float((t % 13) as f64))).collect();
        let expected = replay(&cq, &clean, Time::new(n + 6));
        for k in (0..keys).filter(|&k| k != poison_key) {
            assert!(
                streams_equivalent(&coalesce(&expected), &coalesce(&out.per_key[&k])),
                "shards={shards} key {k}: healthy key corrupted by the poisoned one"
            );
        }
    }
}

/// The same isolation holds for the shared multi-query engine: poisoning
/// quarantines the key across the group, every other key still serves all
/// registered queries.
#[test]
fn poisoned_key_in_shared_service_leaves_other_keys_serving() {
    silence_poison_panics();
    let poison = poisonable_sum(6);
    let benign = window_query(4, 0);
    let mut builder = StreamService::builder(RuntimeConfig {
        shards: 2,
        emit_interval: 8,
        ..RuntimeConfig::default()
    });
    let _q_poison = builder.register(Arc::clone(&poison));
    let q_benign = builder.register(Arc::clone(&benign));
    let multi = builder.start().unwrap();
    let keys = 6u64;
    let n = 80i64;
    multi.ingest((1..=n).flat_map(|t| {
        (0..keys).map(move |k| {
            let v = if k == 2 && t == 40 { -5.0 } else { 1.0 };
            KeyedEvent::new(k, 0, Event::point(Time::new(t), Value::Float(v)))
        })
    }));
    let out = multi.finish_at(Time::new(n + 6));
    assert_eq!(out.stats.keys_quarantined, 1);
    let clean: Vec<Event<Value>> =
        (1..=n).map(|t| Event::point(Time::new(t), Value::Float(1.0))).collect();
    let expected = replay(&benign, &clean, Time::new(n + 6));
    for k in (0..keys).filter(|&k| k != 2) {
        assert!(
            streams_equivalent(
                &coalesce(&expected),
                &coalesce(&out.per_query[q_benign.index()][&k])
            ),
            "key {k}: healthy key corrupted in the shared runtime"
        );
    }
}

// ── Eviction: randomized differential ──────────────────────────────────

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random keyed workloads with idle gaps far past the TTL, scrambled
    /// into bounded out-of-order arrival: an evicting runtime's per-key
    /// output equals the never-evicting runtime's, at any shard count —
    /// whether or not any particular key happened to be swept.
    #[test]
    fn evicting_runtime_matches_plain_runtime(
        key_streams in prop::collection::vec(
            prop::collection::vec((1i64..120, 1i64..4, -50i64..50), 3..24),
            1..5,
        ),
        window in 1i64..12,
        agg in 0u8..3,
        ttl in 8i64..64,
        displacement in 1usize..32,
        shards in 1usize..5,
    ) {
        let streams: Vec<Vec<Event<Value>>> =
            key_streams.iter().map(|segs| stream_from_segments(segs)).collect();
        let arrivals = arrival_sequence(&streams, displacement);
        let lateness = lateness_needed(&arrivals) + 2;
        let hi = arrivals.iter().map(|ke| ke.event.end).max().unwrap();
        let end = Time::new(hi.ticks() + window);
        let cq = window_query(window, agg);
        let config = |key_ttl| RuntimeConfig {
            shards,
            allowed_lateness: lateness,
            emit_interval: 4,
            key_ttl,
            ..RuntimeConfig::default()
        };

        let evicting = Single::start(Arc::clone(&cq), config(Some(ttl)));
        evicting.ingest(arrivals.iter().cloned());
        let out = evicting.finish_at(end);
        let plain = Single::start(Arc::clone(&cq), config(None));
        plain.ingest(arrivals.iter().cloned());
        let base = plain.finish_at(end);

        prop_assert_eq!(out.stats.late_dropped, 0);
        prop_assert_eq!(out.stats.evictions, out.stats.revivals + (out.stats.keys - out.stats.live_keys));
        prop_assert_eq!(out.per_key.len(), streams.len());
        for (k, events) in streams.iter().enumerate() {
            let got = &out.per_key[&(k as u64)];
            prop_assert!(
                streams_equivalent(&coalesce(&base.per_key[&(k as u64)]), &coalesce(got)),
                "key {} (window {}, agg {}, ttl {}, displacement {}, shards {}): evicting vs plain diverged",
                k, window, agg, ttl, displacement, shards
            );
            let expected = replay(&cq, events, end);
            prop_assert!(
                streams_equivalent(&coalesce(&expected), &coalesce(got)),
                "key {} diverged from in-order replay", k
            );
        }
    }
}
