//! Differential property tests for the multi-query shared runtime: for
//! random query pairs, key counts, shard counts, and bounded disorder,
//! every registered query's output under the shared `StreamService` must
//! equal its output under a standalone single-query service — per key, in-order and
//! out-of-order, at 1, 2, and 4 shards. This is the observational-identity
//! guarantee that makes kernel-prefix dedup and shared reorder/watermark
//! tracking safe to enable for every workload.

use std::sync::Arc;

use proptest::prelude::*;
use tilt_core::ir::{DataType, Expr, Query, ReduceOp, TDom};
use tilt_core::{CompiledQuery, Compiler};
use tilt_data::{coalesce, streams_equivalent, Event, Time, Value};
use tilt_runtime::{KeyedEvent, RuntimeConfig, StreamService};

/// Per-key random event stream: (gap, len, value) segments. Values are
/// quantized to multiples of 0.25 so float aggregation is exact and the
/// per-query comparison can demand identity, not tolerance.
fn stream_from_segments(segments: &[(i64, i64, i64)]) -> Vec<Event<Value>> {
    let mut t = 0i64;
    let mut out = Vec::new();
    for (gap, len, val) in segments {
        let start = t + gap;
        let end = start + len;
        out.push(Event::new(
            Time::new(start),
            Time::new(end),
            Value::Float((val / 4) as f64 * 0.25),
        ));
        t = end;
    }
    out
}

/// A window aggregate over the shared source: sliding (stride 1) or
/// tumbling-style (coarser precision), so query pairs exercise mixed
/// grids — the group emission horizon is the lcm of the members'.
fn window_query(window: i64, agg: u8, stride: i64) -> Arc<CompiledQuery> {
    let op = match agg % 3 {
        0 => ReduceOp::Sum,
        1 => ReduceOp::Min,
        _ => ReduceOp::Max,
    };
    let mut b = Query::builder();
    let input = b.input("x", DataType::Float);
    let out = b.temporal("w", TDom::unbounded(stride), Expr::reduce_window(op, input, window));
    let q = b.finish(out).unwrap();
    Arc::new(Compiler::new().compile(&q).unwrap())
}

/// Interleaves per-key streams into one in-order arrival sequence, then
/// scrambles it by reversing consecutive blocks of `displacement` events —
/// every event stays within `displacement` positions of its slot.
fn arrival_sequence(streams: &[Vec<Event<Value>>], displacement: usize) -> Vec<KeyedEvent> {
    let mut all: Vec<KeyedEvent> = streams
        .iter()
        .enumerate()
        .flat_map(|(k, evs)| evs.iter().map(move |e| KeyedEvent::new(k as u64, 0, e.clone())))
        .collect();
    all.sort_by_key(|ke| (ke.event.end, ke.key));
    if displacement > 1 {
        for block in all.chunks_mut(displacement) {
            block.reverse();
        }
    }
    all
}

/// The smallest allowed-lateness (in ticks) that absorbs the disorder of
/// `arrivals` (watermarks are defined over event starts).
fn lateness_needed(arrivals: &[KeyedEvent]) -> i64 {
    let mut max_start = Time::MIN;
    let mut worst = 0i64;
    for ke in arrivals {
        if max_start > ke.event.start {
            worst = worst.max(max_start - ke.event.start);
        }
        max_start = max_start.max(ke.event.start);
    }
    worst
}

/// Runs one query standalone over the given arrivals — the reference the
/// shared runtime must reproduce query by query.
fn standalone(
    cq: &Arc<CompiledQuery>,
    arrivals: &[KeyedEvent],
    shards: usize,
    lateness: i64,
    end: Time,
) -> std::collections::HashMap<u64, Vec<Event<Value>>> {
    let mut builder = StreamService::builder(RuntimeConfig {
        shards,
        allowed_lateness: lateness,
        emit_interval: 4,
        ..RuntimeConfig::default()
    });
    let q = builder.register(Arc::clone(cq));
    let service = builder.start().expect("single registration");
    service.ingest(arrivals.iter().cloned());
    service.finish_at(end).per_query.swap_remove(q.index())
}

/// The core differential check at one shard count.
fn check_shared_vs_standalone(
    queries: &[Arc<CompiledQuery>],
    arrivals: &[KeyedEvent],
    n_keys: usize,
    shards: usize,
    lateness: i64,
    end: Time,
) -> Result<(), String> {
    let mut builder = StreamService::builder(RuntimeConfig {
        shards,
        allowed_lateness: lateness,
        emit_interval: 4,
        ..RuntimeConfig::default()
    });
    for cq in queries {
        builder.register(Arc::clone(cq));
    }
    let multi = builder.start().expect("same source types");
    multi.ingest(arrivals.iter().cloned());
    let out = multi.finish_at(end);
    if out.stats.late_dropped != 0 {
        return Err(format!("shared runtime dropped {} events", out.stats.late_dropped));
    }
    if out.stats.reorder_buffered != arrivals.len() as u64 {
        return Err(format!(
            "reorder work duplicated: buffered {} of {} events",
            out.stats.reorder_buffered,
            arrivals.len()
        ));
    }
    for (qi, cq) in queries.iter().enumerate() {
        let solo = standalone(cq, arrivals, shards, lateness, end);
        for k in 0..n_keys as u64 {
            let want = coalesce(&solo[&k]);
            let got = coalesce(&out.per_query[qi][&k]);
            if !streams_equivalent(&want, &got) {
                return Err(format!(
                    "query {qi} key {k} shards {shards}: standalone {want:?} vs shared {got:?}"
                ));
            }
        }
    }
    Ok(())
}

const STRIDES: [i64; 3] = [1, 2, 5];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Bounded out-of-order ingestion: every query served by the shared
    /// runtime matches its standalone run, at 1, 2, and 4 shards.
    #[test]
    fn shared_runtime_matches_standalone_out_of_order(
        key_streams in prop::collection::vec(
            prop::collection::vec((1i64..5, 1i64..4, -50i64..50), 3..30),
            1..5,
        ),
        w1 in 1i64..12,
        a1 in 0u8..3,
        s1 in 0u8..3,
        w2 in 1i64..12,
        a2 in 0u8..3,
        s2 in 0u8..3,
        displacement in 2usize..32,
    ) {
        let streams: Vec<Vec<Event<Value>>> =
            key_streams.iter().map(|segs| stream_from_segments(segs)).collect();
        let arrivals = arrival_sequence(&streams, displacement);
        let lateness = lateness_needed(&arrivals) + 2;
        let hi = arrivals.iter().map(|ke| ke.event.end).max().unwrap();
        let end = Time::new(hi.ticks() + 64);
        let queries = vec![
            window_query(w1, a1, STRIDES[s1 as usize]),
            window_query(w2, a2, STRIDES[s2 as usize]),
        ];
        for shards in [1usize, 2, 4] {
            if let Err(msg) = check_shared_vs_standalone(
                &queries, &arrivals, streams.len(), shards, lateness, end,
            ) {
                prop_assert!(false, "{} (w1={}, a1={}, w2={}, a2={}, disp={})",
                    msg, w1, a1, w2, a2, displacement);
            }
        }
    }

    /// In-order ingestion with zero allowed lateness: same guarantee, and
    /// a third registered query duplicating the first must come back
    /// identical to it (whole-kernel dedup is invisible too).
    #[test]
    fn shared_runtime_matches_standalone_in_order(
        key_streams in prop::collection::vec(
            prop::collection::vec((1i64..5, 1i64..4, -50i64..50), 3..25),
            1..4,
        ),
        w1 in 1i64..12,
        a1 in 0u8..3,
        w2 in 1i64..12,
        a2 in 0u8..3,
        s2 in 0u8..3,
    ) {
        let streams: Vec<Vec<Event<Value>>> =
            key_streams.iter().map(|segs| stream_from_segments(segs)).collect();
        let arrivals = arrival_sequence(&streams, 1);
        let hi = arrivals.iter().map(|ke| ke.event.end).max().unwrap();
        let end = Time::new(hi.ticks() + 64);
        let q1 = window_query(w1, a1, 1);
        let q2 = window_query(w2, a2, STRIDES[s2 as usize]);
        let queries = vec![Arc::clone(&q1), q2, q1];
        for shards in [1usize, 2, 4] {
            if let Err(msg) = check_shared_vs_standalone(
                &queries, &arrivals, streams.len(), shards, 0, end,
            ) {
                prop_assert!(false, "{} (w1={}, a1={}, w2={}, a2={})", msg, w1, a1, w2, a2);
            }
            // Queries 0 and 2 are the same Arc: dedup must make their
            // outputs literally interchangeable.
            let mut builder = StreamService::builder(RuntimeConfig {
                shards,
                allowed_lateness: 0,
                emit_interval: 4,
                ..RuntimeConfig::default()
            });
            for cq in &queries {
                builder.register(Arc::clone(cq));
            }
            let multi = builder.start().unwrap();
            multi.ingest(arrivals.iter().cloned());
            let out = multi.finish_at(end);
            prop_assert!(out.stats.kernels_saved > 0, "duplicate registration must dedup");
            for k in 0..streams.len() as u64 {
                prop_assert!(streams_equivalent(
                    &coalesce(&out.per_query[0][&k]),
                    &coalesce(&out.per_query[2][&k]),
                ));
            }
        }
    }
}
